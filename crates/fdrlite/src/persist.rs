//! Crash-safe on-disk persistence for the checking stack.
//!
//! Two durable artifact families live here:
//!
//! 1. **Model cache** — compiled [`Lts`]s and normalised specifications,
//!    content-addressed by a 128-bit structural hash of the process term
//!    (plus the definitions table) together with every checker bound that
//!    shaped the artifact. Entries are written atomically
//!    (temp-file + rename), carry a versioned header with the full key
//!    echoed back, and end in a FNV-1a checksum over everything before it.
//!    Any integrity failure — torn write, truncation, bit flip, stale
//!    version — quarantines the entry, records a [`diag::Diagnostic`]
//!    warning, and falls back to recompiling. A corrupt cache can cost
//!    time, never correctness.
//!
//! 2. **Checkpoints** — the frontier of an interrupted refinement check
//!    (serial BFS or work-stealing parallel exploration), keyed by a
//!    deterministic *check id* derived from both model hashes, the
//!    semantic model, the compile bounds and the engine class. A resumed
//!    run continues to a verdict bit-identical to an uninterrupted one;
//!    see `docs/PERSISTENCE.md` for the exact guarantees.
//!
//! Concurrent `autocsp` invocations may share one cache directory: writers
//! take an advisory exclusive lock — a `store.lock` file created with
//! `create_new` and stamped with the holder's pid + wall-clock — around
//! write + eviction, readers stay lock-free (rename atomicity means a
//! reader sees either the old complete entry or the new complete entry,
//! and the checksum rejects anything else). A lock file left behind by a
//! process that died without dropping its guard is detected as *stale*
//! (dead pid, or an ancient stamp) and stolen with an [`STALE_LOCK`]
//! warning, so one crash never wedges every later writer.
//!
//! Only the *transition structure* of an [`Lts`] is persisted, plus a
//! per-state Ω flag; every other state term is rehydrated as a
//! placeholder. This is sound because Ω-ness is the only state-term
//! property any checking path reads (deadlock detection and the `✓`
//! handling in refinement) — the CSR snapshot, normalisation and both
//! engines consume edges only.

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::ErrorKind;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{SystemTime, UNIX_EPOCH};

use csp::{Definitions, EventId, Label, Lts, Process, StateId};
use diag::{Code, Diagnostic, Span};

use crate::checker::RefinementModel;
use crate::normalise::{AcceptanceId, NormNodeId, NormalisedLts};

/// `STO401` — a cache entry failed its checksum or structural validation
/// and was quarantined; the model was recompiled.
pub const CORRUPT_ENTRY: Code = Code("STO401");
/// `STO402` — a cache entry carries an unknown magic/format version and
/// was quarantined (stale tool version or foreign file).
pub const STALE_VERSION: Code = Code("STO402");
/// `STO403` — a cache I/O operation failed; the run degraded to
/// compiling (or checking) without the cache.
pub const CACHE_IO: Code = Code("STO403");
/// `STO404` — entries were evicted to keep the cache under its size cap.
pub const EVICTED: Code = Code("STO404");
/// `STO405` — a checkpoint was rejected (corrupt, version-mismatched or
/// keyed to a different check); the run restarted from scratch.
pub const BAD_CHECKPOINT: Code = Code("STO405");
/// `STO406` — a `store.lock` left behind by a dead (or long-vanished)
/// process was detected as stale and stolen; writers proceed normally.
pub const STALE_LOCK: Code = Code("STO406");

const MAGIC_MODEL: &[u8; 8] = b"FDRLMDL\x01";
const MAGIC_NORM: &[u8; 8] = b"FDRLNRM\x02";
const MAGIC_CKPT: &[u8; 8] = b"FDRLCKP\x01";
const FORMAT_VERSION: u32 = 1;

/// Default cache capacity: 256 MiB of `.bin` payload.
pub const DEFAULT_CAPACITY: u64 = 256 << 20;

// ---------------------------------------------------------------------------
// Hashing
// ---------------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;
const MIX: u64 = 0x9e37_79b9_7f4a_7c15;

/// FNV-1a over a byte slice; the trailing checksum of every entry.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// A 128-bit structural hash: two independently mixed accumulators.
///
/// 64 bits of structural hash would make an accidental collision — and
/// with it a *wrong verdict served from cache* — merely improbable;
/// 128 bits makes it negligible.
struct Hasher128 {
    a: u64,
    b: u64,
}

impl Hasher128 {
    fn new() -> Hasher128 {
        Hasher128 {
            a: FNV_OFFSET,
            b: 0x9ae1_6a3b_2f90_404f,
        }
    }

    fn u8(&mut self, v: u8) {
        self.a = (self.a ^ u64::from(v)).wrapping_mul(FNV_PRIME);
        self.b = (self.b ^ u64::from(v).wrapping_mul(MIX))
            .rotate_left(29)
            .wrapping_mul(FNV_PRIME);
    }

    fn u32(&mut self, v: u32) {
        for byte in v.to_le_bytes() {
            self.u8(byte);
        }
    }

    fn u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.u8(byte);
        }
    }

    fn h128(&mut self, v: [u64; 2]) {
        self.u64(v[0]);
        self.u64(v[1]);
    }

    fn finish(self) -> [u64; 2] {
        // A final avalanche so short inputs still differ in every bit.
        let mut a = self.a ^ self.b.rotate_left(31);
        a ^= a >> 33;
        a = a.wrapping_mul(0xff51_afd7_ed55_8ccd);
        a ^= a >> 33;
        let mut b = self.b ^ self.a.rotate_left(17);
        b ^= b >> 29;
        b = b.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        b ^= b >> 32;
        [a, b]
    }
}

/// The 128-bit content address of a process term under a definitions table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelHash(pub(crate) [u64; 2]);

impl ModelHash {
    /// 32-hex-digit rendering, used in cache file names and tokens.
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.0[0], self.0[1])
    }
}

impl fmt::Display for ModelHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Structural content hash of `p` together with the full definitions table
/// (recursion bodies are part of a term's meaning).
///
/// Shared subtrees (`Arc` children) are memoised by pointer, so the walk is
/// linear in the number of distinct nodes. Event and definition identity is
/// hashed by *index*: two scripts that intern the same structure over the
/// same indices denote the same transition system, whatever the events are
/// named.
pub fn content_hash(p: &Process, defs: &Definitions) -> ModelHash {
    let mut memo: HashMap<usize, [u64; 2]> = HashMap::new();
    let top = subtree_hash(p, &mut memo);
    let mut h = Hasher128::new();
    h.h128(top);
    h.u32(defs.len() as u32);
    for id in defs.ids() {
        match defs.body(id) {
            Ok(body) => {
                h.u8(1);
                let child = child_hash(body, &mut memo);
                h.h128(child);
            }
            Err(_) => h.u8(0),
        }
    }
    ModelHash(h.finish())
}

/// Content fingerprint of a definitions table alone — the defs-dependent
/// half of [`content_hash`]. A `Var(i)` term means something different
/// under every definitions table, so in-memory caches shared across
/// scripts must key compiled artifacts by this fingerprint as well as by
/// the interned term: two scripts easily intern structurally identical
/// terms whose definitions differ.
pub(crate) fn defs_fingerprint(defs: &Definitions) -> u64 {
    let mut memo: HashMap<usize, [u64; 2]> = HashMap::new();
    let mut h = Hasher128::new();
    h.u32(defs.len() as u32);
    for id in defs.ids() {
        match defs.body(id) {
            Ok(body) => {
                h.u8(1);
                let child = child_hash(body, &mut memo);
                h.h128(child);
            }
            Err(_) => h.u8(0),
        }
    }
    h.finish()[0]
}

fn child_hash(p: &Arc<Process>, memo: &mut HashMap<usize, [u64; 2]>) -> [u64; 2] {
    let key = Arc::as_ptr(p) as usize;
    if let Some(&h) = memo.get(&key) {
        return h;
    }
    let h = subtree_hash(p, memo);
    memo.insert(key, h);
    h
}

fn subtree_hash(p: &Process, memo: &mut HashMap<usize, [u64; 2]>) -> [u64; 2] {
    let mut h = Hasher128::new();
    match p {
        Process::Stop => h.u8(0),
        Process::Skip => h.u8(1),
        Process::Omega => h.u8(2),
        Process::Prefix(e, q) => {
            h.u8(3);
            h.u32(e.index() as u32);
            let c = child_hash(q, memo);
            h.h128(c);
        }
        Process::ExternalChoice(children) => {
            h.u8(4);
            h.u32(children.len() as u32);
            for c in children {
                let ch = child_hash(c, memo);
                h.h128(ch);
            }
        }
        Process::InternalChoice(children) => {
            h.u8(5);
            h.u32(children.len() as u32);
            for c in children {
                let ch = child_hash(c, memo);
                h.h128(ch);
            }
        }
        Process::Seq(a, b) => {
            h.u8(6);
            let ha = child_hash(a, memo);
            h.h128(ha);
            let hb = child_hash(b, memo);
            h.h128(hb);
        }
        Process::Parallel { sync, left, right } => {
            h.u8(7);
            h.u32(sync.len() as u32);
            for e in sync.iter() {
                h.u32(e.index() as u32);
            }
            let hl = child_hash(left, memo);
            h.h128(hl);
            let hr = child_hash(right, memo);
            h.h128(hr);
        }
        Process::Hide(q, set) => {
            h.u8(8);
            h.u32(set.len() as u32);
            for e in set.iter() {
                h.u32(e.index() as u32);
            }
            let c = child_hash(q, memo);
            h.h128(c);
        }
        Process::Rename(q, map) => {
            h.u8(9);
            let pairs: Vec<(EventId, EventId)> = map.iter().collect();
            h.u32(pairs.len() as u32);
            for (from, to) in pairs {
                h.u32(from.index() as u32);
                h.u32(to.index() as u32);
            }
            let c = child_hash(q, memo);
            h.h128(c);
        }
        Process::Interrupt(a, b) => {
            h.u8(10);
            let ha = child_hash(a, memo);
            h.h128(ha);
            let hb = child_hash(b, memo);
            h.h128(hb);
        }
        Process::Timeout(a, b) => {
            h.u8(11);
            let ha = child_hash(a, memo);
            h.h128(ha);
            let hb = child_hash(b, memo);
            h.h128(hb);
        }
        Process::Var(d) => {
            h.u8(12);
            h.u32(d.index() as u32);
        }
    }
    h.finish()
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

/// Why an entry was rejected; the message is surfaced in the diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryError {
    /// Checksum/bounds/structure failure: quarantine under [`CORRUPT_ENTRY`].
    Corrupt(&'static str),
    /// Unknown magic or format version: quarantine under [`STALE_VERSION`].
    Version,
}

/// Result alias used throughout the codec.
pub type DecResult<T> = Result<T, EntryError>;

/// Shorthand for a [`EntryError::Corrupt`] rejection.
pub fn corrupt<T>(why: &'static str) -> DecResult<T> {
    Err(EntryError::Corrupt(why))
}

/// Little-endian append-only encoder.
///
/// Public so that other crash-safe journals (the supervisor's and the
/// checking service's) share one wire discipline: magic + format version
/// header, little-endian fields, trailing FNV-1a checksum.
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Start an entry with the given 8-byte magic and the format version.
    pub fn new(magic: &[u8; 8]) -> Enc {
        let mut buf = Vec::with_capacity(256);
        buf.extend_from_slice(magic);
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        Enc { buf }
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// A length-prefixed UTF-8 string.
    pub fn text(&mut self, s: &str) {
        self.u32(u32::try_from(s.len()).unwrap_or(u32::MAX));
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append the trailing checksum and return the finished entry.
    pub fn finish(mut self) -> Vec<u8> {
        let sum = fnv1a64(&self.buf);
        self.buf.extend_from_slice(&sum.to_le_bytes());
        self.buf
    }
}

/// Bounds-checked little-endian decoder over a checksum-verified slice.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Verify the trailing checksum and the magic/version header, then
    /// return a decoder positioned after the header.
    ///
    /// # Errors
    ///
    /// [`EntryError::Corrupt`] on checksum/bounds failures,
    /// [`EntryError::Version`] on a magic or version mismatch.
    pub fn open(bytes: &'a [u8], magic: &[u8; 8]) -> DecResult<Dec<'a>> {
        if bytes.len() < 8 + 4 + 8 {
            return corrupt("entry truncated below header size");
        }
        let (body, sum) = bytes.split_at(bytes.len() - 8);
        let expect = u64::from_le_bytes(sum.try_into().expect("8-byte slice"));
        if fnv1a64(body) != expect {
            return corrupt("checksum mismatch");
        }
        if &body[..8] != magic {
            return Err(EntryError::Version);
        }
        let version = u32::from_le_bytes(body[8..12].try_into().expect("4-byte slice"));
        if version != FORMAT_VERSION {
            return Err(EntryError::Version);
        }
        Ok(Dec { buf: body, pos: 12 })
    }

    /// Read one byte.
    ///
    /// # Errors
    ///
    /// [`EntryError::Corrupt`] at end of entry.
    pub fn u8(&mut self) -> DecResult<u8> {
        let Some(&v) = self.buf.get(self.pos) else {
            return corrupt("unexpected end of entry");
        };
        self.pos += 1;
        Ok(v)
    }

    /// Read a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`EntryError::Corrupt`] at end of entry.
    pub fn u32(&mut self) -> DecResult<u32> {
        let Some(raw) = self.buf.get(self.pos..self.pos + 4) else {
            return corrupt("unexpected end of entry");
        };
        self.pos += 4;
        Ok(u32::from_le_bytes(raw.try_into().expect("4-byte slice")))
    }

    /// Read a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`EntryError::Corrupt`] at end of entry.
    pub fn u64(&mut self) -> DecResult<u64> {
        let Some(raw) = self.buf.get(self.pos..self.pos + 8) else {
            return corrupt("unexpected end of entry");
        };
        self.pos += 8;
        Ok(u64::from_le_bytes(raw.try_into().expect("8-byte slice")))
    }

    /// A length-prefixed UTF-8 string written by [`Enc::text`].
    ///
    /// # Errors
    ///
    /// [`EntryError::Corrupt`] on truncation or invalid UTF-8.
    pub fn text(&mut self) -> DecResult<String> {
        let n = self.u32()? as usize;
        let Some(raw) = self.buf.get(self.pos..self.pos + n) else {
            return corrupt("unexpected end of entry");
        };
        self.pos += n;
        match std::str::from_utf8(raw) {
            Ok(s) => Ok(s.to_string()),
            Err(_) => corrupt("string is not valid UTF-8"),
        }
    }

    /// A length prefix that must leave at least `min_per_item` bytes per
    /// item in the remaining input (rejects absurd lengths early).
    ///
    /// # Errors
    ///
    /// [`EntryError::Corrupt`] when the prefix exceeds the entry size.
    pub fn len(&mut self, min_per_item: usize) -> DecResult<usize> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_per_item) > self.buf.len() - self.pos {
            return corrupt("length prefix exceeds entry size");
        }
        Ok(n)
    }

    /// Assert the whole payload has been consumed.
    ///
    /// # Errors
    ///
    /// [`EntryError::Corrupt`] when trailing bytes remain.
    pub fn done(&self) -> DecResult<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            corrupt("trailing bytes after payload")
        }
    }
}

// ---------------------------------------------------------------------------
// Keys
// ---------------------------------------------------------------------------

/// Disk key of a compiled model: content hash + every bound that shaped it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct ModelKey {
    pub hash: ModelHash,
    pub max_states: u64,
    pub compress: bool,
}

impl ModelKey {
    fn file_name(&self) -> String {
        format!(
            "m-{}-{:x}-{}.bin",
            self.hash.to_hex(),
            self.max_states,
            u8::from(self.compress)
        )
    }

    fn encode(&self, enc: &mut Enc) {
        enc.u64(self.hash.0[0]);
        enc.u64(self.hash.0[1]);
        enc.u64(self.max_states);
        enc.u8(u8::from(self.compress));
    }

    fn check_echo(&self, dec: &mut Dec<'_>) -> DecResult<()> {
        let echo = ModelKey {
            hash: ModelHash([dec.u64()?, dec.u64()?]),
            max_states: dec.u64()?,
            compress: match dec.u8()? {
                0 => false,
                1 => true,
                _ => return corrupt("compress flag out of range"),
            },
        };
        if echo == *self {
            Ok(())
        } else {
            corrupt("key echo does not match requested key")
        }
    }
}

/// Disk key of a normalised specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct NormDiskKey {
    pub model: ModelKey,
    pub max_norm_nodes: u64,
}

impl NormDiskKey {
    fn file_name(&self) -> String {
        format!(
            "n-{}-{:x}-{}-{:x}.bin",
            self.model.hash.to_hex(),
            self.model.max_states,
            u8::from(self.model.compress),
            self.max_norm_nodes
        )
    }
}

// ---------------------------------------------------------------------------
// LTS / normal-form payloads
// ---------------------------------------------------------------------------

fn encode_lts(enc: &mut Enc, lts: &Lts) {
    let n = lts.state_count();
    enc.u32(n as u32);
    let mut omega = vec![0u8; n.div_ceil(8)];
    for s in lts.state_ids() {
        if matches!(lts.state(s), Process::Omega) {
            omega[s.index() / 8] |= 1 << (s.index() % 8);
        }
    }
    enc.buf.extend_from_slice(&omega);
    for s in lts.state_ids() {
        let edges = lts.edges(s);
        enc.u32(edges.len() as u32);
        for &(label, target) in edges {
            match label {
                Label::Tau => enc.u8(0),
                Label::Tick => enc.u8(1),
                Label::Event(e) => {
                    enc.u8(2);
                    enc.u32(e.index() as u32);
                }
            }
            enc.u32(target.index() as u32);
        }
    }
}

fn decode_lts(dec: &mut Dec<'_>) -> DecResult<Lts> {
    let n = dec.len(1)?;
    if n == 0 {
        return corrupt("empty state table");
    }
    let mut omega = vec![false; n];
    for chunk in 0..n.div_ceil(8) {
        let byte = dec.u8()?;
        for bit in 0..8 {
            let idx = chunk * 8 + bit;
            if idx < n {
                omega[idx] = byte & (1 << bit) != 0;
            } else if byte & (1 << bit) != 0 {
                return corrupt("omega bitset has bits past the state count");
            }
        }
    }
    let mut transitions: Vec<Vec<(Label, StateId)>> = Vec::with_capacity(n);
    for _ in 0..n {
        let e = dec.len(5)?;
        let mut edges: Vec<(Label, StateId)> = Vec::with_capacity(e);
        for _ in 0..e {
            let label = match dec.u8()? {
                0 => Label::Tau,
                1 => Label::Tick,
                2 => Label::Event(EventId::from_index(dec.u32()? as usize)),
                _ => return corrupt("unknown edge label tag"),
            };
            let target = dec.u32()? as usize;
            if target >= n {
                return corrupt("edge target out of range");
            }
            edges.push((label, StateId::from_index(target)));
        }
        if !edges.windows(2).all(|w| w[0] < w[1]) {
            return corrupt("edge list not strictly sorted");
        }
        transitions.push(edges);
    }
    let states: Vec<Process> = omega
        .into_iter()
        // Only Ω-ness is observable through the checking API; every other
        // state term is a placeholder (see the module docs).
        .map(|is_omega| {
            if is_omega {
                Process::Omega
            } else {
                Process::Stop
            }
        })
        .collect();
    Ok(Lts::from_parts(states, transitions))
}

// Normal forms are stored in the flat CSR/bitset layout the checker runs
// on (format `FDRLNRM\x02`): acceptance pool first (word width, then
// deduplicated `tick + words` rows), then per node its sorted after-edges,
// the tick/divergence flags and its `AcceptanceId` range. Entries written
// by the pre-flattening codec carry the `\x01` magic and are rejected as
// [`EntryError::Version`] — the stale-version quarantine path — never
// decoded into a wrong artifact.

fn encode_norm(enc: &mut Enc, norm: &NormalisedLts) {
    let n = norm.node_count();
    enc.u32(n as u32);
    enc.u32(norm.acc_wps);
    enc.u32(norm.pool_ticks.len() as u32);
    for (row, &tick) in norm.pool_ticks.iter().enumerate() {
        enc.u8(u8::from(tick));
        let wps = norm.acc_wps as usize;
        for &word in &norm.pool_words[row * wps..(row + 1) * wps] {
            enc.u64(word);
        }
    }
    for node in 0..n {
        let (lo, hi) = (
            norm.after_off[node] as usize,
            norm.after_off[node + 1] as usize,
        );
        enc.u32((hi - lo) as u32);
        for i in lo..hi {
            enc.u32(norm.after_ev[i].index() as u32);
            enc.u32(norm.after_tgt[i].index() as u32);
        }
        enc.u8(u8::from(norm.tick_ok[node]));
        enc.u8(u8::from(norm.div_flag[node]));
        let (alo, ahi) = (norm.acc_off[node] as usize, norm.acc_off[node + 1] as usize);
        enc.u32((ahi - alo) as u32);
        for id in &norm.acc_ids[alo..ahi] {
            enc.u32(id.index() as u32);
        }
    }
}

fn decode_norm(dec: &mut Dec<'_>) -> DecResult<NormalisedLts> {
    let n = dec.len(1)?;
    if n == 0 {
        return corrupt("empty normal form");
    }
    let acc_wps = dec.u32()?;
    let pool_len = dec.len(1 + 8 * acc_wps as usize)?;
    let mut pool_words: Vec<u64> = Vec::with_capacity(pool_len * acc_wps as usize);
    let mut pool_ticks: Vec<bool> = Vec::with_capacity(pool_len);
    for _ in 0..pool_len {
        pool_ticks.push(match dec.u8()? {
            0 => false,
            1 => true,
            _ => return corrupt("acceptance tick flag out of range"),
        });
        for _ in 0..acc_wps {
            pool_words.push(dec.u64()?);
        }
    }
    let mut after_off: Vec<u32> = Vec::with_capacity(n + 1);
    let mut after_ev: Vec<EventId> = Vec::new();
    let mut after_tgt: Vec<NormNodeId> = Vec::new();
    let mut tick_ok: Vec<bool> = Vec::with_capacity(n);
    let mut div_flag: Vec<bool> = Vec::with_capacity(n);
    let mut acc_off: Vec<u32> = Vec::with_capacity(n + 1);
    let mut acc_ids: Vec<AcceptanceId> = Vec::new();
    after_off.push(0);
    acc_off.push(0);
    for _ in 0..n {
        let after_len = dec.len(8)?;
        let mut prev: Option<u32> = None;
        for _ in 0..after_len {
            let event = dec.u32()?;
            if prev.is_some_and(|p| p >= event) {
                return corrupt("after-table events not strictly sorted");
            }
            prev = Some(event);
            let target = dec.u32()? as usize;
            if target >= n {
                return corrupt("after-table target out of range");
            }
            after_ev.push(EventId::from_index(event as usize));
            after_tgt.push(NormNodeId::from_index(target));
        }
        after_off.push(after_ev.len() as u32);
        tick_ok.push(match dec.u8()? {
            0 => false,
            1 => true,
            _ => return corrupt("tick flag out of range"),
        });
        div_flag.push(match dec.u8()? {
            0 => false,
            1 => true,
            _ => return corrupt("divergence flag out of range"),
        });
        let acc_len = dec.len(4)?;
        for _ in 0..acc_len {
            let id = dec.u32()? as usize;
            if id >= pool_len {
                return corrupt("acceptance id out of pool range");
            }
            acc_ids.push(AcceptanceId::from_index(id));
        }
        acc_off.push(acc_ids.len() as u32);
    }
    Ok(NormalisedLts {
        after_off,
        after_ev,
        after_tgt,
        tick_ok,
        div_flag,
        acc_off,
        acc_ids,
        acc_wps,
        pool_words,
        pool_ticks,
    })
}

// ---------------------------------------------------------------------------
// Checkpoints
// ---------------------------------------------------------------------------

/// Identity of one refinement check: both content hashes, the semantic
/// model, the compile bounds and the engine class. Deliberately excludes
/// the *budget* (`max_states` / `max_wall_ms` of [`crate::CheckOptions`])
/// so a run interrupted under one budget can resume under another.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CheckId(pub(crate) [u64; 2]);

impl CheckId {
    /// The resume token carried in `Verdict::Inconclusive`.
    pub fn token(&self) -> String {
        format!("{:016x}{:016x}", self.0[0], self.0[1])
    }

    /// Parse a token back into an id (32 hex digits).
    pub fn from_token(token: &str) -> Option<CheckId> {
        if token.len() != 32 || !token.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let a = u64::from_str_radix(&token[..16], 16).ok()?;
        let b = u64::from_str_radix(&token[16..], 16).ok()?;
        Some(CheckId([a, b]))
    }
}

impl fmt::Display for CheckId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.token())
    }
}

/// Everything that determines a check's identity (see [`CheckId`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct CheckIdParts {
    pub spec: ModelHash,
    pub impl_: ModelHash,
    pub model: RefinementModel,
    pub max_states: u64,
    pub max_norm_nodes: u64,
    pub max_product: u64,
    pub compress: bool,
    pub parallel: bool,
}

impl CheckIdParts {
    pub(crate) fn id(&self) -> CheckId {
        let mut h = Hasher128::new();
        h.h128(self.spec.0);
        h.h128(self.impl_.0);
        h.u8(match self.model {
            RefinementModel::Traces => 0,
            RefinementModel::Failures => 1,
        });
        h.u64(self.max_states);
        h.u64(self.max_norm_nodes);
        h.u64(self.max_product);
        h.u8(u8::from(self.compress));
        h.u8(u8::from(self.parallel));
        CheckId(h.finish())
    }
}

/// One node of the serial explorer's parent-pointer table. `label` is the
/// visible event on the edge from the parent (`None` for τ edges and the
/// root), exactly as the explorer records it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct CkptNode {
    pub s: u32,
    pub n: u32,
    pub vlen: u32,
    pub parent: u32,
    pub label: Option<EventId>,
}

/// The complete continuation state of an interrupted serial 0-1 BFS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SerialFrontier {
    /// Full node table (pair, visible depth, parent pointer, edge label).
    pub nodes: Vec<CkptNode>,
    /// Pending node indices, front to back, exactly as the deque stood.
    pub deque: Vec<u32>,
    pub pairs_discovered: u64,
    pub expansions: u64,
    pub transitions: u64,
    pub frontier_peak: u64,
}

impl SerialFrontier {
    /// Structural validity against the models the resume will run over.
    pub(crate) fn validate(&self, impl_states: usize, norm_nodes: usize) -> bool {
        let n = self.nodes.len() as u32;
        !self.nodes.is_empty()
            && self.nodes.iter().all(|node| {
                (node.s as usize) < impl_states && (node.n as usize) < norm_nodes && node.parent < n
            })
            && self.deque.iter().all(|&idx| idx < n)
    }
}

/// The continuation state of an interrupted parallel exploration: the
/// merged visited set, the outstanding tasks, and the best violation
/// depth seen so far (`u32::MAX` when none).
///
/// No parent pointers are persisted: the canonical counterexample is
/// always recovered by a depth-bounded serial re-walk, which needs only
/// `best`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ParallelFrontier {
    /// `(impl state, spec node, best visible depth)` for every visited pair.
    pub visited: Vec<(u32, u32, u32)>,
    /// `(impl state, spec node, visible depth)` for every pending task.
    pub frontier: Vec<(u32, u32, u32)>,
    pub discovered: u64,
    pub best: u32,
    pub expansions: u64,
    pub transitions: u64,
    pub steals: u64,
    pub frontier_peak: u64,
}

impl ParallelFrontier {
    /// Structural validity against the models the resume will run over.
    pub(crate) fn validate(&self, impl_states: usize, norm_nodes: usize) -> bool {
        let ok =
            |&(s, n, _): &(u32, u32, u32)| (s as usize) < impl_states && (n as usize) < norm_nodes;
        !self.visited.is_empty() && self.visited.iter().all(ok) && self.frontier.iter().all(ok)
    }
}

/// Engine-specific continuation data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum EngineFrontier {
    Serial(SerialFrontier),
    Parallel(ParallelFrontier),
}

/// A durable checkpoint: check identity plus the engine frontier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Checkpoint {
    pub id: CheckId,
    pub model: RefinementModel,
    pub frontier: EngineFrontier,
}

fn encode_checkpoint(ckpt: &Checkpoint) -> Vec<u8> {
    let mut enc = Enc::new(MAGIC_CKPT);
    enc.u64(ckpt.id.0[0]);
    enc.u64(ckpt.id.0[1]);
    enc.u8(match ckpt.model {
        RefinementModel::Traces => 0,
        RefinementModel::Failures => 1,
    });
    match &ckpt.frontier {
        EngineFrontier::Serial(f) => {
            enc.u8(1);
            enc.u32(f.nodes.len() as u32);
            for node in &f.nodes {
                enc.u32(node.s);
                enc.u32(node.n);
                enc.u32(node.vlen);
                enc.u32(node.parent);
                match node.label {
                    None => enc.u8(0),
                    Some(e) => {
                        enc.u8(1);
                        enc.u32(e.index() as u32);
                    }
                }
            }
            enc.u32(f.deque.len() as u32);
            for &idx in &f.deque {
                enc.u32(idx);
            }
            enc.u64(f.pairs_discovered);
            enc.u64(f.expansions);
            enc.u64(f.transitions);
            enc.u64(f.frontier_peak);
        }
        EngineFrontier::Parallel(f) => {
            enc.u8(2);
            enc.u32(f.visited.len() as u32);
            for &(s, n, d) in &f.visited {
                enc.u32(s);
                enc.u32(n);
                enc.u32(d);
            }
            enc.u32(f.frontier.len() as u32);
            for &(s, n, v) in &f.frontier {
                enc.u32(s);
                enc.u32(n);
                enc.u32(v);
            }
            enc.u64(f.discovered);
            enc.u32(f.best);
            enc.u64(f.expansions);
            enc.u64(f.transitions);
            enc.u64(f.steals);
            enc.u64(f.frontier_peak);
        }
    }
    enc.finish()
}

fn decode_checkpoint(bytes: &[u8], want: CheckId) -> DecResult<Checkpoint> {
    let mut dec = Dec::open(bytes, MAGIC_CKPT)?;
    let id = CheckId([dec.u64()?, dec.u64()?]);
    if id != want {
        return corrupt("checkpoint is keyed to a different check");
    }
    let model = match dec.u8()? {
        0 => RefinementModel::Traces,
        1 => RefinementModel::Failures,
        _ => return corrupt("unknown refinement model tag"),
    };
    let frontier = match dec.u8()? {
        1 => {
            let n = dec.len(17)?;
            let mut nodes = Vec::with_capacity(n);
            for _ in 0..n {
                let (s, nn, vlen, parent) = (dec.u32()?, dec.u32()?, dec.u32()?, dec.u32()?);
                let label = match dec.u8()? {
                    0 => None,
                    1 => Some(EventId::from_index(dec.u32()? as usize)),
                    _ => return corrupt("unknown node label tag"),
                };
                nodes.push(CkptNode {
                    s,
                    n: nn,
                    vlen,
                    parent,
                    label,
                });
            }
            let d = dec.len(4)?;
            let mut deque = Vec::with_capacity(d);
            for _ in 0..d {
                let idx = dec.u32()?;
                if idx as usize >= nodes.len() {
                    return corrupt("deque index out of range");
                }
                deque.push(idx);
            }
            let f = SerialFrontier {
                nodes,
                deque,
                pairs_discovered: dec.u64()?,
                expansions: dec.u64()?,
                transitions: dec.u64()?,
                frontier_peak: dec.u64()?,
            };
            if f.nodes
                .iter()
                .any(|node| node.parent as usize >= f.nodes.len())
            {
                return corrupt("parent pointer out of range");
            }
            EngineFrontier::Serial(f)
        }
        2 => {
            let v = dec.len(12)?;
            let mut visited = Vec::with_capacity(v);
            for _ in 0..v {
                visited.push((dec.u32()?, dec.u32()?, dec.u32()?));
            }
            let fr = dec.len(12)?;
            let mut frontier = Vec::with_capacity(fr);
            for _ in 0..fr {
                frontier.push((dec.u32()?, dec.u32()?, dec.u32()?));
            }
            EngineFrontier::Parallel(ParallelFrontier {
                visited,
                frontier,
                discovered: dec.u64()?,
                best: dec.u32()?,
                expansions: dec.u64()?,
                transitions: dec.u64()?,
                steals: dec.u64()?,
                frontier_peak: dec.u64()?,
            })
        }
        _ => return corrupt("unknown engine tag"),
    };
    dec.done()?;
    Ok(Checkpoint {
        id,
        model,
        frontier,
    })
}

// ---------------------------------------------------------------------------
// Persistence configuration
// ---------------------------------------------------------------------------

/// How a [`crate::ModelStore`] treats existing checkpoints when a check
/// starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResumePolicy {
    /// Never resume; existing checkpoints are left alone.
    Off,
    /// Resume any check that has a valid checkpoint on disk.
    Auto,
    /// Resume only the check whose identity matches this token
    /// (`autocsp check --resume <token>`); every other check runs fresh.
    Token(CheckId),
}

/// Persistence configuration attached to a [`crate::ModelStore`]: where
/// artifacts and checkpoints live, how often to checkpoint, and whether to
/// resume.
#[derive(Clone)]
pub struct PersistConfig {
    /// The on-disk cache backing the store.
    pub cache: Arc<PersistentCache>,
    /// Write a checkpoint every this many newly discovered product states
    /// during long refinements, so an interrupted process loses at most one
    /// segment of work. `None` checkpoints only when a budget runs out.
    pub checkpoint_every: Option<u64>,
    /// Checkpoint-resume policy for this run.
    pub resume: ResumePolicy,
}

impl fmt::Debug for PersistConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PersistConfig")
            .field("cache", &self.cache.root())
            .field("checkpoint_every", &self.checkpoint_every)
            .field("resume", &self.resume)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Storage-fault hook
// ---------------------------------------------------------------------------

/// Interception point for deterministic storage-fault injection
/// (`crates/faults`). The hook sees every encoded entry immediately before
/// it is written.
///
/// Return `false` to suppress the write entirely (simulating a crash
/// before the rename); return `true` to proceed with the (possibly
/// mutated) bytes. Mutations model torn writes, truncation, bit flips and
/// stale-version headers — all of which the load path must reject or
/// survive.
pub trait StorageFaultHook: Send + Sync {
    /// Possibly corrupt `bytes` for the entry `name`; `false` drops the
    /// write on the floor.
    fn corrupt(&self, name: &str, bytes: &mut Vec<u8>) -> bool;
}

// ---------------------------------------------------------------------------
// Store locking
// ---------------------------------------------------------------------------

/// Bounded wait for a live `store.lock` holder: attempts × retry sleep.
const LOCK_ATTEMPTS: u32 = 20;
const LOCK_RETRY_MS: u64 = 5;
/// A stamped lock older than this is stale even if its pid looks alive
/// (pid reuse): writers hold the lock for one write + eviction, never
/// minutes.
const STALE_LOCK_MICROS: u64 = 600_000_000;
/// An unparsable lock file (holder died between `create_new` and the
/// stamp write) is stale once its mtime is this old.
const UNSTAMPED_LOCK_MICROS: u64 = 5_000_000;

/// Wall-clock micros since the epoch (0 if the clock is unreadable).
fn now_micros() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// Is the process with this pid still alive? Answered via `/proc` where
/// available; `None` when it cannot be determined (non-procfs platforms).
fn pid_alive(pid: u32) -> Option<bool> {
    if Path::new("/proc").is_dir() {
        Some(Path::new(&format!("/proc/{pid}")).exists())
    } else {
        None
    }
}

/// Decide whether an existing `store.lock` is a leftover from a dead
/// process (stealable) or held by a live writer (wait for it).
fn lock_is_stale(path: &Path) -> bool {
    let content = fs::read_to_string(path).unwrap_or_default();
    let mut parts = content.split_whitespace();
    let parsed = match (
        parts.next().and_then(|p| p.parse::<u32>().ok()),
        parts.next().and_then(|s| s.parse::<u64>().ok()),
    ) {
        (Some(pid), Some(stamp)) => Some((pid, stamp)),
        _ => None,
    };
    match parsed {
        Some((pid, stamp)) => {
            let aged = now_micros().saturating_sub(stamp) > STALE_LOCK_MICROS;
            match pid_alive(pid) {
                Some(false) => true, // holder is gone — classic stale lock
                Some(true) => aged,  // alive pid may be reuse; trust the stamp
                None => aged,
            }
        }
        None => {
            // No stamp yet: give the creating process a grace period
            // (measured by mtime) before declaring the file abandoned.
            let age = fs::metadata(path)
                .and_then(|m| m.modified())
                .ok()
                .and_then(|t| t.duration_since(UNIX_EPOCH).ok())
                .map_or(0, |d| {
                    now_micros().saturating_sub(u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
                });
            age > UNSTAMPED_LOCK_MICROS
        }
    }
}

/// Holds the advisory store lock; removes `store.lock` on drop.
struct LockGuard {
    path: PathBuf,
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

// ---------------------------------------------------------------------------
// The cache
// ---------------------------------------------------------------------------

/// A crash-safe, size-capped, content-addressed cache directory.
///
/// See the module docs for the format and concurrency story. All methods
/// are infallible from the caller's point of view: any I/O or integrity
/// problem degrades to a miss (plus a diagnostic), never an error or a
/// wrong artifact.
pub struct PersistentCache {
    root: PathBuf,
    max_bytes: u64,
    hook: Mutex<Option<Arc<dyn StorageFaultHook>>>,
    diags: Mutex<Vec<Diagnostic>>,
    disk_hits: AtomicU64,
    disk_misses: AtomicU64,
    quarantined: AtomicU64,
    evicted: AtomicU64,
    locks_stolen: AtomicU64,
}

impl fmt::Debug for PersistentCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PersistentCache")
            .field("root", &self.root)
            .field("max_bytes", &self.max_bytes)
            .finish_non_exhaustive()
    }
}

impl PersistentCache {
    /// Open (creating if needed) a cache directory with the
    /// [`DEFAULT_CAPACITY`] size cap.
    ///
    /// # Errors
    ///
    /// Only directory creation can fail; everything after open degrades
    /// gracefully instead of erroring.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<PersistentCache> {
        PersistentCache::with_capacity(dir, DEFAULT_CAPACITY)
    }

    /// Open with an explicit size cap in bytes.
    ///
    /// # Errors
    ///
    /// Only directory creation can fail.
    pub fn with_capacity(
        dir: impl AsRef<Path>,
        max_bytes: u64,
    ) -> std::io::Result<PersistentCache> {
        let root = dir.as_ref().to_path_buf();
        fs::create_dir_all(root.join("quarantine"))?;
        fs::create_dir_all(root.join("checkpoints"))?;
        Ok(PersistentCache {
            root,
            max_bytes,
            hook: Mutex::new(None),
            diags: Mutex::new(Vec::new()),
            disk_hits: AtomicU64::new(0),
            disk_misses: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            locks_stolen: AtomicU64::new(0),
        })
    }

    /// The cache directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Install a storage-fault interception hook (testing/fault-injection).
    pub fn set_fault_hook(&self, hook: Arc<dyn StorageFaultHook>) {
        *self.hook.lock().expect("hook lock poisoned") = Some(hook);
    }

    /// Drain the diagnostics accumulated since the last call.
    pub fn take_diagnostics(&self) -> Vec<Diagnostic> {
        std::mem::take(&mut *self.diags.lock().expect("diag lock poisoned"))
    }

    /// Entries served from disk so far.
    pub fn disk_hits(&self) -> u64 {
        self.disk_hits.load(Ordering::Relaxed)
    }

    /// Lookups that fell through to a recompile so far.
    pub fn disk_misses(&self) -> u64 {
        self.disk_misses.load(Ordering::Relaxed)
    }

    /// Entries quarantined after integrity failures so far.
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Entries evicted by the size cap so far.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Stale `store.lock` files stolen from dead processes so far.
    pub fn locks_stolen(&self) -> u64 {
        self.locks_stolen.load(Ordering::Relaxed)
    }

    fn push_diag(&self, d: Diagnostic) {
        self.diags.lock().expect("diag lock poisoned").push(d);
    }

    /// Advisory exclusive lock held for the duration of the returned guard
    /// (the lock file is removed on drop). `None` if the lock could not be
    /// acquired within the bounded wait — the caller proceeds unlocked
    /// rather than failing the run (writes stay atomic either way; only
    /// eviction racing gets less polite).
    ///
    /// The lock is a `store.lock` file created with `create_new` and
    /// stamped `"<pid> <micros>"`. A file whose pid is dead, whose stamp
    /// is older than [`STALE_LOCK_MICROS`], or whose content is garbage
    /// and unchanged for a while, is *stale* — left behind by a process
    /// that was killed mid-write — and is stolen with an [`STALE_LOCK`]
    /// warning.
    fn lock_exclusive(&self) -> Option<LockGuard> {
        let path = self.root.join("store.lock");
        for _ in 0..LOCK_ATTEMPTS {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(file) => {
                    use std::io::Write as _;
                    let mut file = file;
                    let _ = write!(file, "{} {}", std::process::id(), now_micros());
                    return Some(LockGuard { path });
                }
                Err(e) if e.kind() == ErrorKind::AlreadyExists => {
                    if lock_is_stale(&path) && self.steal_stale_lock(&path) {
                        self.locks_stolen.fetch_add(1, Ordering::Relaxed);
                        self.push_diag(
                            Diagnostic::warning(
                                STALE_LOCK,
                                Span::unknown(),
                                "stale `store.lock` left by a dead process; stealing it"
                                    .to_string(),
                            )
                            .with_note("a previous run was killed while holding the store lock"),
                        );
                    } else {
                        std::thread::sleep(std::time::Duration::from_millis(LOCK_RETRY_MS));
                    }
                }
                Err(_) => return None,
            }
        }
        None
    }

    /// Remove a stale `store.lock` without racing other *live* stealers.
    ///
    /// A naive `remove_file` is unsafe with two live contenders: B can
    /// classify the file as stale, lose the race to A (who removes it and
    /// re-creates a fresh, live lock), and then B's delayed remove
    /// destroys A's brand-new lock. The claim protocol closes that window:
    ///
    /// 1. Read the stale lock's bytes `C`, then `create_new` a claim file
    ///    whose name encodes `fnv1a64(C)`. Among every contender that
    ///    observed the same dead owner, exactly one wins the claim.
    /// 2. The winner re-reads `store.lock` and removes it only if the
    ///    bytes still equal `C` *and* it still classifies as stale. A
    ///    lock re-created in the meantime carries a fresh stamp
    ///    (different bytes, not stale), so it can never be removed here.
    /// 3. The claim is deleted and everyone returns to the only arbiter
    ///    of ownership: `create_new` on `store.lock` itself.
    ///
    /// The claim file is stamped `"<pid> <micros>"` exactly like a lock,
    /// so a claim orphaned by a winner that died mid-steal ages into
    /// staleness and is cleared by the next contender instead of wedging
    /// the store forever. Returns whether the stale lock was removed.
    fn steal_stale_lock(&self, path: &Path) -> bool {
        let Ok(observed) = fs::read(path) else {
            // Gone already — someone else finished the steal.
            return false;
        };
        let claim = self
            .root
            .join(format!("store.lock.steal-{:016x}", fnv1a64(&observed)));
        match fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&claim)
        {
            Ok(file) => {
                use std::io::Write as _;
                let mut file = file;
                let _ = write!(file, "{} {}", std::process::id(), now_micros());
                let unchanged = fs::read(path).is_ok_and(|now| now == observed);
                let stole = unchanged && lock_is_stale(path);
                if stole {
                    let _ = fs::remove_file(path);
                }
                let _ = fs::remove_file(&claim);
                stole
            }
            Err(e) if e.kind() == ErrorKind::AlreadyExists => {
                // Another live contender holds the claim. If the claim is
                // itself a leftover from a stealer that died mid-steal,
                // clear it so progress resumes; the blast radius of this
                // (naive) remove is one short-lived claim file, never the
                // lock.
                if lock_is_stale(&claim) {
                    let _ = fs::remove_file(&claim);
                }
                false
            }
            Err(_) => false,
        }
    }

    /// Stamp `name`'s LRU sidecar with the current wall-clock micros.
    fn touch(&self, name: &str) {
        let stamp = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
            .unwrap_or(0);
        let _ = fs::write(self.root.join(format!("{name}.used")), stamp.to_le_bytes());
    }

    fn used_stamp(&self, name: &str) -> u64 {
        fs::read(self.root.join(format!("{name}.used")))
            .ok()
            .and_then(|b| b.try_into().ok().map(u64::from_le_bytes))
            .unwrap_or(0)
    }

    /// Atomically write `bytes` to `rel` (under the store lock), then
    /// enforce the size cap. The fault hook sees the bytes first.
    fn write_entry(&self, rel: &str, mut bytes: Vec<u8>) {
        let hook = self.hook.lock().expect("hook lock poisoned").clone();
        if let Some(hook) = hook {
            if !hook.corrupt(rel, &mut bytes) {
                return; // injected crash before the write ever happened
            }
        }
        let _guard = self.lock_exclusive();
        let final_path = self.root.join(rel);
        let tmp_path = self.root.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            rel.replace('/', "_")
        ));
        let written =
            fs::write(&tmp_path, &bytes).and_then(|()| fs::rename(&tmp_path, &final_path));
        match written {
            Ok(()) => {
                if !rel.contains('/') {
                    self.touch(rel);
                    self.enforce_capacity(rel);
                }
            }
            Err(e) => {
                let _ = fs::remove_file(&tmp_path);
                self.push_diag(
                    Diagnostic::warning(
                        CACHE_IO,
                        Span::unknown(),
                        format!("failed to write cache entry `{rel}`: {e}"),
                    )
                    .with_note("the run continues without persisting this artifact"),
                );
            }
        }
    }

    /// Evict least-recently-used `.bin` entries until the cache is under
    /// its size cap. `protect` (the entry just written) is never evicted.
    pub(crate) fn enforce_capacity(&self, protect: &str) {
        let Ok(dir) = fs::read_dir(&self.root) else {
            return;
        };
        let mut entries: Vec<(String, u64)> = Vec::new();
        let mut total: u64 = 0;
        for entry in dir.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if !name.ends_with(".bin") || !(name.starts_with("m-") || name.starts_with("n-")) {
                continue;
            }
            let size = entry.metadata().map_or(0, |m| m.len());
            total += size;
            entries.push((name, size));
        }
        if total <= self.max_bytes {
            return;
        }
        entries.sort_by_key(|(name, _)| (self.used_stamp(name), name.clone()));
        let mut removed = 0u64;
        for (name, size) in entries {
            if total <= self.max_bytes {
                break;
            }
            if name == protect {
                continue;
            }
            if fs::remove_file(self.root.join(&name)).is_ok() {
                let _ = fs::remove_file(self.root.join(format!("{name}.used")));
                total -= size;
                removed += 1;
            }
        }
        if removed > 0 {
            self.evicted.fetch_add(removed, Ordering::Relaxed);
            self.push_diag(Diagnostic::info(
                EVICTED,
                Span::unknown(),
                format!(
                    "evicted {removed} cache entr{} to stay under the size cap",
                    if removed == 1 { "y" } else { "ies" }
                ),
            ));
        }
    }

    /// Move a bad entry out of the lookup path and record why.
    fn quarantine(&self, name: &str, err: EntryError) {
        let from = self.root.join(name);
        let to = self.root.join("quarantine").join(name);
        if fs::rename(&from, &to).is_err() {
            let _ = fs::remove_file(&from);
        }
        let _ = fs::remove_file(self.root.join(format!("{name}.used")));
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        let (code, why) = match err {
            EntryError::Corrupt(why) => (CORRUPT_ENTRY, why),
            EntryError::Version => (STALE_VERSION, "unknown magic or format version"),
        };
        self.push_diag(
            Diagnostic::warning(
                code,
                Span::unknown(),
                format!("quarantined cache entry `{name}`: {why}"),
            )
            .with_note(
                "the model was recompiled; delete the quarantine directory to reclaim space",
            ),
        );
    }

    fn read_entry(&self, name: &str) -> Option<Vec<u8>> {
        match fs::read(self.root.join(name)) {
            Ok(bytes) => Some(bytes),
            Err(e) if e.kind() == ErrorKind::NotFound => None,
            Err(e) => {
                self.push_diag(Diagnostic::warning(
                    CACHE_IO,
                    Span::unknown(),
                    format!("failed to read cache entry `{name}`: {e}"),
                ));
                None
            }
        }
    }

    /// Load a compiled model, or `None` (after quarantining) on any miss
    /// or integrity failure.
    pub(crate) fn load_model(&self, key: &ModelKey) -> Option<Lts> {
        let name = key.file_name();
        let Some(bytes) = self.read_entry(&name) else {
            self.disk_misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        let decoded = (|| {
            let mut dec = Dec::open(&bytes, MAGIC_MODEL)?;
            key.check_echo(&mut dec)?;
            let lts = decode_lts(&mut dec)?;
            dec.done()?;
            Ok(lts)
        })();
        match decoded {
            Ok(lts) => {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                self.touch(&name);
                Some(lts)
            }
            Err(err) => {
                self.quarantine(&name, err);
                self.disk_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Persist a compiled model (best effort).
    pub(crate) fn store_model(&self, key: &ModelKey, lts: &Lts) {
        let mut enc = Enc::new(MAGIC_MODEL);
        key.encode(&mut enc);
        encode_lts(&mut enc, lts);
        self.write_entry(&key.file_name(), enc.finish());
    }

    /// Load a normalised specification, or `None` on miss/corruption.
    pub(crate) fn load_norm(&self, key: &NormDiskKey) -> Option<NormalisedLts> {
        let name = key.file_name();
        let Some(bytes) = self.read_entry(&name) else {
            self.disk_misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        let decoded = (|| {
            let mut dec = Dec::open(&bytes, MAGIC_NORM)?;
            key.model.check_echo(&mut dec)?;
            let norm_bound = dec.u64()?;
            if norm_bound != key.max_norm_nodes {
                return corrupt("key echo does not match requested key");
            }
            let norm = decode_norm(&mut dec)?;
            dec.done()?;
            Ok(norm)
        })();
        match decoded {
            Ok(norm) => {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                self.touch(&name);
                Some(norm)
            }
            Err(err) => {
                self.quarantine(&name, err);
                self.disk_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Persist a normalised specification (best effort).
    pub(crate) fn store_norm(&self, key: &NormDiskKey, norm: &NormalisedLts) {
        let mut enc = Enc::new(MAGIC_NORM);
        key.model.encode(&mut enc);
        enc.u64(key.max_norm_nodes);
        encode_norm(&mut enc, norm);
        self.write_entry(&key.file_name(), enc.finish());
    }

    /// Persist a checkpoint under its check id (best effort).
    pub(crate) fn save_checkpoint(&self, ckpt: &Checkpoint) {
        let rel = format!("checkpoints/{}.ckpt", ckpt.id.token());
        self.write_entry(&rel, encode_checkpoint(ckpt));
    }

    /// Load the checkpoint for `id`, or `None` (with a [`BAD_CHECKPOINT`]
    /// diagnostic if a file existed but was rejected).
    pub(crate) fn load_checkpoint(&self, id: CheckId) -> Option<Checkpoint> {
        let name = format!("{}.ckpt", id.token());
        let path = self.root.join("checkpoints").join(&name);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == ErrorKind::NotFound => return None,
            Err(e) => {
                self.push_diag(Diagnostic::warning(
                    CACHE_IO,
                    Span::unknown(),
                    format!("failed to read checkpoint `{name}`: {e}"),
                ));
                return None;
            }
        };
        match decode_checkpoint(&bytes, id) {
            Ok(ckpt) => Some(ckpt),
            Err(err) => {
                let to = self.root.join("quarantine").join(&name);
                if fs::rename(&path, &to).is_err() {
                    let _ = fs::remove_file(&path);
                }
                self.quarantined.fetch_add(1, Ordering::Relaxed);
                let why = match err {
                    EntryError::Corrupt(why) => why,
                    EntryError::Version => "unknown magic or format version",
                };
                self.push_diag(
                    Diagnostic::warning(
                        BAD_CHECKPOINT,
                        Span::unknown(),
                        format!("rejected checkpoint `{name}`: {why}"),
                    )
                    .with_note("the check restarts from scratch"),
                );
                None
            }
        }
    }

    /// Discard a checkpoint that decoded cleanly but does not fit the
    /// models of the current check (e.g. written by an older script
    /// revision whose state spaces were shaped differently).
    pub(crate) fn discard_checkpoint(&self, id: CheckId, why: &str) {
        let name = format!("{}.ckpt", id.token());
        let from = self.root.join("checkpoints").join(&name);
        let to = self.root.join("quarantine").join(&name);
        if fs::rename(&from, &to).is_err() {
            let _ = fs::remove_file(&from);
        }
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        self.push_diag(
            Diagnostic::warning(
                BAD_CHECKPOINT,
                Span::unknown(),
                format!("discarded checkpoint `{name}`: {why}"),
            )
            .with_note("the check restarts from scratch"),
        );
    }

    /// Remove the checkpoint for `id` (called when a resumed run completes).
    pub(crate) fn remove_checkpoint(&self, id: CheckId) {
        let path = self
            .root
            .join("checkpoints")
            .join(format!("{}.ckpt", id.token()));
        let _ = fs::remove_file(path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp::EventSet;

    fn e(n: u32) -> EventId {
        EventId::from_index(n as usize)
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fdrlite-persist-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn sample_lts() -> Lts {
        // 0 --a--> 1 --tick--> 2(Ω), plus a tau self-ish edge 0 --tau--> 1.
        Lts::from_parts(
            vec![Process::Stop, Process::Stop, Process::Omega],
            vec![
                vec![
                    (Label::Tau, StateId::from_index(1)),
                    (Label::Event(e(0)), StateId::from_index(1)),
                ],
                vec![(Label::Tick, StateId::from_index(2))],
                vec![],
            ],
        )
    }

    fn sample_key() -> ModelKey {
        ModelKey {
            hash: ModelHash([0x1234_5678_9abc_def0, 0x0fed_cba9_8765_4321]),
            max_states: 100_000,
            compress: false,
        }
    }

    fn encode_model_entry(key: &ModelKey, lts: &Lts) -> Vec<u8> {
        let mut enc = Enc::new(MAGIC_MODEL);
        key.encode(&mut enc);
        encode_lts(&mut enc, lts);
        enc.finish()
    }

    #[test]
    fn lts_roundtrips_with_omega_flags_and_exact_edges() {
        let lts = sample_lts();
        let cache = PersistentCache::open(tmpdir("roundtrip")).unwrap();
        let key = sample_key();
        cache.store_model(&key, &lts);
        let back = cache.load_model(&key).expect("entry must load");
        assert_eq!(back.state_count(), lts.state_count());
        for s in lts.state_ids() {
            assert_eq!(back.edges(s), lts.edges(s));
            assert_eq!(
                matches!(back.state(s), Process::Omega),
                matches!(lts.state(s), Process::Omega),
            );
        }
        assert_eq!(cache.disk_hits(), 1);
        assert_eq!(cache.disk_misses(), 0);
    }

    #[test]
    fn missing_entry_is_a_clean_miss() {
        let cache = PersistentCache::open(tmpdir("miss")).unwrap();
        assert!(cache.load_model(&sample_key()).is_none());
        assert_eq!(cache.disk_misses(), 1);
        assert!(
            cache.take_diagnostics().is_empty(),
            "a miss is not an error"
        );
    }

    #[test]
    fn every_single_byte_flip_is_rejected_or_harmless() {
        let lts = sample_lts();
        let key = sample_key();
        let good = encode_model_entry(&key, &lts);
        for pos in 0..good.len() {
            for bit in 0..8 {
                let mut bad = good.clone();
                bad[pos] ^= 1 << bit;
                let decoded: DecResult<Lts> = (|| {
                    let mut dec = Dec::open(&bad, MAGIC_MODEL)?;
                    key.check_echo(&mut dec)?;
                    let lts = decode_lts(&mut dec)?;
                    dec.done()?;
                    Ok(lts)
                })();
                assert!(
                    decoded.is_err(),
                    "flip at byte {pos} bit {bit} must be caught by the checksum"
                );
            }
        }
    }

    #[test]
    fn truncations_are_rejected() {
        let lts = sample_lts();
        let key = sample_key();
        let good = encode_model_entry(&key, &lts);
        for cut in 0..good.len() {
            let bad = &good[..cut];
            let decoded = Dec::open(bad, MAGIC_MODEL).and_then(|mut dec| {
                key.check_echo(&mut dec)?;
                decode_lts(&mut dec)
            });
            assert!(decoded.is_err(), "truncation to {cut} bytes must be caught");
        }
    }

    #[test]
    fn corrupt_file_on_disk_is_quarantined_with_a_diagnostic() {
        let dir = tmpdir("quarantine");
        let cache = PersistentCache::open(&dir).unwrap();
        let key = sample_key();
        cache.store_model(&key, &sample_lts());
        let path = dir.join(key.file_name());
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&path, &bytes).unwrap();

        assert!(cache.load_model(&key).is_none(), "corrupt entry must miss");
        assert!(!path.exists(), "bad entry must leave the lookup path");
        assert!(dir.join("quarantine").join(key.file_name()).exists());
        assert_eq!(cache.quarantined(), 1);
        let diags = cache.take_diagnostics();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, CORRUPT_ENTRY);

        // And the slot is reusable: a rewrite loads cleanly again.
        cache.store_model(&key, &sample_lts());
        assert!(cache.load_model(&key).is_some());
    }

    #[test]
    fn stale_version_is_quarantined_under_its_own_code() {
        let dir = tmpdir("stale");
        let cache = PersistentCache::open(&dir).unwrap();
        let key = sample_key();
        cache.store_model(&key, &sample_lts());
        let path = dir.join(key.file_name());
        let mut bytes = fs::read(&path).unwrap();
        bytes[8] = 0xee; // version field
        let fixed = {
            let body_len = bytes.len() - 8;
            let sum = fnv1a64(&bytes[..body_len]);
            bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
            bytes
        };
        fs::write(&path, &fixed).unwrap();

        assert!(cache.load_model(&key).is_none());
        let diags = cache.take_diagnostics();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, STALE_VERSION);
    }

    #[test]
    fn key_echo_rejects_an_entry_renamed_onto_another_key() {
        let dir = tmpdir("echo");
        let cache = PersistentCache::open(&dir).unwrap();
        let key = sample_key();
        cache.store_model(&key, &sample_lts());
        let other = ModelKey {
            max_states: 999,
            ..key
        };
        fs::rename(dir.join(key.file_name()), dir.join(other.file_name())).unwrap();
        assert!(cache.load_model(&other).is_none(), "echo must catch this");
        assert_eq!(cache.take_diagnostics()[0].code, CORRUPT_ENTRY);
    }

    #[test]
    fn norm_roundtrips_verbatim() {
        let lts = Lts::from_parts(
            vec![Process::Stop, Process::Stop, Process::Omega],
            vec![
                vec![
                    (Label::Event(e(0)), StateId::from_index(1)),
                    (Label::Event(e(2)), StateId::from_index(0)),
                ],
                vec![(Label::Tick, StateId::from_index(2))],
                vec![],
            ],
        );
        let norm = NormalisedLts::build(&lts, 1000).unwrap();
        let cache = PersistentCache::open(tmpdir("norm")).unwrap();
        let key = NormDiskKey {
            model: sample_key(),
            max_norm_nodes: 1000,
        };
        cache.store_norm(&key, &norm);
        let back = cache.load_norm(&key).expect("norm must load");
        let mut a = Enc::new(MAGIC_NORM);
        encode_norm(&mut a, &norm);
        let mut b = Enc::new(MAGIC_NORM);
        encode_norm(&mut b, &back);
        assert_eq!(a.finish(), b.finish(), "norm must re-encode identically");
    }

    #[test]
    fn content_hash_is_structural_and_definition_sensitive() {
        let mut defs = Definitions::new();
        let d = defs.declare("P");
        defs.define(d, Process::prefix(e(0), Process::var(d)));

        let p1 = Process::prefix(e(0), Process::var(d));
        let p2 = Process::prefix(e(0), Process::var(d));
        assert_eq!(content_hash(&p1, &defs), content_hash(&p2, &defs));

        let p3 = Process::prefix(e(1), Process::var(d));
        assert_ne!(content_hash(&p1, &defs), content_hash(&p3, &defs));

        // Same term, different recursion body: different meaning.
        let mut defs2 = Definitions::new();
        let d2 = defs2.declare("P");
        defs2.define(d2, Process::prefix(e(1), Process::var(d2)));
        assert_ne!(content_hash(&p1, &defs), content_hash(&p1, &defs2));
    }

    #[test]
    fn content_hash_separates_operators_and_empty_sets() {
        let defs = Definitions::new();
        let a = Process::prefix(e(0), Process::Stop);
        let b = Process::prefix(e(1), Process::Stop);
        let ext = Process::external_choice(a.clone(), b.clone());
        let int = Process::internal_choice(a.clone(), b.clone());
        assert_ne!(content_hash(&ext, &defs), content_hash(&int, &defs));

        let par = Process::parallel(EventSet::empty(), a.clone(), b.clone());
        let sync = Process::parallel(EventSet::singleton(e(0)), a, b);
        assert_ne!(content_hash(&par, &defs), content_hash(&sync, &defs));
    }

    #[test]
    fn eviction_drops_least_recently_used_first() {
        let dir = tmpdir("evict");
        let cache = PersistentCache::with_capacity(&dir, 1).unwrap();
        let lts = sample_lts();
        let k1 = ModelKey {
            hash: ModelHash([1, 1]),
            max_states: 10,
            compress: false,
        };
        let k2 = ModelKey {
            hash: ModelHash([2, 2]),
            max_states: 10,
            compress: false,
        };
        let k3 = ModelKey {
            hash: ModelHash([3, 3]),
            max_states: 10,
            compress: false,
        };
        cache.store_model(&k1, &lts);
        cache.store_model(&k2, &lts);
        cache.store_model(&k3, &lts);
        // Force a known LRU order, then enforce: k2 oldest, k1 next, k3 newest.
        fs::write(
            dir.join(format!("{}.used", k2.file_name())),
            1u64.to_le_bytes(),
        )
        .unwrap();
        fs::write(
            dir.join(format!("{}.used", k1.file_name())),
            2u64.to_le_bytes(),
        )
        .unwrap();
        fs::write(
            dir.join(format!("{}.used", k3.file_name())),
            3u64.to_le_bytes(),
        )
        .unwrap();
        cache.enforce_capacity(&k3.file_name());
        assert!(!dir.join(k2.file_name()).exists(), "oldest must go first");
        assert!(
            dir.join(k3.file_name()).exists(),
            "the protected newest entry must survive"
        );
        assert!(cache.evicted() >= 1);
    }

    #[test]
    fn fault_hook_sees_writes_and_can_drop_them() {
        struct DropAll;
        impl StorageFaultHook for DropAll {
            fn corrupt(&self, _name: &str, _bytes: &mut Vec<u8>) -> bool {
                false
            }
        }
        let dir = tmpdir("hook");
        let cache = PersistentCache::open(&dir).unwrap();
        cache.set_fault_hook(Arc::new(DropAll));
        let key = sample_key();
        cache.store_model(&key, &sample_lts());
        assert!(
            !dir.join(key.file_name()).exists(),
            "a dropped write must leave no file behind"
        );
        assert!(cache.load_model(&key).is_none());
    }

    #[test]
    fn checkpoint_roundtrips_both_engines() {
        let cache = PersistentCache::open(tmpdir("ckpt")).unwrap();
        let id = CheckId([42, 43]);
        let serial = Checkpoint {
            id,
            model: RefinementModel::Traces,
            frontier: EngineFrontier::Serial(SerialFrontier {
                nodes: vec![
                    CkptNode {
                        s: 0,
                        n: 0,
                        vlen: 0,
                        parent: 0,
                        label: None,
                    },
                    CkptNode {
                        s: 1,
                        n: 0,
                        vlen: 1,
                        parent: 0,
                        label: Some(e(7)),
                    },
                ],
                deque: vec![1],
                pairs_discovered: 2,
                expansions: 1,
                transitions: 3,
                frontier_peak: 2,
            }),
        };
        cache.save_checkpoint(&serial);
        assert_eq!(cache.load_checkpoint(id).as_ref(), Some(&serial));

        let id2 = CheckId([7, 9]);
        let par = Checkpoint {
            id: id2,
            model: RefinementModel::Traces,
            frontier: EngineFrontier::Parallel(ParallelFrontier {
                visited: vec![(0, 0, 0), (1, 1, 1)],
                frontier: vec![(1, 1, 1)],
                discovered: 2,
                best: u32::MAX,
                expansions: 5,
                transitions: 9,
                steals: 1,
                frontier_peak: 2,
            }),
        };
        cache.save_checkpoint(&par);
        assert_eq!(cache.load_checkpoint(id2).as_ref(), Some(&par));

        cache.remove_checkpoint(id);
        assert!(cache.load_checkpoint(id).is_none());
        assert!(
            cache.take_diagnostics().is_empty(),
            "a removed checkpoint is a clean miss, not an error"
        );
    }

    #[test]
    fn checkpoint_keyed_to_another_check_is_rejected() {
        let dir = tmpdir("ckpt-key");
        let cache = PersistentCache::open(&dir).unwrap();
        let id = CheckId([1, 2]);
        let ckpt = Checkpoint {
            id,
            model: RefinementModel::Traces,
            frontier: EngineFrontier::Parallel(ParallelFrontier {
                visited: vec![(0, 0, 0)],
                frontier: vec![],
                discovered: 1,
                best: u32::MAX,
                expansions: 0,
                transitions: 0,
                steals: 0,
                frontier_peak: 1,
            }),
        };
        cache.save_checkpoint(&ckpt);
        let other = CheckId([9, 9]);
        fs::rename(
            dir.join("checkpoints").join(format!("{}.ckpt", id.token())),
            dir.join("checkpoints")
                .join(format!("{}.ckpt", other.token())),
        )
        .unwrap();
        assert!(cache.load_checkpoint(other).is_none());
        assert_eq!(cache.take_diagnostics()[0].code, BAD_CHECKPOINT);
    }

    #[test]
    fn tokens_roundtrip_and_reject_garbage() {
        let id = CheckId([0xdead_beef, 0x1234]);
        assert_eq!(CheckId::from_token(&id.token()), Some(id));
        assert_eq!(CheckId::from_token("nope"), None);
        assert_eq!(CheckId::from_token(&"z".repeat(32)), None);
        assert_eq!(CheckId::from_token("../../../../etc/passwd"), None);
    }

    #[test]
    fn check_ids_separate_engine_model_and_bounds() {
        let base = CheckIdParts {
            spec: ModelHash([1, 2]),
            impl_: ModelHash([3, 4]),
            model: RefinementModel::Traces,
            max_states: 100,
            max_norm_nodes: 100,
            max_product: 100,
            compress: false,
            parallel: false,
        };
        let id = base.id();
        assert_ne!(
            id,
            CheckIdParts {
                parallel: true,
                ..base
            }
            .id()
        );
        assert_ne!(
            id,
            CheckIdParts {
                model: RefinementModel::Failures,
                ..base
            }
            .id()
        );
        assert_ne!(
            id,
            CheckIdParts {
                max_states: 101,
                ..base
            }
            .id()
        );
        assert_eq!(id, base.id(), "ids must be deterministic");
    }

    #[test]
    fn concurrent_writers_do_not_corrupt_each_other() {
        let dir = tmpdir("concurrent");
        let lts = sample_lts();
        let key = sample_key();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let dir = &dir;
                let lts = &lts;
                scope.spawn(move || {
                    let cache = PersistentCache::open(dir).unwrap();
                    for _ in 0..20 {
                        cache.store_model(&key, lts);
                        // Loads may race a rename but must never see torn data.
                        if let Some(back) = cache.load_model(&key) {
                            assert_eq!(back.state_count(), 3);
                        }
                    }
                });
            }
        });
        let cache = PersistentCache::open(&dir).unwrap();
        assert!(cache.load_model(&key).is_some());
        assert_eq!(cache.quarantined(), 0, "no writer may tear another's entry");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn stale_lock_from_dead_process_is_stolen() {
        let dir = tmpdir("stale-lock");
        // A process that existed, held the lock, and died: spawn a child,
        // wait for it, then forge the lock file it "left behind".
        let child = std::process::Command::new("true")
            .spawn()
            .expect("spawn child");
        let dead_pid = child.id();
        child.wait_with_output().expect("reap child");
        fs::write(
            dir.join("store.lock"),
            format!("{dead_pid} {}", now_micros()),
        )
        .unwrap();

        let cache = PersistentCache::open(&dir).unwrap();
        cache.store_model(&sample_key(), &sample_lts());

        assert!(
            cache.load_model(&sample_key()).is_some(),
            "write went through"
        );
        assert_eq!(cache.locks_stolen(), 1);
        let diags = cache.take_diagnostics();
        assert!(diags.iter().any(|d| d.code == STALE_LOCK));
        assert!(
            !dir.join("store.lock").exists(),
            "the stolen lock was re-acquired and released cleanly"
        );
    }

    #[test]
    fn live_lock_is_waited_out_not_stolen() {
        let dir = tmpdir("live-lock");
        // Our own pid with a fresh stamp: a live holder. The writer must
        // wait out its bounded retry budget and then degrade to an
        // unlocked (still atomic) write — never steal.
        fs::write(
            dir.join("store.lock"),
            format!("{} {}", std::process::id(), now_micros()),
        )
        .unwrap();

        let cache = PersistentCache::open(&dir).unwrap();
        cache.store_model(&sample_key(), &sample_lts());

        assert!(
            cache.load_model(&sample_key()).is_some(),
            "write degraded, not lost"
        );
        assert_eq!(cache.locks_stolen(), 0);
        assert!(
            dir.join("store.lock").exists(),
            "a live holder's lock is left alone"
        );
    }

    #[test]
    fn unstamped_fresh_lock_is_not_stale() {
        let dir = tmpdir("unstamped-lock");
        let path = dir.join("store.lock");
        // Freshly created but not yet stamped (the holder sits between
        // `create_new` and its first write): within the grace period.
        fs::write(&path, "").unwrap();
        assert!(!lock_is_stale(&path));
        // Garbage content behaves the same as empty.
        fs::write(&path, "not a pid stamp").unwrap();
        assert!(!lock_is_stale(&path));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn dead_pid_lock_classifies_as_stale() {
        let dir = tmpdir("dead-pid-lock");
        let path = dir.join("store.lock");
        let child = std::process::Command::new("true")
            .spawn()
            .expect("spawn child");
        let dead_pid = child.id();
        child.wait_with_output().expect("reap child");
        fs::write(&path, format!("{dead_pid} {}", now_micros())).unwrap();
        assert!(lock_is_stale(&path));
        // An ancient stamp is stale even with a live pid (pid reuse).
        fs::write(&path, format!("{} 1", std::process::id())).unwrap();
        assert!(lock_is_stale(&path));
        // A live pid with a fresh stamp is not.
        fs::write(&path, format!("{} {}", std::process::id(), now_micros())).unwrap();
        assert!(!lock_is_stale(&path));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn concurrent_stealers_of_one_dead_lock_yield_one_winner() {
        let dir = tmpdir("steal-race");
        let child = std::process::Command::new("true")
            .spawn()
            .expect("spawn child");
        let dead_pid = child.id();
        child.wait_with_output().expect("reap child");
        fs::write(
            dir.join("store.lock"),
            format!("{dead_pid} {}", now_micros()),
        )
        .unwrap();

        // Eight live contenders all observe the same dead owner and race
        // the steal. The claim protocol must elect exactly one remover;
        // everyone must still make progress (every write lands), and no
        // contender may ever delete a *live* lock re-created by the
        // winner — which would show up as a second steal.
        let stolen: u64 = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let dir = &dir;
                    scope.spawn(move || {
                        let cache = PersistentCache::open(dir).unwrap();
                        cache.store_model(&sample_key(), &sample_lts());
                        cache.locks_stolen()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(stolen, 1, "exactly one contender may steal a dead lock");

        let cache = PersistentCache::open(&dir).unwrap();
        assert!(cache.load_model(&sample_key()).is_some(), "writes landed");
        assert!(
            !dir.join("store.lock").exists(),
            "every acquired lock was released cleanly"
        );
        assert_eq!(
            fs::read_dir(&dir)
                .unwrap()
                .filter(|e| {
                    e.as_ref()
                        .unwrap()
                        .file_name()
                        .to_string_lossy()
                        .starts_with("store.lock.steal-")
                })
                .count(),
            0,
            "no claim files left behind"
        );
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn loser_with_stale_observation_leaves_fresh_lock_alone() {
        let dir = tmpdir("steal-abort");
        let path = dir.join("store.lock");
        let child = std::process::Command::new("true")
            .spawn()
            .expect("spawn child");
        let dead_pid = child.id();
        child.wait_with_output().expect("reap child");
        fs::write(&path, format!("{dead_pid} {}", now_micros())).unwrap();

        let cache = PersistentCache::open(&dir).unwrap();
        // Simulate "observed stale, then the winner stole it and a fresh
        // live lock appeared" by swapping the content between this
        // contender's staleness check and its steal attempt.
        let fresh = format!("{} {}", std::process::id(), now_micros());
        fs::write(&path, &fresh).unwrap();
        assert!(
            !cache.steal_stale_lock(&path),
            "a steal against changed content must abort"
        );
        assert_eq!(
            fs::read_to_string(&path).unwrap(),
            fresh,
            "the live lock is untouched"
        );
    }

    #[test]
    fn orphaned_steal_claim_is_cleared_not_wedging() {
        let dir = tmpdir("steal-orphan");
        let path = dir.join("store.lock");
        // A dead-owner lock plus an *orphaned* claim for exactly that
        // content (its winner died mid-steal, stamp long in the past).
        fs::write(&path, "1 1").unwrap();
        let claim = dir.join(format!(
            "store.lock.steal-{:016x}",
            fnv1a64("1 1".as_bytes())
        ));
        fs::write(&claim, "1 1").unwrap();

        let cache = PersistentCache::open(&dir).unwrap();
        // First attempt finds the claim held and clears the stale claim;
        // a later attempt then wins it and completes the steal.
        assert!(!cache.steal_stale_lock(&path));
        assert!(!claim.exists(), "the dead stealer's claim was cleared");
        assert!(cache.steal_stale_lock(&path), "progress resumes");
        assert!(!path.exists());
    }
}
