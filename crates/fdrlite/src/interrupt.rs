//! Cooperative interrupt flag polled by the exploration engines.
//!
//! A signal handler (or any other shutdown authority — the CLI installs one
//! for `SIGTERM`) calls [`request_interrupt`]; both the serial and the
//! parallel engine observe the flag on their budget-polling path and wind
//! down exactly as if a wall-clock budget had expired: the check returns
//! [`Verdict::Inconclusive`](crate::Verdict::Inconclusive) with
//! [`BudgetReason::Interrupted`](crate::BudgetReason::Interrupted), and —
//! when a persistent cache is attached — the frontier is checkpointed and a
//! resume token attached, so `--resume` later continues to a verdict
//! bit-identical to an uninterrupted run.
//!
//! The flag is process-global because signal handlers have no other safe
//! channel: the handler may only perform async-signal-safe work, and a
//! relaxed atomic store qualifies.

use std::sync::atomic::{AtomicBool, Ordering};

static INTERRUPTED: AtomicBool = AtomicBool::new(false);

/// Request a graceful wind-down of every in-flight exploration in this
/// process. Safe to call from a signal handler (a single atomic store).
pub fn request_interrupt() {
    INTERRUPTED.store(true, Ordering::Relaxed);
}

/// Has an interrupt been requested (and not yet cleared)?
pub fn interrupt_requested() -> bool {
    INTERRUPTED.load(Ordering::Relaxed)
}

/// Clear the interrupt flag (tests and long-lived supervisors that survive
/// the wind-down and want to run further checks).
pub fn clear_interrupt() {
    INTERRUPTED.store(false, Ordering::Relaxed);
}
