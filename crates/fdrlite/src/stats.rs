//! Observability for refinement runs: counters and timings collected by the
//! serial and parallel engines, printable for humans (`autocsp check
//! --stats`) and serialisable as JSON for the benchmark harness.

use std::fmt;
use std::time::Duration;

/// Counters and timings from one product exploration.
///
/// Every field is filled by both engines; fields that only make sense for
/// the work-stealing engine (`steals`, `shard_peak`) stay zero / one on the
/// serial path. Counter semantics:
///
/// * `pairs_discovered` — distinct `(impl state, spec node)` pairs inserted
///   into the visited set (the memory-side cost);
/// * `expansions` — tasks processed, *including* re-expansions after a
///   shorter path to an already-known pair is found (the CPU-side cost);
/// * `transitions` — product edges traversed;
/// * `frontier_peak` — maximum number of pending tasks observed;
/// * `steals` — successful steal operations (victim deques + injector);
/// * `rewalk_expansions` — expansions spent by the bounded canonical
///   re-walk that recovers a deterministic shortest counterexample (zero
///   when the check passes).
///
/// End-to-end entry points (`trace_refinement_with_options` and friends,
/// and every check routed through a [`crate::ModelStore`]) additionally
/// split their wall time into `compile_wall` (explication + normalisation,
/// near zero on a store hit) and `explore_wall` (the product walk,
/// including witness recovery); `normalise_wall` carves the subset
/// construction's share out of `compile_wall` (`compile_wall` stays
/// inclusive), and they report how many compiled artifacts the
/// store served from cache (`store_hits`) versus built fresh
/// (`store_misses`). Engine-level entry points that take pre-compiled
/// artifacts leave `compile_wall` and the store counters at zero.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// Worker threads used (1 for the serial engine).
    pub threads: usize,
    /// Visited-set shards (1 for the serial engine).
    pub shards: usize,
    /// Distinct product pairs discovered.
    pub pairs_discovered: u64,
    /// Tasks expanded, including shorter-path re-expansions.
    pub expansions: u64,
    /// Product transitions traversed.
    pub transitions: u64,
    /// Peak number of pending tasks.
    pub frontier_peak: u64,
    /// Successful steals (work-stealing engine only).
    pub steals: u64,
    /// Largest shard of the visited set, in pairs.
    pub shard_peak: u64,
    /// Expansions spent recovering the canonical counterexample.
    pub rewalk_expansions: u64,
    /// Compiled artifacts served from the model store's cache.
    pub store_hits: u64,
    /// Compiled artifacts the model store had to build fresh.
    pub store_misses: u64,
    /// Graph analyses (SCC/divergence/deadlock classifications) served
    /// from the model store's analysis cache. Zero for checks that never
    /// consult the analysis (plain `[T=` / `[F=`).
    pub analysis_hits: u64,
    /// Graph analyses the store had to compute fresh.
    pub analysis_misses: u64,
    /// A-priori upper bound on `pairs_discovered`, predicted before the
    /// product walk from the compiled component sizes (spec normal-form
    /// nodes × implementation states). Always ≥ `pairs_discovered`; zero
    /// when the check never reached the product phase.
    pub predicted_pairs: u64,
    /// Wall-clock time of the exploration (including witness recovery).
    pub wall: Duration,
    /// Aggregate busy time across workers (≈ CPU time; excludes idle
    /// spinning while waiting for work).
    pub cpu_busy: Duration,
    /// Wall-clock time spent compiling and normalising (zero when every
    /// artifact came pre-compiled or from a warm store).
    pub compile_wall: Duration,
    /// Wall-clock time of the spec subset construction alone — a carve-out
    /// of `compile_wall`, not an addition to it (zero when the normal form
    /// came from a warm store).
    pub normalise_wall: Duration,
    /// Wall-clock time of the product exploration alone (equals `wall` for
    /// engine-level runs).
    pub explore_wall: Duration,
    /// How far past the wall-clock deadline the engine ran before stopping
    /// (zero unless a wall budget tripped). The serial engine checks the
    /// clock before every expansion, so this is bounded by one state's work;
    /// the parallel engine samples the clock every 256 tasks per worker.
    pub wall_overshoot: Duration,
}

impl CheckStats {
    /// Exploration throughput in expanded states per second of wall time.
    pub fn states_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.expansions as f64 / secs
        } else {
            0.0
        }
    }

    /// Mean shard occupancy (pairs per shard).
    pub fn shard_mean(&self) -> f64 {
        if self.shards == 0 {
            0.0
        } else {
            self.pairs_discovered as f64 / self.shards as f64
        }
    }

    /// Render as a single JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"threads\":{},\"shards\":{},\"pairs_discovered\":{},\"expansions\":{},\
             \"transitions\":{},\"frontier_peak\":{},\"steals\":{},\"shard_peak\":{},\
             \"rewalk_expansions\":{},\"store_hits\":{},\"store_misses\":{},\
             \"analysis_hits\":{},\"analysis_misses\":{},\"predicted_pairs\":{},\"wall_us\":{},\
             \"cpu_busy_us\":{},\"compile_us\":{},\"normalise_us\":{},\"explore_us\":{},\
             \"wall_overshoot_us\":{},\"states_per_sec\":{:.1}}}",
            self.threads,
            self.shards,
            self.pairs_discovered,
            self.expansions,
            self.transitions,
            self.frontier_peak,
            self.steals,
            self.shard_peak,
            self.rewalk_expansions,
            self.store_hits,
            self.store_misses,
            self.analysis_hits,
            self.analysis_misses,
            self.predicted_pairs,
            self.wall.as_micros(),
            self.cpu_busy.as_micros(),
            self.compile_wall.as_micros(),
            self.normalise_wall.as_micros(),
            self.explore_wall.as_micros(),
            self.wall_overshoot.as_micros(),
            self.states_per_sec(),
        )
    }
}

impl fmt::Display for CheckStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} states ({:.0}/s), {} transitions, frontier peak {}, \
             {} steals, {} shards (peak {}), rewalk {}, \
             wall {:.3} ms (compile {:.3} [norm {:.3}] + explore {:.3}), cpu {:.3} ms, \
             store {}/{} hit, analysis {}/{} hit, predicted ≤ {} pairs, \
             {} thread(s)",
            self.expansions,
            self.states_per_sec(),
            self.transitions,
            self.frontier_peak,
            self.steals,
            self.shards,
            self.shard_peak,
            self.rewalk_expansions,
            self.wall.as_secs_f64() * 1e3,
            self.compile_wall.as_secs_f64() * 1e3,
            self.normalise_wall.as_secs_f64() * 1e3,
            self.explore_wall.as_secs_f64() * 1e3,
            self.cpu_busy.as_secs_f64() * 1e3,
            self.store_hits,
            self.store_hits + self.store_misses,
            self.analysis_hits,
            self.analysis_hits + self.analysis_misses,
            self.predicted_pairs,
            self.threads,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_and_complete() {
        let stats = CheckStats {
            threads: 4,
            shards: 64,
            pairs_discovered: 100,
            expansions: 120,
            transitions: 300,
            frontier_peak: 40,
            steals: 7,
            shard_peak: 5,
            rewalk_expansions: 3,
            store_hits: 2,
            store_misses: 1,
            analysis_hits: 1,
            analysis_misses: 1,
            predicted_pairs: 640,
            wall: Duration::from_micros(2_500),
            cpu_busy: Duration::from_micros(9_000),
            compile_wall: Duration::from_micros(400),
            normalise_wall: Duration::from_micros(150),
            explore_wall: Duration::from_micros(2_100),
            wall_overshoot: Duration::from_micros(12),
        };
        let json = stats.to_json();
        for key in [
            "\"threads\":4",
            "\"shards\":64",
            "\"pairs_discovered\":100",
            "\"expansions\":120",
            "\"transitions\":300",
            "\"frontier_peak\":40",
            "\"steals\":7",
            "\"shard_peak\":5",
            "\"rewalk_expansions\":3",
            "\"store_hits\":2",
            "\"store_misses\":1",
            "\"analysis_hits\":1",
            "\"analysis_misses\":1",
            "\"predicted_pairs\":640",
            "\"wall_us\":2500",
            "\"cpu_busy_us\":9000",
            "\"compile_us\":400",
            "\"normalise_us\":150",
            "\"explore_us\":2100",
            "\"wall_overshoot_us\":12",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(json.matches('{').count(), 1);
    }

    #[test]
    fn throughput_handles_zero_wall() {
        let stats = CheckStats::default();
        assert_eq!(stats.states_per_sec(), 0.0);
        assert_eq!(stats.shard_mean(), 0.0);
        let display = format!(
            "{}",
            CheckStats {
                expansions: 10,
                wall: Duration::from_millis(1),
                ..CheckStats::default()
            }
        );
        assert!(display.contains("10 states"), "{display}");
    }
}
