//! R05 — the shared-key assumption, made explicit.
//!
//! X.1373 lets implementations protect update messages with MACs (shared
//! keys) or digital signatures (§V-A2 of the paper). The translator works at
//! message granularity, so the cryptographic check is modelled here as
//! hand-written CSPm: every message on the update path carries a tag that
//! only the keyholder can make `good`; the ECU accepts a message only after
//! verifying the tag. A Dolev-Yao intruder (written in CSPm, knowledge as a
//! set-valued process parameter) relays the tapped hop and may forge —
//! but only with `bad` tags.
//!
//! Two system variants are provided:
//!
//! * [`MAC_SCRIPT`] — the verifying ECU; the authentication assertion holds;
//! * [`INSECURE_SCRIPT`] — a non-verifying ECU; the same assertion fails
//!   with a forged-update counterexample.
//!
//! The digital-signature variant ([`SIGNATURE_SCRIPT`]) has the same
//! protocol shape: `good` corresponds to a signature under the OEM's private
//! key, which the intruder also cannot produce. The behavioural model is
//! identical — the difference (key distribution) is outside the model, which
//! is why the paper treats MACs first and signatures as an extension.

use cspm::{AssertionResult, CspmError, Script};
use fdrlite::Checker;

/// The MAC-secured update path with a verifying ECU. The `AUTH` assertion
/// realises R05: the ECU applies an update only if the VMG really requested
/// it (the intruder cannot forge a `good` tag).
pub const MAC_SCRIPT: &str = r#"
-- R05: shared-key MAC protection of the update path (ITU-T X.1373).
datatype MsgT = reqSw | reqApp
datatype Tag = good | bad

channel net : MsgT.Tag   -- VMG transmits (tapped by the intruder)
channel dlv : MsgT.Tag   -- intruder delivers to the ECU
channel accept : MsgT    -- ECU accepted the message after verifying
channel reject           -- ECU discarded a message with a bad tag

-- The VMG holds the shared key, so its messages carry good MACs.
VMG = net.reqSw.good -> net.reqApp.good -> VMG

-- The intruder relays, replays and forges; a good MAC cannot be forged,
-- only replayed once overheard.
INTRUDER(known) =
     net?m?t -> (if t == good then INTRUDER(union(known, {m}))
                 else INTRUDER(known))
  [] dlv?m:known!good -> INTRUDER(known)
  [] dlv?m!bad -> INTRUDER(known)

-- The verifying ECU: accepts only good tags.
ECU = dlv?m?t -> (if t == good then accept.m -> ECU else reject -> ECU)

SYSTEM = (VMG [| {| net |} |] INTRUDER({})) [| {| dlv |} |] ECU

-- R05 authentication: an update is accepted only after the VMG sent it.
RUNALL = [] e : Events @ e -> RUNALL
AUTH = net.reqApp.good -> RUNALL
    [] ([] e : diff(Events, {| net.reqApp, accept.reqApp |}) @ e -> AUTH)

assert AUTH [T= SYSTEM
assert SYSTEM :[divergence free]
"#;

/// The same system with a non-verifying ECU: the forgery goes through and
/// the `AUTH` assertion fails.
pub const INSECURE_SCRIPT: &str = r#"
datatype MsgT = reqSw | reqApp
datatype Tag = good | bad

channel net : MsgT.Tag
channel dlv : MsgT.Tag
channel accept : MsgT
channel reject

VMG = net.reqSw.good -> net.reqApp.good -> VMG

INTRUDER(known) =
     net?m?t -> (if t == good then INTRUDER(union(known, {m}))
                 else INTRUDER(known))
  [] dlv?m:known!good -> INTRUDER(known)
  [] dlv?m!bad -> INTRUDER(known)

-- No MAC verification: everything is accepted.
ECU = dlv?m?t -> accept.m -> ECU

SYSTEM = (VMG [| {| net |} |] INTRUDER({})) [| {| dlv |} |] ECU

RUNALL = [] e : Events @ e -> RUNALL
AUTH = net.reqApp.good -> RUNALL
    [] ([] e : diff(Events, {| net.reqApp, accept.reqApp |}) @ e -> AUTH)

assert AUTH [T= SYSTEM
"#;

/// The asymmetric-signature variant (§V-A2's alternative / the paper's
/// further work): identical protocol shape, `good` now meaning "signed by
/// the OEM". Kept as a separate artefact so the two key schemes can be
/// compared and extended independently.
pub const SIGNATURE_SCRIPT: &str = r#"
-- Digital-signature protection: `good` = a valid signature under the OEM
-- key. The intruder can strip and replay signatures but not produce them.
datatype MsgT = reqSw | reqApp
datatype Sig = good | bad

channel net : MsgT.Sig
channel dlv : MsgT.Sig
channel accept : MsgT
channel reject

VMG = net.reqSw.good -> net.reqApp.good -> VMG

INTRUDER(known) =
     net?m?t -> (if t == good then INTRUDER(union(known, {m}))
                 else INTRUDER(known))
  [] dlv?m:known!good -> INTRUDER(known)
  [] dlv?m!bad -> INTRUDER(known)

ECU = dlv?m?t -> (if t == good then accept.m -> ECU else reject -> ECU)

SYSTEM = (VMG [| {| net |} |] INTRUDER({})) [| {| dlv |} |] ECU

RUNALL = [] e : Events @ e -> RUNALL
AUTH = net.reqApp.good -> RUNALL
    [] ([] e : diff(Events, {| net.reqApp, accept.reqApp |}) @ e -> AUTH)

assert AUTH [T= SYSTEM
assert SYSTEM :[divergence free]
"#;

/// Load and check one of the secured-model scripts.
///
/// # Errors
///
/// Script parse/load errors or checker bound violations.
pub fn check_script(script: &str, checker: &Checker) -> Result<Vec<AssertionResult>, CspmError> {
    Script::parse(script)?.load()?.check(checker)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_model_satisfies_r05() {
        let results = check_script(MAC_SCRIPT, &Checker::new()).unwrap();
        assert_eq!(results.len(), 2);
        for r in &results {
            assert!(r.verdict.is_pass(), "{}: {:?}", r.description, r.verdict);
        }
    }

    #[test]
    fn insecure_model_violates_r05_with_forgery() {
        let loaded = Script::parse(INSECURE_SCRIPT).unwrap().load().unwrap();
        let results = loaded.check(&Checker::new()).unwrap();
        let cex = results[0]
            .verdict
            .counterexample()
            .expect("AUTH must fail without verification");
        let shown = cex.display(loaded.alphabet()).to_string();
        // The forged apply-update is accepted without the VMG sending it.
        assert!(shown.contains("accept.reqApp"), "{shown}");
    }

    #[test]
    fn signature_model_satisfies_r05() {
        let results = check_script(SIGNATURE_SCRIPT, &Checker::new()).unwrap();
        assert!(results.iter().all(|r| r.verdict.is_pass()));
    }

    #[test]
    fn intruder_can_still_replay_good_messages() {
        // Replay is within the MAC threat model: the assertion is about
        // forgery, not freshness. Confirm the replay trace exists.
        let loaded = Script::parse(MAC_SCRIPT).unwrap().load().unwrap();
        let system = loaded.process("SYSTEM").unwrap().clone();
        let lts = csp::Lts::build(system, loaded.definitions(), 200_000).unwrap();
        let net = loaded.alphabet().lookup("net.reqSw.good").unwrap();
        let dlv = loaded.alphabet().lookup("dlv.reqSw.good").unwrap();
        let acc = loaded.alphabet().lookup("accept.reqSw").unwrap();
        assert!(csp::traces::has_trace(&lts, &[net, dlv, acc, dlv, acc]));
    }
}
