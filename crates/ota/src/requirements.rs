//! Table III: the secure-update requirements as CSP specification models.
//!
//! | ID  | Requirement |
//! |-----|-------------|
//! | R01 | At start of update process, the VMG shall send a software inventory request message to all ECUs. |
//! | R02 | On receipt of software inventory request, the ECU shall send a software list response message. |
//! | R03 | On receipt of apply update message from the VMG, the ECU shall check the package contents and apply the update. |
//! | R04 | On completion of update module installation, the ECU shall send software update result message to the VMG. |
//! | R05 | It is assumed the system uses shared keys. |
//!
//! R01–R04 are checked against the extracted Fig. 2 system; R05 is realised
//! by the MAC-secured model in [`crate::secured`].

use csp::{EventSet, Process};
use fdrlite::RefinementModel;

use crate::system::{BuildError, OtaSystem};

/// One Table III requirement, resolved into a runnable check.
#[derive(Debug, Clone)]
pub struct Requirement {
    /// Requirement identifier (`R01` … `R05`).
    pub id: &'static str,
    /// The requirement text from the paper.
    pub text: &'static str,
    /// The specification process.
    pub spec: Process,
    /// The (possibly abstracted) system the spec is checked against.
    pub scoped_system: Process,
    /// The semantic model the check runs in.
    pub model: RefinementModel,
}

/// Resolve R01–R04 against the study's system model.
///
/// (R05 lives in [`crate::secured`] because it needs the MAC-extended
/// message space.)
///
/// # Errors
///
/// [`BuildError::Missing`] if the model lacks an expected event.
pub fn all(study: &mut OtaSystem) -> Result<Vec<Requirement>, BuildError> {
    let comm = study.comm_events()?;
    let [req_sw, rpt_sw, req_app, rpt_upd] = comm[..] else {
        unreachable!("comm_events returns four events");
    };
    let universe: EventSet = comm.iter().copied().collect();
    let system = study.system().clone();
    let (_, defs) = study.parts_mut();

    let mut out = Vec::new();

    // R01: the first communication of the update process is the inventory
    // request.
    let spec01 = fdrlite::properties::precedes(
        defs,
        "R01",
        &universe,
        &EventSet::singleton(req_sw),
        &universe.difference(&EventSet::singleton(req_sw)),
    );
    out.push(Requirement {
        id: "R01",
        text: "At start of update process, the VMG shall send a software inventory request message to all ECUs.",
        spec: spec01,
        scoped_system: system.clone(),
        model: RefinementModel::Traces,
    });

    // R02: every inventory request is answered by exactly one software list
    // response before the next request; other update traffic may interleave.
    let noise02: EventSet = [req_app, rpt_upd].into_iter().collect();
    let spec02 =
        fdrlite::properties::request_response_with_noise(defs, "R02", req_sw, rpt_sw, &noise02);
    out.push(Requirement {
        id: "R02",
        text: "On receipt of software inventory request, the ECU shall send a software list response message.",
        spec: spec02,
        scoped_system: system.clone(),
        model: RefinementModel::Traces,
    });

    // R03: the update is applied (observed as the result message) only after
    // an apply-update request has been received.
    let spec03 = fdrlite::properties::precedes(
        defs,
        "R03",
        &universe,
        &EventSet::singleton(req_app),
        &EventSet::singleton(rpt_upd),
    );
    out.push(Requirement {
        id: "R03",
        text: "On receipt of apply update message from the VMG, the ECU shall check the package contents and apply the update.",
        spec: spec03,
        scoped_system: system.clone(),
        model: RefinementModel::Traces,
    });

    // R04: once applied, the result message follows — exactly one per
    // request.
    let noise04: EventSet = [req_sw, rpt_sw].into_iter().collect();
    let spec04 =
        fdrlite::properties::request_response_with_noise(defs, "R04", req_app, rpt_upd, &noise04);
    out.push(Requirement {
        id: "R04",
        text: "On completion of update module installation, the ECU shall send software update result message to the VMG.",
        spec: spec04,
        scoped_system: system,
        model: RefinementModel::Traces,
    });

    Ok(out)
}

/// The paper's literal `SP02` process (§V-B): `SP02 = rec.reqSw ->
/// send.rptSw -> SP02`, checked against the system with all other events
/// hidden — the simplest form before the noise-tolerant R02 above.
///
/// # Errors
///
/// [`BuildError::Missing`] if the model lacks an expected event.
pub fn sp02(study: &mut OtaSystem) -> Result<Requirement, BuildError> {
    let comm = study.comm_events()?;
    let [req_sw, rpt_sw, req_app, rpt_upd] = comm[..] else {
        unreachable!("comm_events returns four events");
    };
    let system = study.system().clone();
    let (_, defs) = study.parts_mut();
    let spec = fdrlite::properties::request_response(defs, "SP02", req_sw, rpt_sw);
    let hidden: EventSet = [req_app, rpt_upd].into_iter().collect();
    Ok(Requirement {
        id: "SP02",
        text: "Every software inventory request is followed by a software list response (other update traffic abstracted).",
        spec,
        scoped_system: Process::hide(system, hidden),
        model: RefinementModel::Traces,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdrlite::Checker;

    fn check(req: &Requirement, study: &OtaSystem) -> fdrlite::Verdict {
        let c = Checker::new();
        match req.model {
            RefinementModel::Traces => c
                .trace_refinement(&req.spec, &req.scoped_system, study.definitions())
                .unwrap(),
            RefinementModel::Failures => c
                .failures_refinement(&req.spec, &req.scoped_system, study.definitions())
                .unwrap(),
        }
    }

    #[test]
    fn all_requirements_hold_on_the_honest_system() {
        let mut study = OtaSystem::build().unwrap();
        let reqs = all(&mut study).unwrap();
        assert_eq!(reqs.len(), 4);
        for req in &reqs {
            let verdict = check(req, &study);
            assert!(
                verdict.is_pass(),
                "{} failed: {:?}",
                req.id,
                verdict
                    .counterexample()
                    .map(|c| c.display(study.alphabet()).to_string())
            );
        }
    }

    #[test]
    fn sp02_holds_on_the_honest_system() {
        let mut study = OtaSystem::build().unwrap();
        let req = sp02(&mut study).unwrap();
        assert!(check(&req, &study).is_pass());
    }

    #[test]
    fn r02_catches_the_double_reporting_ecu_at_component_level() {
        // In the composed system the VMG (not yet ready for a second
        // report) would mask the fault; the paper's aim is component-level
        // checking, so R02 is checked against the ECU model alone.
        let mut study =
            OtaSystem::build_with(crate::sources::VMG_CAPL, crate::sources::FAULTY_ECU_CAPL)
                .unwrap();
        let reqs = all(&mut study).unwrap();
        let r02 = reqs.iter().find(|r| r.id == "R02").unwrap();
        let verdict = Checker::new()
            .trace_refinement(&r02.spec, study.ecu(), study.definitions())
            .unwrap();
        let cex = verdict.counterexample().expect("R02 must fail on the ECU");
        let shown = cex.display(study.alphabet()).to_string();
        assert!(shown.contains("send.rptSw"), "{shown}");
    }
}
