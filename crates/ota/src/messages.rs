//! The X.1373 message set: Table II plus the server-scope messages.

use serde::{Deserialize, Serialize};

/// One row of the paper's Table II (extended with the X.1373 messages the
/// paper's §VIII-A defers to future work).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageSpec {
    /// Message class (`Diagnose` / `Update`).
    pub class: &'static str,
    /// Message identifier used in models and CAPL sources.
    pub id: &'static str,
    /// Sending component.
    pub from: &'static str,
    /// Receiving component.
    pub to: &'static str,
    /// Description from X.1373.
    pub description: &'static str,
}

/// Table II exactly as printed in the paper (VMG↔ECU scope, Fig. 2).
pub const TABLE_II: &[MessageSpec] = &[
    MessageSpec {
        class: "Diagnose",
        id: "reqSw",
        from: "VMG",
        to: "ECU",
        description: "Request diagnose software status",
    },
    MessageSpec {
        class: "Diagnose",
        id: "rptSw",
        from: "ECU",
        to: "VMG",
        description: "Result of software diagnosis",
    },
    MessageSpec {
        class: "Update",
        id: "reqApp",
        from: "VMG",
        to: "ECU",
        description: "Request apply update module",
    },
    MessageSpec {
        class: "Update",
        id: "rptUpd",
        from: "ECU",
        to: "VMG",
        description: "Result of applying update module",
    },
];

/// The server-scope messages X.1373 defines and §VIII-A defers: exchanged
/// between the update server and the VMG.
pub const SERVER_MESSAGES: &[MessageSpec] = &[
    MessageSpec {
        class: "Diagnose",
        id: "diagnose",
        from: "Server",
        to: "VMG",
        description: "Request vehicle diagnosis",
    },
    MessageSpec {
        class: "Update",
        id: "update_check",
        from: "VMG",
        to: "Server",
        description: "Check for available updates",
    },
    MessageSpec {
        class: "Update",
        id: "update",
        from: "Server",
        to: "VMG",
        description: "Deliver update package",
    },
    MessageSpec {
        class: "Update",
        id: "update_report",
        from: "VMG",
        to: "Server",
        description: "Report update application status",
    },
];

/// The CAN database backing the simulated network (Fig. 2 scope plus the
/// server hop). Ids give the VMG→ECU direction higher priority (lower id)
/// than responses, as a real network design would.
pub const NETWORK_DBC: &str = r#"VERSION "1.0"

BU_: VMG ECU Server

BO_ 256 reqSw: 8 VMG
 SG_ reqType : 0|4@1+ (1,0) [0|15] "" ECU
 SG_ seq : 4|8@1+ (1,0) [0|255] "" ECU

BO_ 257 reqApp: 8 VMG
 SG_ pkgId : 0|8@1+ (1,0) [0|255] "" ECU
 SG_ seq : 8|8@1+ (1,0) [0|255] "" ECU

BO_ 512 rptSw: 8 ECU
 SG_ status : 0|8@1+ (1,0) [0|255] "" VMG
 SG_ version : 8|16@1+ (1,0) [0|65535] "" VMG

BO_ 513 rptUpd: 8 ECU
 SG_ result : 0|8@1+ (1,0) [0|255] "" VMG

BO_ 768 diagnose: 8 Server
 SG_ scope : 0|8@1+ (1,0) [0|255] "" VMG

BO_ 769 update: 8 Server
 SG_ pkgId : 0|8@1+ (1,0) [0|255] "" VMG

BO_ 770 update_check: 8 VMG
 SG_ vin : 0|8@1+ (1,0) [0|255] "" Server

BO_ 771 update_report: 8 VMG
 SG_ result : 0|8@1+ (1,0) [0|255] "" Server

CM_ BO_ 256 "Request diagnose software status";
CM_ BO_ 512 "Result of software diagnosis";
CM_ BO_ 257 "Request apply update module";
CM_ BO_ 513 "Result of applying update module";
VAL_ 513 result 0 "OK" 1 "FAILED" ;
"#;

/// Parse [`NETWORK_DBC`].
///
/// # Panics
///
/// Never — the embedded database is covered by tests.
pub fn database() -> candb::Database {
    candb::parse(NETWORK_DBC).expect("embedded network database is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_matches_the_paper() {
        assert_eq!(TABLE_II.len(), 4);
        assert_eq!(TABLE_II[0].id, "reqSw");
        assert_eq!(TABLE_II[1].from, "ECU");
        assert_eq!(TABLE_II[3].description, "Result of applying update module");
    }

    #[test]
    fn database_parses_and_contains_all_messages() {
        let db = database();
        for spec in TABLE_II.iter().chain(SERVER_MESSAGES) {
            assert!(
                db.message_by_name(spec.id).is_some(),
                "missing message {}",
                spec.id
            );
        }
    }

    #[test]
    fn requests_win_arbitration_over_responses() {
        let db = database();
        let req = db.message_by_name("reqSw").unwrap().id;
        let rpt = db.message_by_name("rptSw").unwrap().id;
        assert!(req < rpt);
    }

    #[test]
    fn senders_match_table_ii() {
        let db = database();
        for spec in TABLE_II {
            assert_eq!(db.message_by_name(spec.id).unwrap().sender, spec.from);
        }
    }
}
