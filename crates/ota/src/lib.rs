//! `ota` — the paper's case study: securing over-the-air software updates
//! (§V), based on ITU-T recommendation X.1373.
//!
//! The crate bundles everything needed to reproduce the case study end to
//! end and to extend it the way §VIII-A proposes:
//!
//! * [`messages`] — the Table II message set (`reqSw`, `rptSw`, `reqApp`,
//!   `rptUpd`) plus the X.1373 server-scope messages the paper defers
//!   (`update_check`, `update`, `update_report`, `diagnose`), as metadata
//!   and as a CAN database;
//! * [`sources`] — the CAPL applications for the VMG and the target ECU
//!   (and the update server), written the way the paper's demonstration
//!   nodes are, runnable in `canoe-sim` and translatable by `translator`;
//! * [`system`] — the composed implementation model `SYSTEM = VMG ∥ ECU`
//!   (Fig. 2 scope) and the server-extended variant;
//! * [`requirements`] — Table III's R01–R05 as CSP specification processes;
//! * [`attacks`] — drop / replay / forge scenarios built by interposing a
//!   `secmod` Dolev-Yao intruder on the update path;
//! * [`secured`] — the shared-key (MAC) model R05 assumes, and the
//!   asymmetric-signature variant the paper lists as further work.
//!
//! # Example
//!
//! ```
//! let mut study = ota::system::OtaSystem::build()?;
//! let checker = fdrlite::Checker::new();
//! let requirements = ota::requirements::all(&mut study)?;
//! for req in &requirements {
//!     let verdict = checker.trace_refinement(&req.spec, &req.scoped_system, study.definitions())?;
//!     assert!(verdict.is_pass(), "{} must hold on the honest system", req.id);
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacks;
pub mod messages;
pub mod requirements;
pub mod secured;
pub mod sources;
pub mod system;
