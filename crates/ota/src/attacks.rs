//! Attack scenarios: the Fig. 2 system with a Dolev-Yao intruder interposed
//! on the update path (VMG → ECU direction).
//!
//! The honest system shares `rec.*` events directly. To give the intruder a
//! real man-in-the-middle position, the ECU's receive events are renamed to
//! a fresh `dlv` channel and a [`secmod::Intruder`] bridges `rec` → `dlv`.
//! Each scenario then asks a Table III requirement on the attacked system;
//! all of them fail, each with the counterexample naming the attack step.

use csp::{EventId, EventSet, Process, RenameMap};
use fdrlite::RefinementModel;
use secmod::{AttackTree, Intruder};

use crate::requirements::Requirement;
use crate::system::{BuildError, OtaSystem};

/// Which intruder capability a scenario exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackKind {
    /// Messages may be silently dropped (denial of service).
    Drop,
    /// Overheard messages may be delivered again (replay).
    Replay,
    /// Known messages may be injected without the VMG sending them.
    Forge,
}

/// An attacked system plus the requirement it violates.
#[derive(Debug, Clone)]
pub struct AttackScenario {
    /// Which capability the scenario needs.
    pub kind: AttackKind,
    /// Human-readable description.
    pub description: &'static str,
    /// The requirement checked (its `scoped_system` is the attacked one).
    pub requirement: Requirement,
}

/// The attacked system: VMG ∥ intruder ∥ ECU[rec→dlv].
///
/// `initial_knowledge` seeds the intruder (for forgery); `lossy` lets it
/// commit to dropping (for DoS analysis in the failures model).
///
/// # Errors
///
/// [`BuildError::Missing`] if expected events are absent from the model.
pub fn interpose_intruder(
    study: &mut OtaSystem,
    initial_knowledge: &[&str],
    lossy: bool,
) -> Result<Process, BuildError> {
    let req_sw = event(study, "rec.reqSw")?;
    let req_app = event(study, "rec.reqApp")?;
    let rpt_sw = event(study, "send.rptSw")?;
    let rpt_upd = event(study, "send.rptUpd")?;
    let vmg = study.vmg().clone();
    let ecu = study.ecu().clone();
    let (alphabet, defs) = study.parts_mut();

    let mut builder = Intruder::builder("EVE")
        .messages(["reqSw", "reqApp"])
        .tap("rec", "dlv")
        .lossy(lossy);
    for k in initial_knowledge {
        builder = builder.knows(k);
    }
    let intruder = builder.build(alphabet, defs);

    // The ECU now listens on the intruder-controlled dlv channel.
    let dlv_req_sw = alphabet.lookup("dlv.reqSw").expect("interned by builder");
    let dlv_req_app = alphabet.lookup("dlv.reqApp").expect("interned by builder");
    let mut rename = RenameMap::new();
    rename.insert(req_sw, dlv_req_sw);
    rename.insert(req_app, dlv_req_app);
    let ecu_tapped = Process::rename(ecu, rename);

    let heard: EventSet = [req_sw, req_app].into_iter().collect();
    let delivered_and_responses: EventSet = [dlv_req_sw, dlv_req_app, rpt_sw, rpt_upd]
        .into_iter()
        .collect();
    let vmg_and_eve = Process::parallel(heard, vmg, intruder.process().clone());
    Ok(Process::parallel(
        delivered_and_responses,
        vmg_and_eve,
        ecu_tapped,
    ))
}

fn event(study: &OtaSystem, name: &str) -> Result<EventId, BuildError> {
    study
        .event(name)
        .ok_or_else(|| BuildError::Missing(format!("event `{name}`")))
}

/// All attack scenarios against the Fig. 2 system.
///
/// # Errors
///
/// [`BuildError::Missing`] if expected events are absent from the model.
pub fn scenarios(study: &mut OtaSystem) -> Result<Vec<AttackScenario>, BuildError> {
    let req_sw = event(study, "rec.reqSw")?;
    let rpt_sw = event(study, "send.rptSw")?;
    let req_app = event(study, "rec.reqApp")?;
    let rpt_upd = event(study, "send.rptUpd")?;

    let mut out = Vec::new();

    // Forge: the intruder knows reqApp a priori (e.g. captured on another
    // vehicle — X.1373 messages are fleet-wide) and injects it. R03's
    // precedence (no update application without a request) breaks.
    {
        let attacked = interpose_intruder(study, &["reqApp"], false)?;
        let universe: EventSet = {
            let dlv_req_sw = event(study, "dlv.reqSw")?;
            let dlv_req_app = event(study, "dlv.reqApp")?;
            [req_sw, rpt_sw, req_app, rpt_upd, dlv_req_sw, dlv_req_app]
                .into_iter()
                .collect()
        };
        let (_, defs) = study.parts_mut();
        let spec = fdrlite::properties::precedes(
            defs,
            "R03_ATTACKED",
            &universe,
            &EventSet::singleton(req_app),
            &EventSet::singleton(rpt_upd),
        );
        out.push(AttackScenario {
            kind: AttackKind::Forge,
            description: "forged apply-update: the ECU applies an update the VMG never requested",
            requirement: Requirement {
                id: "R03",
                text: "Update applied only on receipt of an apply update message from the VMG.",
                spec,
                scoped_system: attacked,
                model: RefinementModel::Traces,
            },
        });
    }

    // Replay: one genuine reqApp is delivered twice; the ECU applies the
    // update twice, violating R04's one-report-per-request shape.
    {
        let attacked = interpose_intruder(study, &[], false)?;
        let dlv_req_sw = event(study, "dlv.reqSw")?;
        let dlv_req_app = event(study, "dlv.reqApp")?;
        let noise: EventSet = [req_sw, rpt_sw, dlv_req_sw, dlv_req_app]
            .into_iter()
            .collect();
        let (_, defs) = study.parts_mut();
        let spec = fdrlite::properties::request_response_with_noise(
            defs,
            "R04_ATTACKED",
            req_app,
            rpt_upd,
            &noise,
        );
        out.push(AttackScenario {
            kind: AttackKind::Replay,
            description: "replayed apply-update: one request, two update applications",
            requirement: Requirement {
                id: "R04",
                text: "Exactly one update result per apply request.",
                spec,
                scoped_system: attacked,
                model: RefinementModel::Traces,
            },
        });
    }

    // Drop: the lossy intruder discards the inventory request; the exchange
    // never completes. Observable as a refusal (the response can be refused
    // forever) in the stable-failures model, with dlv hidden as internal.
    {
        let attacked = interpose_intruder(study, &[], true)?;
        let dlv_req_sw = event(study, "dlv.reqSw")?;
        let dlv_req_app = event(study, "dlv.reqApp")?;
        let hidden: EventSet = [dlv_req_sw, dlv_req_app].into_iter().collect();
        let visible_noise: EventSet = [req_app, rpt_upd].into_iter().collect();
        let (_, defs) = study.parts_mut();
        let spec = fdrlite::properties::request_response_with_noise(
            defs,
            "R02_ATTACKED",
            req_sw,
            rpt_sw,
            &visible_noise,
        );
        out.push(AttackScenario {
            kind: AttackKind::Drop,
            description: "dropped inventory request: the response may be refused forever (DoS)",
            requirement: Requirement {
                id: "R02",
                text: "Every inventory request must be answerable by a response.",
                spec,
                scoped_system: Process::hide(attacked, hidden),
                model: RefinementModel::Failures,
            },
        });
    }

    Ok(out)
}

/// The §IV-E artefact for this case study: the attack tree for forcing an
/// unauthorised update onto the ECU. Leaves name the intruder steps as
/// model events, so the tree composes directly with the attacked system.
pub fn forced_update_tree() -> AttackTree {
    AttackTree::Seq(vec![
        // Gain the position and material (in either order):
        AttackTree::Par(vec![
            AttackTree::leaf("rec.reqSw"),  // observe a session starting
            AttackTree::leaf("rec.reqApp"), // capture an apply-update
        ]),
        // the genuine update flows once,
        AttackTree::leaf("dlv.reqApp"),
        AttackTree::leaf("send.rptUpd"),
        // and the captured request is replayed for a second application.
        AttackTree::leaf("dlv.reqApp"),
        AttackTree::leaf("send.rptUpd"),
    ])
}

/// Ask whether `tree` can run to completion inside `system`: composes the
/// tree's monitor over its action events and checks reachability of the
/// success marker. Returns the witness trace if the attack is possible.
///
/// # Errors
///
/// [`BuildError::Missing`] if a leaf names an event absent from the model,
/// or checker state-space errors (as `Missing` with the message).
pub fn attack_feasible(
    study: &mut OtaSystem,
    system: &Process,
    tree: &AttackTree,
) -> Result<Option<String>, BuildError> {
    let system = system.clone();
    let (alphabet, defs) = study.parts_mut();
    let monitor = tree.to_monitor(alphabet, defs, "attack_success");
    let success = alphabet
        .lookup("attack_success")
        .expect("interned by to_monitor");
    let actions: EventSet = tree
        .actions()
        .iter()
        .map(|a| {
            alphabet
                .lookup(a)
                .ok_or_else(|| BuildError::Missing(format!("attack action `{a}`")))
        })
        .collect::<Result<_, _>>()?;
    let composed = Process::parallel(actions, system, monitor);
    let universe = alphabet.universe();
    let spec =
        fdrlite::properties::never(defs, "NO_ATTACK", &universe, &EventSet::singleton(success));
    let verdict = fdrlite::Checker::new()
        .trace_refinement(&spec, &composed, study.definitions())
        .map_err(|e| BuildError::Missing(e.to_string()))?;
    Ok(verdict
        .counterexample()
        .map(|c| c.display(study.alphabet()).to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdrlite::{Checker, Verdict};

    fn run(req: &Requirement, study: &OtaSystem) -> Verdict {
        let c = Checker::new();
        match req.model {
            RefinementModel::Traces => c
                .trace_refinement(&req.spec, &req.scoped_system, study.definitions())
                .unwrap(),
            RefinementModel::Failures => c
                .failures_refinement(&req.spec, &req.scoped_system, study.definitions())
                .unwrap(),
        }
    }

    #[test]
    fn every_attack_scenario_finds_its_violation() {
        let mut study = OtaSystem::build().unwrap();
        let scenarios = scenarios(&mut study).unwrap();
        assert_eq!(scenarios.len(), 3);
        for sc in &scenarios {
            let verdict = run(&sc.requirement, &study);
            assert!(
                !verdict.is_pass(),
                "{:?} should violate {}",
                sc.kind,
                sc.requirement.id
            );
        }
    }

    #[test]
    fn forge_counterexample_shows_update_without_request() {
        let mut study = OtaSystem::build().unwrap();
        let scenarios = scenarios(&mut study).unwrap();
        let forge = scenarios
            .iter()
            .find(|s| s.kind == AttackKind::Forge)
            .unwrap();
        let verdict = run(&forge.requirement, &study);
        let cex = verdict.counterexample().unwrap();
        let shown = cex.display(study.alphabet()).to_string();
        assert!(shown.contains("send.rptUpd"), "{shown}");
        // The genuine request never appears in the witness trace.
        assert!(!shown.contains("rec.reqApp,"), "{shown}");
    }

    #[test]
    fn without_intruder_no_scenario_spec_is_violated() {
        // Sanity: the same specs hold on the honest system (scoped the same
        // way, minus the intruder machinery).
        let mut study = OtaSystem::build().unwrap();
        let reqs = crate::requirements::all(&mut study).unwrap();
        let c = Checker::new();
        for r in reqs {
            assert!(c
                .trace_refinement(&r.spec, &r.scoped_system, study.definitions())
                .unwrap()
                .is_pass());
        }
    }

    #[test]
    fn forced_update_attack_tree_completes_against_the_intruded_system() {
        let mut study = OtaSystem::build().unwrap();
        let attacked = interpose_intruder(&mut study, &[], false).unwrap();
        let tree = forced_update_tree();
        let witness = attack_feasible(&mut study, &attacked, &tree).unwrap();
        let witness = witness.expect("the replay-capable intruder realises the tree");
        assert!(witness.contains("dlv.reqApp"), "{witness}");
        assert!(witness.contains("attack_success"), "{witness}");
    }

    #[test]
    fn forced_update_attack_tree_fails_against_the_honest_system() {
        // Without the intruder there is no dlv channel at all: the tree's
        // injection step cannot occur.
        let mut study = OtaSystem::build().unwrap();
        // Intern dlv events so the tree's actions resolve, but compose with
        // the honest system, which never performs them.
        let _ = interpose_intruder(&mut study, &[], false).unwrap();
        let honest = study.system().clone();
        let tree = forced_update_tree();
        let witness = attack_feasible(&mut study, &honest, &tree).unwrap();
        assert!(witness.is_none(), "{witness:?}");
    }

    #[test]
    fn interposed_system_still_allows_the_honest_run() {
        let mut study = OtaSystem::build().unwrap();
        let attacked = interpose_intruder(&mut study, &[], false).unwrap();
        let lts = csp::Lts::build(attacked, study.definitions(), 500_000).unwrap();
        let seq = [
            "rec.reqSw",
            "dlv.reqSw",
            "send.rptSw",
            "rec.reqApp",
            "dlv.reqApp",
            "send.rptUpd",
        ]
        .map(|n| study.event(n).unwrap());
        assert!(csp::traces::has_trace(&lts, &seq));
    }
}
