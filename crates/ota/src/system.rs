//! The composed implementation models: Fig. 2's `SYSTEM = VMG ∥ ECU`, the
//! server-extended system, and accessors used by requirements and attacks.

use std::fmt;

use csp::{Alphabet, Definitions, EventId, EventSet, Process};
use translator::{NodeSpec, SystemBuilder};

use crate::messages;
use crate::sources;

/// Errors from building the case-study models.
#[derive(Debug)]
pub enum BuildError {
    /// CAPL sources failed to parse (a bug in the embedded sources).
    Capl(capl::CaplError),
    /// Translation failed.
    Translate(translator::TranslateError),
    /// The generated CSPm failed to load.
    Cspm(cspm::CspmError),
    /// A process or event expected in the model was missing.
    Missing(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Capl(e) => write!(f, "CAPL: {e}"),
            BuildError::Translate(e) => write!(f, "translate: {e}"),
            BuildError::Cspm(e) => write!(f, "CSPm: {e}"),
            BuildError::Missing(m) => write!(f, "missing from model: {m}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// The Fig. 2 demonstration system, extracted from the CAPL sources.
#[derive(Debug, Clone)]
pub struct OtaSystem {
    alphabet: Alphabet,
    defs: Definitions,
    vmg: Process,
    ecu: Process,
    system: Process,
    script: String,
}

impl OtaSystem {
    /// Build the honest VMG/ECU system from the bundled sources.
    ///
    /// # Errors
    ///
    /// Any stage of the extraction pipeline failing (which would be a bug in
    /// the bundled artefacts; the error type exists for custom sources).
    pub fn build() -> Result<OtaSystem, BuildError> {
        OtaSystem::build_with(sources::VMG_CAPL, sources::ECU_CAPL)
    }

    /// Build with custom VMG/ECU sources (e.g. a seeded-fault ECU).
    ///
    /// # Errors
    ///
    /// See [`OtaSystem::build`].
    pub fn build_with(vmg_src: &str, ecu_src: &str) -> Result<OtaSystem, BuildError> {
        let vmg_program = capl::parse(vmg_src).map_err(BuildError::Capl)?;
        let ecu_program = capl::parse(ecu_src).map_err(BuildError::Capl)?;
        let out = SystemBuilder::new()
            .database(messages::database())
            .node(NodeSpec::gateway("VMG", vmg_program))
            .node(NodeSpec::ecu("ECU", ecu_program))
            .build()
            .map_err(BuildError::Translate)?;
        let loaded = cspm::Script::parse(&out.script)
            .and_then(|s| s.load())
            .map_err(BuildError::Cspm)?;
        let get = |name: &str| {
            loaded
                .process(name)
                .cloned()
                .ok_or_else(|| BuildError::Missing(format!("process `{name}`")))
        };
        Ok(OtaSystem {
            alphabet: loaded.alphabet().clone(),
            defs: loaded.definitions().clone(),
            vmg: get(&out.entries[0])?,
            ecu: get(&out.entries[1])?,
            system: get("SYSTEM")?,
            script: out.script,
        })
    }

    /// The interned alphabet of the model.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// The recursive process definitions (needed by the checker).
    pub fn definitions(&self) -> &Definitions {
        &self.defs
    }

    /// Mutable access for modules that extend the model (requirements,
    /// attacks) with new events and spec processes.
    pub fn parts_mut(&mut self) -> (&mut Alphabet, &mut Definitions) {
        (&mut self.alphabet, &mut self.defs)
    }

    /// The VMG implementation model.
    pub fn vmg(&self) -> &Process {
        &self.vmg
    }

    /// The ECU implementation model.
    pub fn ecu(&self) -> &Process {
        &self.ecu
    }

    /// The composed `SYSTEM` (Fig. 2 scope).
    pub fn system(&self) -> &Process {
        &self.system
    }

    /// The generated CSPm script.
    pub fn script(&self) -> &str {
        &self.script
    }

    /// Look up an event by name (e.g. `"rec.reqSw"`).
    pub fn event(&self, name: &str) -> Option<EventId> {
        self.alphabet.lookup(name)
    }

    /// The communication events of the Fig. 2 scope, in a fixed order:
    /// `rec.reqSw`, `send.rptSw`, `rec.reqApp`, `send.rptUpd`.
    ///
    /// # Errors
    ///
    /// [`BuildError::Missing`] if the model does not mention one of them.
    pub fn comm_events(&self) -> Result<Vec<EventId>, BuildError> {
        ["rec.reqSw", "send.rptSw", "rec.reqApp", "send.rptUpd"]
            .iter()
            .map(|n| {
                self.event(n)
                    .ok_or_else(|| BuildError::Missing(format!("event `{n}`")))
            })
            .collect()
    }

    /// The communication alphabet as a set.
    ///
    /// # Errors
    ///
    /// See [`OtaSystem::comm_events`].
    pub fn comm_set(&self) -> Result<EventSet, BuildError> {
        Ok(self.comm_events()?.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdrlite::Checker;

    #[test]
    fn system_builds_and_has_expected_events() {
        let study = OtaSystem::build().unwrap();
        assert_eq!(study.comm_events().unwrap().len(), 4);
        assert!(study.script().contains("SYSTEM"));
    }

    #[test]
    fn system_exhibits_the_update_sequence() {
        let study = OtaSystem::build().unwrap();
        let lts = csp::Lts::build(study.system().clone(), study.definitions(), 100_000).unwrap();
        let seq = study.comm_events().unwrap();
        assert!(csp::traces::has_trace(&lts, &seq));
    }

    #[test]
    fn system_is_deadlock_free_and_divergence_free() {
        let study = OtaSystem::build().unwrap();
        let c = Checker::new();
        // The honest update cycle runs to completion and stops: the final
        // quiescent state is expected, so check divergence-freedom and that
        // the full exchange is reachable rather than global deadlock-freedom.
        assert!(c
            .divergence_free(study.system(), study.definitions())
            .unwrap()
            .is_pass());
    }

    #[test]
    fn faulty_ecu_differs_from_honest_one() {
        // Compare name-level trace sets (each model has its own alphabet and
        // definition table, so event ids must not be mixed across them).
        fn named_traces(study: &OtaSystem, p: &Process) -> std::collections::BTreeSet<Vec<String>> {
            let lts = csp::Lts::build(p.clone(), study.definitions(), 100_000).unwrap();
            csp::traces::traces_upto(&lts, 4)
                .into_iter()
                .map(|t| {
                    t.events()
                        .iter()
                        .filter_map(|e| e.event())
                        .map(|id| study.alphabet().name(id).to_owned())
                        .collect()
                })
                .collect()
        }
        let honest = OtaSystem::build().unwrap();
        let faulty = OtaSystem::build_with(sources::VMG_CAPL, sources::FAULTY_ECU_CAPL).unwrap();
        let honest_traces = named_traces(&honest, honest.ecu());
        let faulty_traces = named_traces(&faulty, faulty.ecu());
        // The double report is a faulty-only behaviour.
        let double_report = vec![
            "rec.reqSw".to_owned(),
            "send.rptSw".to_owned(),
            "send.rptSw".to_owned(),
        ];
        assert!(faulty_traces.contains(&double_report));
        assert!(!honest_traces.contains(&double_report));
    }
}
