//! The CAPL applications of the demonstration network (§VI): the Vehicle
//! Mobile Gateway, the target ECU, and the §VIII-A update server.
//!
//! These are the programs that run in `canoe-sim` *and* get translated by
//! `translator` — one source of truth for both, exactly the property the
//! paper's workflow (Fig. 1) needs.

/// The target ECU: answers diagnosis requests and applies updates
/// (requirements R02–R04 of Table III).
pub const ECU_CAPL: &str = r#"
/* Target ECU update module, per ITU-T X.1373.
 * R02: every software inventory request gets a software list response.
 * R03/R04: an apply-update request is applied and acknowledged. */
variables
{
  message rptSw msgRptSw;
  message rptUpd msgRptUpd;
  int updatesApplied = 0;
}

on message reqSw
{
  output(msgRptSw);
}

on message reqApp
{
  updatesApplied = updatesApplied + 1;
  output(msgRptUpd);
}
"#;

/// The Vehicle Mobile Gateway: drives the update sequence
/// (R01: inventory request first, then apply, then collect the result).
pub const VMG_CAPL: &str = r#"
/* Vehicle Mobile Gateway, per ITU-T X.1373. */
variables
{
  message reqSw msgReqSw;
  message reqApp msgReqApp;
  int updateDone = 0;
}

on start
{
  output(msgReqSw);
}

on message rptSw
{
  output(msgReqApp);
}

on message rptUpd
{
  updateDone = 1;
  write("update complete");
}
"#;

/// The update server (§VIII-A extension): triggers the VMG's update cycle
/// and collects the final report.
pub const SERVER_CAPL: &str = r#"
/* OEM update server, per ITU-T X.1373 (server scope). */
variables
{
  message update msgUpdate;
  int reportsSeen = 0;
}

on message update_check
{
  output(msgUpdate);
}

on message update_report
{
  reportsSeen = reportsSeen + 1;
}
"#;

/// A VMG variant that also talks to the update server: checks for updates
/// at start, runs the ECU-side update cycle when one arrives, and reports
/// back (the full X.1373 loop).
pub const VMG_FULL_CAPL: &str = r#"
variables
{
  message update_check msgCheck;
  message update_report msgReport;
  message reqSw msgReqSw;
  message reqApp msgReqApp;
}

on start
{
  output(msgCheck);
}

on message update
{
  output(msgReqSw);
}

on message rptSw
{
  output(msgReqApp);
}

on message rptUpd
{
  output(msgReport);
}
"#;

/// A deliberately faulty ECU used in negative tests: it acknowledges the
/// update twice (violating R02's "exactly one response" integrity reading).
pub const FAULTY_ECU_CAPL: &str = r#"
variables
{
  message rptSw msgRptSw;
  message rptUpd msgRptUpd;
}

on message reqSw
{
  output(msgRptSw);
  output(msgRptSw);
}

on message reqApp
{
  output(msgRptUpd);
}
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sources_parse() {
        for (name, src) in [
            ("ECU", ECU_CAPL),
            ("VMG", VMG_CAPL),
            ("SERVER", SERVER_CAPL),
            ("VMG_FULL", VMG_FULL_CAPL),
            ("FAULTY_ECU", FAULTY_ECU_CAPL),
        ] {
            capl::parse(src).unwrap_or_else(|e| panic!("{name} failed to parse: {e}"));
        }
    }

    #[test]
    fn sources_are_clean_under_analysis() {
        for src in [ECU_CAPL, VMG_CAPL, SERVER_CAPL, VMG_FULL_CAPL] {
            let program = capl::parse(src).unwrap();
            let report = capl::analyze(&program);
            assert_eq!(report.errors().count(), 0, "{:?}", report.diagnostics());
        }
    }

    #[test]
    fn sources_run_in_the_simulator() {
        let mut sim = canoe_sim::Simulation::new(Some(crate::messages::database()));
        sim.add_node("VMG", capl::parse(VMG_CAPL).unwrap()).unwrap();
        sim.add_node("ECU", capl::parse(ECU_CAPL).unwrap()).unwrap();
        sim.run_for(50_000).unwrap();
        let transmits: Vec<&str> = sim
            .trace()
            .iter()
            .filter_map(|e| e.event.transmit_name())
            .collect();
        assert_eq!(transmits, vec!["reqSw", "rptSw", "reqApp", "rptUpd"]);
        assert_eq!(
            sim.node_global("VMG", "updateDone").unwrap(),
            Some(canoe_sim::CaplValue::Int(1))
        );
        assert_eq!(
            sim.node_global("ECU", "updatesApplied").unwrap(),
            Some(canoe_sim::CaplValue::Int(1))
        );
    }

    #[test]
    fn full_loop_runs_with_server() {
        let mut sim = canoe_sim::Simulation::new(Some(crate::messages::database()));
        sim.add_node("VMG", capl::parse(VMG_FULL_CAPL).unwrap())
            .unwrap();
        sim.add_node("ECU", capl::parse(ECU_CAPL).unwrap()).unwrap();
        sim.add_node("Server", capl::parse(SERVER_CAPL).unwrap())
            .unwrap();
        sim.run_for(100_000).unwrap();
        assert_eq!(
            sim.node_global("Server", "reportsSeen").unwrap(),
            Some(canoe_sim::CaplValue::Int(1))
        );
    }
}
