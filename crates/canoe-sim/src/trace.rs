//! The observable simulation trace.

use serde::{Deserialize, Serialize};

/// One observable event in a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A handler passed a frame to its CAN controller (`output()` ran).
    /// This precedes [`TraceEvent::Transmit`], which is the later bus grant.
    Queued {
        /// Sending node.
        node: String,
        /// Message name (from the database) or `id_0x…` if unknown.
        message: String,
        /// CAN identifier.
        id: u32,
        /// Payload.
        payload: [u8; 8],
    },
    /// A node's frame won arbitration and went on the bus.
    Transmit {
        /// Sending node.
        node: String,
        /// Message name (from the database) or `id_0x…` if unknown.
        message: String,
        /// CAN identifier.
        id: u32,
        /// Payload.
        payload: [u8; 8],
    },
    /// A node's `on message` handler accepted a frame.
    Receive {
        /// Receiving node.
        node: String,
        /// Message name (from the database) or `id_0x…` if unknown.
        message: String,
        /// CAN identifier.
        id: u32,
        /// Payload.
        payload: [u8; 8],
    },
    /// `write(…)` output from a CAPL program.
    Log {
        /// The node that logged.
        node: String,
        /// The formatted text.
        text: String,
    },
    /// A timer fired and its handler ran.
    TimerFired {
        /// The node owning the timer.
        node: String,
        /// The timer variable name.
        timer: String,
    },
    /// A frame was dropped or forged by an [`crate::Interceptor`].
    Intercepted {
        /// Description of the interception.
        action: String,
        /// The affected CAN identifier.
        id: u32,
    },
    /// A frame entered the bus queue from outside the modelled network
    /// ([`crate::Simulation::inject_frame`]), as opposed to a node's
    /// `output()`. The later bus grant still appears as a
    /// [`TraceEvent::Transmit`] from `<external>`.
    Injected {
        /// Message name (from the database) or `id_0x…` if unknown.
        message: String,
        /// CAN identifier.
        id: u32,
        /// Payload.
        payload: [u8; 8],
    },
    /// A named fault acted on the bus — the tagged record a fault-injection
    /// interceptor emits through [`crate::Interceptor::drain_fault_log`],
    /// and the marker for scheduled node outages.
    Fault {
        /// The fault's name (from its plan entry).
        fault: String,
        /// What the fault did (dropped, corrupted, delayed …).
        action: String,
        /// The affected CAN identifier (0 when not frame-related).
        id: u32,
    },
}

impl TraceEvent {
    /// The message name if this is a transmit event.
    pub fn transmit_name(&self) -> Option<&str> {
        match self {
            TraceEvent::Transmit { message, .. } => Some(message),
            _ => None,
        }
    }

    /// The message name if this is a queued (controller handoff) event.
    pub fn queued_name(&self) -> Option<&str> {
        match self {
            TraceEvent::Queued { message, .. } => Some(message),
            _ => None,
        }
    }

    /// The message name if this is a receive event.
    pub fn receive_name(&self) -> Option<&str> {
        match self {
            TraceEvent::Receive { message, .. } => Some(message),
            _ => None,
        }
    }

    /// The fault name if this is a tagged fault record.
    pub fn fault_name(&self) -> Option<&str> {
        match self {
            TraceEvent::Fault { fault, .. } => Some(fault),
            _ => None,
        }
    }
}

/// A timestamped trace entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Simulation time in microseconds.
    pub time_us: u64,
    /// What happened.
    pub event: TraceEvent,
}
