//! The CAPL interpreter: executes one node's event procedures.
//!
//! The interpreter is effect-based: running a handler produces a list of
//! [`Effect`]s (frames to transmit, timers to arm, log lines) which the
//! scheduler in [`crate::Simulation`] then applies. This keeps the language
//! semantics independent of bus timing.

use std::collections::HashMap;
use std::fmt;

use candb::Database;
use capl::ast::{
    BinOp, Block, EventHandler, EventKind, Expr, MsgRef, Program, Stmt, Type, UnOp, VarDecl,
};
use rand::rngs::SmallRng;
use rand::Rng;

/// A CAPL runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum CaplValue {
    /// Integral value (covers int/long/byte/word/dword/char).
    Int(i64),
    /// Floating value.
    Float(f64),
    /// String value (for `write`).
    Str(String),
    /// A message object variable.
    Msg(MsgObject),
    /// A fixed-size integral array.
    Array(Vec<i64>),
}

impl CaplValue {
    fn truthy(&self) -> bool {
        match self {
            CaplValue::Int(n) => *n != 0,
            CaplValue::Float(f) => *f != 0.0,
            CaplValue::Str(s) => !s.is_empty(),
            CaplValue::Msg(_) | CaplValue::Array(_) => true,
        }
    }

    fn as_int(&self) -> Result<i64, RuntimeError> {
        match self {
            CaplValue::Int(n) => Ok(*n),
            CaplValue::Float(f) => Ok(*f as i64),
            other => Err(RuntimeError::new(format!(
                "expected an integer, found {other:?}"
            ))),
        }
    }
}

/// A message-object value: id, optional database name, payload.
#[derive(Debug, Clone, PartialEq)]
pub struct MsgObject {
    /// CAN identifier.
    pub id: u32,
    /// Symbolic name, when resolved through the database.
    pub name: Option<String>,
    /// Payload length.
    pub dlc: usize,
    /// Payload bytes.
    pub payload: [u8; 8],
}

/// An error raised while executing CAPL code.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeError {
    /// Description of the failure.
    pub message: String,
}

impl RuntimeError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        RuntimeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CAPL runtime error: {}", self.message)
    }
}

impl std::error::Error for RuntimeError {}

/// Side effects produced by handler execution, applied by the scheduler.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Effect {
    /// Transmit a frame built from this message object.
    Output(MsgObject),
    /// Arm a timer to fire after `delay_us`.
    SetTimer {
        /// Timer variable name.
        name: String,
        /// Delay in microseconds.
        delay_us: u64,
    },
    /// Disarm a timer.
    CancelTimer(String),
    /// A `write(…)` log line.
    Log(String),
}

/// Per-node interpreter state.
#[derive(Debug)]
pub(crate) struct NodeState {
    pub name: String,
    pub program: Program,
    globals: HashMap<String, CaplValue>,
    timer_kinds: HashMap<String, Type>,
}

/// Bounded step budget per handler activation, to catch runaway loops.
const MAX_STEPS: usize = 200_000;

impl NodeState {
    /// Initialise a node: resolve `message` variables against the database
    /// and zero-initialise scalars and arrays.
    pub(crate) fn new(
        name: &str,
        program: Program,
        db: Option<&Database>,
    ) -> Result<NodeState, RuntimeError> {
        let mut globals = HashMap::new();
        let mut timer_kinds = HashMap::new();
        for v in &program.variables {
            match &v.ty {
                Type::MsTimer | Type::Timer => {
                    timer_kinds.insert(v.name.clone(), v.ty.clone());
                }
                _ => {
                    let value = init_value(v, db)?;
                    globals.insert(v.name.clone(), value);
                }
            }
        }
        Ok(NodeState {
            name: name.to_owned(),
            program,
            globals,
            timer_kinds,
        })
    }

    /// Read a global (for tests and assertions).
    pub(crate) fn global(&self, name: &str) -> Option<&CaplValue> {
        self.globals.get(name)
    }

    /// Run the handler for `event`, if any, returning its effects.
    /// `sysvars` is the simulation-wide environment/system variable store
    /// shared by `getValue`/`putValue`.
    pub(crate) fn fire(
        &mut self,
        event: &EventKind,
        this: Option<MsgObject>,
        db: Option<&Database>,
        rng: &mut SmallRng,
        now_us: u64,
        sysvars: &mut HashMap<String, i64>,
    ) -> Result<Vec<Effect>, RuntimeError> {
        let Some(handler) = find_handler(&self.program, event) else {
            return Ok(Vec::new());
        };
        let body = handler.body.clone();
        let mut ctx = Exec {
            node: self,
            db,
            rng,
            now_us,
            this,
            effects: Vec::new(),
            locals: Vec::new(),
            sysvars,
            steps: 0,
        };
        ctx.block(&body)?;
        Ok(ctx.effects)
    }
}

/// CAPL `on message` matching: an exact-name or exact-id handler wins over
/// `on message *`.
fn find_handler<'a>(program: &'a Program, event: &EventKind) -> Option<&'a EventHandler> {
    if let Some(h) = program.handler(event) {
        return Some(h);
    }
    if let EventKind::Message(_) = event {
        return program.handler(&EventKind::Message(MsgRef::Any));
    }
    None
}

fn init_value(v: &VarDecl, db: Option<&Database>) -> Result<CaplValue, RuntimeError> {
    if let Some(n) = v.array {
        return Ok(CaplValue::Array(vec![0; n]));
    }
    Ok(match &v.ty {
        Type::Message(r) => CaplValue::Msg(resolve_msg(r, db)?),
        Type::Float => CaplValue::Float(0.0),
        _ => match &v.init {
            Some(Expr::Int(n)) => CaplValue::Int(*n),
            Some(Expr::Float(f)) => CaplValue::Float(*f),
            Some(Expr::Char(c)) => CaplValue::Int(*c as i64),
            _ => CaplValue::Int(0),
        },
    })
}

fn resolve_msg(r: &MsgRef, db: Option<&Database>) -> Result<MsgObject, RuntimeError> {
    match r {
        MsgRef::Name(name) => {
            let Some(db) = db else {
                return Err(RuntimeError::new(format!(
                    "message `{name}` needs a network database"
                )));
            };
            let Some(m) = db.message_by_name(name) else {
                return Err(RuntimeError::new(format!(
                    "message `{name}` is not in the database"
                )));
            };
            Ok(MsgObject {
                id: m.id,
                name: Some(m.name.clone()),
                dlc: m.dlc,
                payload: [0; 8],
            })
        }
        MsgRef::Id(id) => {
            let name = db
                .and_then(|d| d.message_by_id(*id))
                .map(|m| m.name.clone());
            let dlc = db.and_then(|d| d.message_by_id(*id)).map_or(8, |m| m.dlc);
            Ok(MsgObject {
                id: *id,
                name,
                dlc,
                payload: [0; 8],
            })
        }
        MsgRef::Any => Err(RuntimeError::new(
            "`message *` is only valid in an `on message` handler",
        )),
    }
}

enum Flow {
    Normal,
    Break,
    Continue,
    Return(Option<CaplValue>),
}

struct Exec<'a> {
    node: &'a mut NodeState,
    db: Option<&'a Database>,
    rng: &'a mut SmallRng,
    now_us: u64,
    this: Option<MsgObject>,
    effects: Vec<Effect>,
    locals: Vec<(String, CaplValue)>,
    sysvars: &'a mut HashMap<String, i64>,
    steps: usize,
}

impl Exec<'_> {
    fn tick(&mut self) -> Result<(), RuntimeError> {
        self.steps += 1;
        if self.steps > MAX_STEPS {
            return Err(RuntimeError::new(
                "handler exceeded its execution budget (possible infinite loop)",
            ));
        }
        Ok(())
    }

    fn block(&mut self, b: &Block) -> Result<Flow, RuntimeError> {
        let depth = self.locals.len();
        for s in &b.stmts {
            match self.stmt(s)? {
                Flow::Normal => {}
                other => {
                    self.locals.truncate(depth);
                    return Ok(other);
                }
            }
        }
        self.locals.truncate(depth);
        Ok(Flow::Normal)
    }

    fn stmt(&mut self, s: &Stmt) -> Result<Flow, RuntimeError> {
        self.tick()?;
        match s {
            Stmt::VarDecl(v) => {
                let value = if let Some(init) = &v.init {
                    if v.array.is_some() {
                        init_value(v, self.db)?
                    } else {
                        self.expr(init)?
                    }
                } else {
                    init_value(v, self.db)?
                };
                self.locals.push((v.name.clone(), value));
                Ok(Flow::Normal)
            }
            Stmt::Expr(e) => {
                self.expr(e)?;
                Ok(Flow::Normal)
            }
            Stmt::If { cond, then, els } => {
                if self.expr(cond)?.truthy() {
                    self.block(then)
                } else if let Some(els) = els {
                    self.block(els)
                } else {
                    Ok(Flow::Normal)
                }
            }
            Stmt::While { cond, body } => {
                while self.expr(cond)?.truthy() {
                    self.tick()?;
                    match self.block(body)? {
                        Flow::Break => break,
                        Flow::Continue | Flow::Normal => {}
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                let depth = self.locals.len();
                if let Some(init) = init {
                    self.stmt(init)?;
                }
                loop {
                    if let Some(cond) = cond {
                        if !self.expr(cond)?.truthy() {
                            break;
                        }
                    }
                    self.tick()?;
                    match self.block(body)? {
                        Flow::Break => break,
                        Flow::Continue | Flow::Normal => {}
                        ret @ Flow::Return(_) => {
                            self.locals.truncate(depth);
                            return Ok(ret);
                        }
                    }
                    if let Some(step) = step {
                        self.expr(step)?;
                    }
                }
                self.locals.truncate(depth);
                Ok(Flow::Normal)
            }
            Stmt::Switch {
                scrutinee,
                cases,
                default,
            } => {
                let v = self.expr(scrutinee)?.as_int()?;
                for (k, body) in cases {
                    if self.expr(k)?.as_int()? == v {
                        return match self.block(body)? {
                            Flow::Break => Ok(Flow::Normal),
                            other => Ok(other),
                        };
                    }
                }
                if let Some(d) = default {
                    return match self.block(d)? {
                        Flow::Break => Ok(Flow::Normal),
                        other => Ok(other),
                    };
                }
                Ok(Flow::Normal)
            }
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => Some(self.expr(e)?),
                    None => None,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
            Stmt::Block(b) => self.block(b),
        }
    }

    fn lookup(&self, name: &str) -> Option<&CaplValue> {
        self.locals
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
            .or_else(|| self.node.globals.get(name))
    }

    fn expr(&mut self, e: &Expr) -> Result<CaplValue, RuntimeError> {
        self.tick()?;
        match e {
            Expr::Int(n) => Ok(CaplValue::Int(*n)),
            Expr::Float(f) => Ok(CaplValue::Float(*f)),
            Expr::Char(c) => Ok(CaplValue::Int(*c as i64)),
            Expr::Str(s) => Ok(CaplValue::Str(s.clone())),
            Expr::This => self
                .this
                .clone()
                .map(CaplValue::Msg)
                .ok_or_else(|| RuntimeError::new("`this` outside an `on message` handler")),
            Expr::Ident(name) => self
                .lookup(name)
                .cloned()
                .ok_or_else(|| RuntimeError::new(format!("`{name}` is not declared"))),
            Expr::Member { object, member } => {
                let obj = self.expr(object)?;
                let CaplValue::Msg(msg) = obj else {
                    return Err(RuntimeError::new(format!(
                        "member access `.{member}` on a non-message value"
                    )));
                };
                self.signal_get(&msg, member)
            }
            Expr::Index { array, index } => {
                let idx = self.expr(index)?.as_int()? as usize;
                match self.expr(array)? {
                    CaplValue::Array(items) => {
                        items.get(idx).copied().map(CaplValue::Int).ok_or_else(|| {
                            RuntimeError::new(format!("array index {idx} out of bounds"))
                        })
                    }
                    CaplValue::Msg(m) => m
                        .payload
                        .get(idx)
                        .map(|b| CaplValue::Int(i64::from(*b)))
                        .ok_or_else(|| {
                            RuntimeError::new(format!("payload index {idx} out of bounds"))
                        }),
                    other => Err(RuntimeError::new(format!("cannot index {other:?}"))),
                }
            }
            Expr::Call { name, args } => self.call(name, args),
            Expr::Unary { op, expr } => {
                let v = self.expr(expr)?;
                Ok(match op {
                    UnOp::Neg => match v {
                        CaplValue::Float(f) => CaplValue::Float(-f),
                        other => CaplValue::Int(-other.as_int()?),
                    },
                    UnOp::Not => CaplValue::Int(i64::from(!v.truthy())),
                    UnOp::BitNot => CaplValue::Int(!v.as_int()?),
                })
            }
            Expr::Binary { op, lhs, rhs } => {
                // Short-circuit logic first.
                if matches!(op, BinOp::And) {
                    let l = self.expr(lhs)?;
                    if !l.truthy() {
                        return Ok(CaplValue::Int(0));
                    }
                    return Ok(CaplValue::Int(i64::from(self.expr(rhs)?.truthy())));
                }
                if matches!(op, BinOp::Or) {
                    let l = self.expr(lhs)?;
                    if l.truthy() {
                        return Ok(CaplValue::Int(1));
                    }
                    return Ok(CaplValue::Int(i64::from(self.expr(rhs)?.truthy())));
                }
                let l = self.expr(lhs)?;
                let r = self.expr(rhs)?;
                binary(*op, l, r)
            }
            Expr::Assign { target, value } => {
                let v = self.expr(value)?;
                self.assign(target, v.clone())?;
                Ok(v)
            }
        }
    }

    fn assign(&mut self, target: &Expr, value: CaplValue) -> Result<(), RuntimeError> {
        match target {
            Expr::Ident(name) => {
                if let Some(slot) = self
                    .locals
                    .iter_mut()
                    .rev()
                    .find(|(n, _)| n == name)
                    .map(|(_, v)| v)
                {
                    *slot = value;
                    return Ok(());
                }
                if let Some(slot) = self.node.globals.get_mut(name) {
                    *slot = value;
                    return Ok(());
                }
                Err(RuntimeError::new(format!("`{name}` is not declared")))
            }
            Expr::Member { object, member } => {
                let raw = value.as_int()?;
                self.signal_set(object, member, raw)
            }
            Expr::Index { array, index } => {
                let idx = self.expr(index)?.as_int()? as usize;
                let raw = value.as_int()?;
                let Expr::Ident(name) = array.as_ref() else {
                    return Err(RuntimeError::new("can only index-assign a variable"));
                };
                let Some(slot) = self
                    .locals
                    .iter_mut()
                    .rev()
                    .find(|(n, _)| n == name)
                    .map(|(_, v)| v)
                    .or_else(|| self.node.globals.get_mut(name))
                else {
                    return Err(RuntimeError::new(format!("`{name}` is not declared")));
                };
                match slot {
                    CaplValue::Array(items) => {
                        let Some(cell) = items.get_mut(idx) else {
                            return Err(RuntimeError::new(format!(
                                "array index {idx} out of bounds"
                            )));
                        };
                        *cell = raw;
                        Ok(())
                    }
                    CaplValue::Msg(m) => {
                        let Some(cell) = m.payload.get_mut(idx) else {
                            return Err(RuntimeError::new(format!(
                                "payload index {idx} out of bounds"
                            )));
                        };
                        *cell = raw as u8;
                        Ok(())
                    }
                    other => Err(RuntimeError::new(format!("cannot index {other:?}"))),
                }
            }
            other => Err(RuntimeError::new(format!(
                "invalid assignment target {other:?}"
            ))),
        }
    }

    fn signal_get(&self, msg: &MsgObject, signal: &str) -> Result<CaplValue, RuntimeError> {
        let Some(db) = self.db else {
            return Err(RuntimeError::new("signal access needs a network database"));
        };
        let m = db
            .message_by_id(msg.id)
            .ok_or_else(|| RuntimeError::new(format!("message 0x{:x} not in database", msg.id)))?;
        let s = m.signal(signal).ok_or_else(|| {
            RuntimeError::new(format!("message `{}` has no signal `{signal}`", m.name))
        })?;
        Ok(CaplValue::Int(s.decode(&msg.payload)))
    }

    fn signal_set(&mut self, object: &Expr, signal: &str, raw: i64) -> Result<(), RuntimeError> {
        let Expr::Ident(name) = object else {
            return Err(RuntimeError::new(
                "signal assignment must target a message variable",
            ));
        };
        let Some(db) = self.db else {
            return Err(RuntimeError::new("signal access needs a network database"));
        };
        // Find the message variable.
        let msg_id = match self.lookup(name) {
            Some(CaplValue::Msg(m)) => m.id,
            _ => {
                return Err(RuntimeError::new(format!(
                    "`{name}` is not a message variable"
                )))
            }
        };
        let sig = db
            .message_by_id(msg_id)
            .and_then(|m| m.signal(signal))
            .cloned()
            .ok_or_else(|| RuntimeError::new(format!("no signal `{signal}` on `{name}`")))?;
        let slot = self
            .locals
            .iter_mut()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
            .or_else(|| self.node.globals.get_mut(name))
            .expect("variable existence checked above");
        let CaplValue::Msg(m) = slot else {
            unreachable!("checked to be a message variable");
        };
        sig.encode(&mut m.payload, raw);
        Ok(())
    }

    /// System-variable keys may be given as string literals or bare names.
    fn sysvar_key(&mut self, e: &Expr) -> Result<String, RuntimeError> {
        match e {
            Expr::Str(s) => Ok(s.clone()),
            Expr::Ident(n) => Ok(n.clone()),
            other => match self.expr(other)? {
                CaplValue::Str(s) => Ok(s),
                v => Err(RuntimeError::new(format!(
                    "system variable name must be a string, found {v:?}"
                ))),
            },
        }
    }

    fn call(&mut self, name: &str, args: &[Expr]) -> Result<CaplValue, RuntimeError> {
        match name {
            "output" => {
                let [arg] = args else {
                    return Err(RuntimeError::new("output() takes exactly one argument"));
                };
                let msg = match arg {
                    // A bare database message name is allowed even without a
                    // declared variable.
                    Expr::Ident(n) if self.lookup(n).is_none() => {
                        resolve_msg(&MsgRef::Name(n.clone()), self.db)?
                    }
                    other => match self.expr(other)? {
                        CaplValue::Msg(m) => m,
                        v => {
                            return Err(RuntimeError::new(format!(
                                "output() needs a message, found {v:?}"
                            )))
                        }
                    },
                };
                self.effects.push(Effect::Output(msg));
                Ok(CaplValue::Int(0))
            }
            "setTimer" => {
                let [timer, duration] = args else {
                    return Err(RuntimeError::new("setTimer(timer, duration) takes 2 args"));
                };
                let Expr::Ident(tname) = timer else {
                    return Err(RuntimeError::new("setTimer: first arg must be a timer"));
                };
                let Some(kind) = self.node.timer_kinds.get(tname).cloned() else {
                    return Err(RuntimeError::new(format!(
                        "`{tname}` is not a declared timer"
                    )));
                };
                let d = self.expr(duration)?.as_int()?;
                if d < 0 {
                    return Err(RuntimeError::new("setTimer: negative duration"));
                }
                let delay_us = match kind {
                    Type::MsTimer => d as u64 * 1_000,
                    _ => d as u64 * 1_000_000,
                };
                self.effects.push(Effect::SetTimer {
                    name: tname.clone(),
                    delay_us,
                });
                Ok(CaplValue::Int(0))
            }
            "cancelTimer" => {
                let [timer] = args else {
                    return Err(RuntimeError::new("cancelTimer(timer) takes 1 arg"));
                };
                let Expr::Ident(tname) = timer else {
                    return Err(RuntimeError::new("cancelTimer: arg must be a timer"));
                };
                self.effects.push(Effect::CancelTimer(tname.clone()));
                Ok(CaplValue::Int(0))
            }
            "write" => {
                let mut values = Vec::new();
                let mut fmt = String::new();
                for (i, a) in args.iter().enumerate() {
                    if i == 0 {
                        if let Expr::Str(s) = a {
                            fmt = s.clone();
                            continue;
                        }
                    }
                    values.push(self.expr(a)?);
                }
                let rendered = if fmt.is_empty() && args.len() == 1 {
                    // write(expr) — render the single value.
                    match self.expr(&args[0])? {
                        CaplValue::Str(s) => s,
                        CaplValue::Int(n) => n.to_string(),
                        CaplValue::Float(f) => f.to_string(),
                        other => format!("{other:?}"),
                    }
                } else {
                    format_write(&fmt, &values)
                };
                self.effects.push(Effect::Log(rendered));
                Ok(CaplValue::Int(0))
            }
            "timeNow" => Ok(CaplValue::Int((self.now_us / 10) as i64)),
            "getValue" => {
                let [name_arg] = args else {
                    return Err(RuntimeError::new("getValue(sysvar) takes 1 arg"));
                };
                let key = self.sysvar_key(name_arg)?;
                Ok(CaplValue::Int(self.sysvars.get(&key).copied().unwrap_or(0)))
            }
            "putValue" => {
                let [name_arg, value] = args else {
                    return Err(RuntimeError::new("putValue(sysvar, value) takes 2 args"));
                };
                let key = self.sysvar_key(name_arg)?;
                let v = self.expr(value)?.as_int()?;
                self.sysvars.insert(key, v);
                Ok(CaplValue::Int(0))
            }
            "random" => {
                let [bound] = args else {
                    return Err(RuntimeError::new("random(max) takes 1 arg"));
                };
                let b = self.expr(bound)?.as_int()?;
                if b <= 0 {
                    return Ok(CaplValue::Int(0));
                }
                Ok(CaplValue::Int(self.rng.gen_range(0..b)))
            }
            _ => {
                // User-defined function.
                let Some(f) = self.node.program.function(name).cloned() else {
                    return Err(RuntimeError::new(format!("unknown function `{name}`")));
                };
                if f.params.len() != args.len() {
                    return Err(RuntimeError::new(format!(
                        "`{name}` expects {} argument(s), got {}",
                        f.params.len(),
                        args.len()
                    )));
                }
                let mut bound = Vec::with_capacity(args.len());
                for ((_, pname), a) in f.params.iter().zip(args) {
                    bound.push((pname.clone(), self.expr(a)?));
                }
                let depth = self.locals.len();
                self.locals.extend(bound);
                let flow = self.block(&f.body)?;
                self.locals.truncate(depth);
                Ok(match flow {
                    Flow::Return(Some(v)) => v,
                    _ => CaplValue::Int(0),
                })
            }
        }
    }
}

fn binary(op: BinOp, l: CaplValue, r: CaplValue) -> Result<CaplValue, RuntimeError> {
    // Floats propagate.
    if matches!(l, CaplValue::Float(_)) || matches!(r, CaplValue::Float(_)) {
        let a = match l {
            CaplValue::Float(f) => f,
            other => other.as_int()? as f64,
        };
        let b = match r {
            CaplValue::Float(f) => f,
            other => other.as_int()? as f64,
        };
        return Ok(match op {
            BinOp::Add => CaplValue::Float(a + b),
            BinOp::Sub => CaplValue::Float(a - b),
            BinOp::Mul => CaplValue::Float(a * b),
            BinOp::Div => CaplValue::Float(a / b),
            BinOp::Eq => CaplValue::Int(i64::from(a == b)),
            BinOp::Ne => CaplValue::Int(i64::from(a != b)),
            BinOp::Lt => CaplValue::Int(i64::from(a < b)),
            BinOp::Le => CaplValue::Int(i64::from(a <= b)),
            BinOp::Gt => CaplValue::Int(i64::from(a > b)),
            BinOp::Ge => CaplValue::Int(i64::from(a >= b)),
            other => return Err(RuntimeError::new(format!("{other:?} on floats"))),
        });
    }
    let a = l.as_int()?;
    let b = r.as_int()?;
    Ok(CaplValue::Int(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                return Err(RuntimeError::new("division by zero"));
            }
            a / b
        }
        BinOp::Mod => {
            if b == 0 {
                return Err(RuntimeError::new("modulo by zero"));
            }
            a % b
        }
        BinOp::Eq => i64::from(a == b),
        BinOp::Ne => i64::from(a != b),
        BinOp::Lt => i64::from(a < b),
        BinOp::Le => i64::from(a <= b),
        BinOp::Gt => i64::from(a > b),
        BinOp::Ge => i64::from(a >= b),
        BinOp::And => i64::from(a != 0 && b != 0),
        BinOp::Or => i64::from(a != 0 || b != 0),
        BinOp::BitAnd => a & b,
        BinOp::BitOr => a | b,
        BinOp::BitXor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b as u32),
        BinOp::Shr => a.wrapping_shr(b as u32),
    }))
}

/// Minimal `printf`-style formatting for `write`: `%d`, `%x`, `%s`, `%f`.
fn format_write(fmt: &str, values: &[CaplValue]) -> String {
    let mut out = String::new();
    let mut vi = 0usize;
    let mut chars = fmt.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('d') => {
                if let Some(v) = values.get(vi) {
                    out.push_str(&v.as_int().map_or_else(|_| "?".into(), |n| n.to_string()));
                }
                vi += 1;
            }
            Some('x') => {
                if let Some(v) = values.get(vi) {
                    out.push_str(&v.as_int().map_or_else(|_| "?".into(), |n| format!("{n:x}")));
                }
                vi += 1;
            }
            Some('f') => {
                if let Some(CaplValue::Float(f)) = values.get(vi) {
                    out.push_str(&f.to_string());
                } else if let Some(v) = values.get(vi) {
                    out.push_str(&v.as_int().map_or_else(|_| "?".into(), |n| n.to_string()));
                }
                vi += 1;
            }
            Some('s') => {
                if let Some(CaplValue::Str(s)) = values.get(vi) {
                    out.push_str(s);
                }
                vi += 1;
            }
            Some('%') => out.push('%'),
            Some(other) => {
                out.push('%');
                out.push(other);
            }
            None => out.push('%'),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn db() -> Database {
        candb::parse(
            "BU_: VMG ECU\n\
             BO_ 100 reqSw: 8 VMG\n SG_ reqType : 0|4@1+ (1,0) [0|15] \"\" ECU\n\
             BO_ 101 rptSw: 8 ECU\n SG_ status : 0|8@1+ (1,0) [0|255] \"\" VMG",
        )
        .unwrap()
    }

    fn node(src: &str) -> NodeState {
        let program = capl::parse(src).unwrap();
        NodeState::new("T", program, Some(&db())).unwrap()
    }

    fn fire(state: &mut NodeState, event: &EventKind) -> Vec<Effect> {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sysvars = HashMap::new();
        state
            .fire(event, None, Some(&db()), &mut rng, 0, &mut sysvars)
            .unwrap()
    }

    #[test]
    fn on_start_outputs_message() {
        let mut n = node("variables { message reqSw m; } on start { output(m); }");
        let fx = fire(&mut n, &EventKind::Start);
        assert_eq!(fx.len(), 1);
        let Effect::Output(m) = &fx[0] else { panic!() };
        assert_eq!(m.id, 100);
        assert_eq!(m.name.as_deref(), Some("reqSw"));
    }

    #[test]
    fn signal_assignment_encodes_into_payload() {
        let mut n = node(
            "variables { message rptSw r; }
             on start { r.status = 42; output(r); }",
        );
        let fx = fire(&mut n, &EventKind::Start);
        let Effect::Output(m) = &fx[0] else { panic!() };
        assert_eq!(m.payload[0], 42);
    }

    #[test]
    fn set_timer_effect_with_ms_conversion() {
        let mut n = node("variables { msTimer t; } on start { setTimer(t, 100); }");
        let fx = fire(&mut n, &EventKind::Start);
        assert_eq!(
            fx,
            vec![Effect::SetTimer {
                name: "t".into(),
                delay_us: 100_000
            }]
        );
    }

    #[test]
    fn second_timer_kind_uses_seconds() {
        let mut n = node("variables { timer t; } on start { setTimer(t, 2); }");
        let fx = fire(&mut n, &EventKind::Start);
        assert_eq!(
            fx,
            vec![Effect::SetTimer {
                name: "t".into(),
                delay_us: 2_000_000
            }]
        );
    }

    #[test]
    fn write_formats_values() {
        let mut n = node(
            "variables { int x = 10; }
             on start { write(\"x=%d hex=%x\", x, x); }",
        );
        let fx = fire(&mut n, &EventKind::Start);
        assert_eq!(fx, vec![Effect::Log("x=10 hex=a".into())]);
    }

    #[test]
    fn state_persists_across_activations() {
        let mut n = node(
            "variables { int count = 0; }
             on start { count = count + 1; }",
        );
        fire(&mut n, &EventKind::Start);
        fire(&mut n, &EventKind::Start);
        assert_eq!(n.global("count"), Some(&CaplValue::Int(2)));
    }

    #[test]
    fn user_functions_return_values() {
        let mut n = node(
            "variables { int y = 0; }
             int double(int x) { return x * 2; }
             on start { y = double(21); }",
        );
        fire(&mut n, &EventKind::Start);
        assert_eq!(n.global("y"), Some(&CaplValue::Int(42)));
    }

    #[test]
    fn loops_and_arrays() {
        let mut n = node(
            "variables { byte buf[4]; int sum = 0; }
             on start {
               int i;
               for (i = 0; i < 4; i++) { buf[i] = i * i; }
               for (i = 0; i < 4; i++) { sum += buf[i]; }
             }",
        );
        fire(&mut n, &EventKind::Start);
        assert_eq!(n.global("sum"), Some(&CaplValue::Int(1 + 4 + 9)));
    }

    #[test]
    fn switch_executes_matching_case() {
        let mut n = node(
            "variables { int r = 0; }
             on start {
               switch (2) {
                 case 1: r = 10; break;
                 case 2: r = 20; break;
                 default: r = 30;
               }
             }",
        );
        fire(&mut n, &EventKind::Start);
        assert_eq!(n.global("r"), Some(&CaplValue::Int(20)));
    }

    #[test]
    fn infinite_loop_is_caught() {
        let mut n = node("on start { while (1) { } }");
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sysvars = HashMap::new();
        let err = n
            .fire(
                &EventKind::Start,
                None,
                Some(&db()),
                &mut rng,
                0,
                &mut sysvars,
            )
            .unwrap_err();
        assert!(err.message.contains("budget"));
    }

    #[test]
    fn this_reads_triggering_message() {
        let mut n = node(
            "variables { int seen = 0; }
             on message reqSw { seen = this.reqType; }",
        );
        let mut this = MsgObject {
            id: 100,
            name: Some("reqSw".into()),
            dlc: 8,
            payload: [0; 8],
        };
        this.payload[0] = 5;
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sysvars = HashMap::new();
        n.fire(
            &EventKind::Message(MsgRef::Name("reqSw".into())),
            Some(this),
            Some(&db()),
            &mut rng,
            0,
            &mut sysvars,
        )
        .unwrap();
        assert_eq!(n.global("seen"), Some(&CaplValue::Int(5)));
    }

    #[test]
    fn wildcard_handler_catches_unmatched_messages() {
        let mut n = node(
            "variables { int hits = 0; }
             on message * { hits = hits + 1; }",
        );
        let this = MsgObject {
            id: 999,
            name: None,
            dlc: 8,
            payload: [0; 8],
        };
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sysvars = HashMap::new();
        n.fire(
            &EventKind::Message(MsgRef::Id(999)),
            Some(this),
            Some(&db()),
            &mut rng,
            0,
            &mut sysvars,
        )
        .unwrap();
        assert_eq!(n.global("hits"), Some(&CaplValue::Int(1)));
    }

    #[test]
    fn output_of_bare_database_name() {
        let mut n = node("on start { output(rptSw); }");
        let fx = fire(&mut n, &EventKind::Start);
        let Effect::Output(m) = &fx[0] else { panic!() };
        assert_eq!(m.id, 101);
    }
}
