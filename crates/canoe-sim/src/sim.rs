//! The discrete-event scheduler: nodes, timers and the arbitrated bus.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::fmt;

use candb::Database;
use capl::ast::{EventKind, MsgRef, Program};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::frame::Frame;
use crate::interp::{CaplValue, Effect, MsgObject, NodeState, RuntimeError};
use crate::trace::{TraceEntry, TraceEvent};

/// Errors from building or running a simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A CAPL runtime error, attributed to a node.
    Runtime {
        /// The node whose handler failed.
        node: String,
        /// The underlying error.
        error: RuntimeError,
    },
    /// A node name was used twice.
    DuplicateNode(String),
    /// An operation referenced an unknown node.
    UnknownNode(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Runtime { node, error } => write!(f, "node `{node}`: {error}"),
            SimError::DuplicateNode(n) => write!(f, "node `{n}` added twice"),
            SimError::UnknownNode(n) => write!(f, "unknown node `{n}`"),
        }
    }
}

impl std::error::Error for SimError {}

/// One frame an [`Interceptor`] asks the bus to deliver.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery {
    /// The frame to deliver.
    pub frame: Frame,
    /// Deliver this many microseconds after the interception instant
    /// (0 = now). Delayed deliveries do not re-occupy the bus and are not
    /// re-intercepted.
    pub delay_us: u64,
    /// Deliver as if an unmodelled external device sent it: every node —
    /// including the original sender — receives the frame. Used for
    /// spoofed and replayed frames.
    pub from_external: bool,
}

impl Delivery {
    /// Deliver `frame` immediately, attributed to the original sender.
    pub fn immediate(frame: Frame) -> Delivery {
        Delivery {
            frame,
            delay_us: 0,
            from_external: false,
        }
    }
}

/// A tagged record of one fault action, drained by the simulation after
/// each interception and appended to the trace as [`TraceEvent::Fault`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// The fault's name (from its plan entry).
    pub fault: String,
    /// What the fault did.
    pub action: String,
    /// The affected CAN identifier (0 when not frame-related).
    pub id: u32,
}

/// A man-in-the-middle hook: sees every frame that wins arbitration and
/// decides what the bus actually delivers.
///
/// Returning an empty vector drops the frame; returning different or extra
/// frames models modification, replay and forgery — the Dolev-Yao
/// capabilities used by the security analyses (§IV-E of the paper).
///
/// Only [`Interceptor::on_frame`] is required. The remaining methods have
/// defaults that keep pre-existing interceptors working: a timed variant
/// for delay/jitter and spoofing faults, a seed hook so
/// [`Simulation::set_seed`] governs any randomness the interceptor uses,
/// and a fault log that lets the simulation tag the trace with what the
/// interceptor did.
pub trait Interceptor {
    /// Decide what is delivered in place of `frame`.
    fn on_frame(&mut self, frame: &Frame, time_us: u64) -> Vec<Frame>;

    /// Like [`Interceptor::on_frame`], but each result carries its own
    /// delay and sender attribution. The default delegates to `on_frame`
    /// with immediate, sender-attributed deliveries.
    fn on_frame_timed(&mut self, frame: &Frame, time_us: u64) -> Vec<Delivery> {
        self.on_frame(frame, time_us)
            .into_iter()
            .map(Delivery::immediate)
            .collect()
    }

    /// Reseed any randomness this interceptor uses. Called by
    /// [`Simulation::set_seed`] (with a seed derived from the simulation
    /// seed) and by [`Simulation::set_interceptor`] on installation, so all
    /// stochastic behaviour in a run derives from the one simulation seed.
    fn set_seed(&mut self, seed: u64) {
        let _ = seed;
    }

    /// Take the tagged fault records accumulated since the last call. The
    /// simulation drains this after every interception and appends each
    /// record to the trace as [`TraceEvent::Fault`].
    fn drain_fault_log(&mut self) -> Vec<FaultRecord> {
        Vec::new()
    }
}

/// The default interceptor: every frame is delivered unchanged.
#[derive(Debug, Clone, Default)]
pub struct PassThrough;

impl Interceptor for PassThrough {
    fn on_frame(&mut self, frame: &Frame, _time_us: u64) -> Vec<Frame> {
        vec![frame.clone()]
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Pending {
    TimerExpiry {
        node: usize,
        timer: String,
        generation: u64,
    },
    Delivery {
        sender: Option<usize>,
        frame: Frame,
        /// Already passed through the interceptor (a delayed or extra
        /// delivery it produced): dispatch directly, do not re-intercept
        /// and do not treat as a bus-transmission completion.
        intercepted: bool,
    },
    /// A scheduled node outage begins.
    NodeDown { node: usize },
    /// A scheduled node outage ends; the node restarts (`on start` re-runs).
    NodeUp { node: usize },
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Event {
    time: u64,
    seq: u64,
    pending: Pending,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The seed a fresh [`Simulation`] starts with.
const DEFAULT_SEED: u64 = 0x00CA_7B05;

/// Derive the interceptor's seed stream from the simulation seed
/// (splitmix64 finalizer), so CAPL `random()` and fault randomness draw
/// from decorrelated streams of the same root seed.
fn derive_seed(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A CANoe-style simulation: a set of CAPL nodes on one CAN bus.
pub struct Simulation {
    db: Option<Database>,
    nodes: Vec<NodeState>,
    time_us: u64,
    seq: u64,
    queue: BinaryHeap<Reverse<Event>>,
    trace: Vec<TraceEntry>,
    rng: SmallRng,
    bus_free_at: u64,
    bus_busy: bool,
    pending_tx: Vec<(Option<usize>, Frame)>,
    timer_generations: HashMap<(usize, String), u64>,
    sysvars: HashMap<String, i64>,
    interceptor: Box<dyn Interceptor>,
    started: bool,
    seed: u64,
    /// Scheduled node outages: (node index, down from, up at).
    outages: Vec<(usize, u64, u64)>,
}

impl fmt::Debug for Simulation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("nodes", &self.nodes.len())
            .field("time_us", &self.time_us)
            .field("trace_len", &self.trace.len())
            .finish()
    }
}

impl Simulation {
    /// Create a simulation, optionally attached to a network database.
    pub fn new(db: Option<Database>) -> Simulation {
        Simulation {
            db,
            nodes: Vec::new(),
            time_us: 0,
            seq: 0,
            queue: BinaryHeap::new(),
            trace: Vec::new(),
            rng: SmallRng::seed_from_u64(DEFAULT_SEED),
            bus_free_at: 0,
            bus_busy: false,
            pending_tx: Vec::new(),
            timer_generations: HashMap::new(),
            sysvars: HashMap::new(),
            interceptor: Box::new(PassThrough),
            started: false,
            seed: DEFAULT_SEED,
            outages: Vec::new(),
        }
    }

    /// Reseed *all* stochastic behaviour in the simulation from one value:
    /// the RNG used by CAPL `random()` and (via a derived stream) whatever
    /// randomness the installed [`Interceptor`] uses. Same seed, same
    /// program, same plan ⇒ byte-identical trace.
    pub fn set_seed(&mut self, seed: u64) {
        self.seed = seed;
        self.rng = SmallRng::seed_from_u64(seed);
        self.interceptor.set_seed(derive_seed(seed));
    }

    /// Install a man-in-the-middle interceptor. The interceptor is seeded
    /// from the simulation seed immediately, so the order of
    /// [`Simulation::set_seed`] and `set_interceptor` calls does not
    /// matter.
    pub fn set_interceptor(&mut self, mut interceptor: Box<dyn Interceptor>) {
        interceptor.set_seed(derive_seed(self.seed));
        self.interceptor = interceptor;
    }

    /// Add a network node running `program`.
    ///
    /// # Errors
    ///
    /// [`SimError::DuplicateNode`] for repeated names, or a runtime error if
    /// the program's `message` variables cannot be resolved.
    pub fn add_node(&mut self, name: &str, program: Program) -> Result<(), SimError> {
        if self.nodes.iter().any(|n| n.name == name) {
            return Err(SimError::DuplicateNode(name.to_owned()));
        }
        let state =
            NodeState::new(name, program, self.db.as_ref()).map_err(|error| SimError::Runtime {
                node: name.to_owned(),
                error,
            })?;
        self.nodes.push(state);
        Ok(())
    }

    /// Current simulation time in microseconds.
    pub fn time_us(&self) -> u64 {
        self.time_us
    }

    /// The observable trace so far.
    pub fn trace(&self) -> &[TraceEntry] {
        &self.trace
    }

    /// Read a system/environment variable (shared via `getValue`/`putValue`).
    pub fn sysvar(&self, name: &str) -> Option<i64> {
        self.sysvars.get(name).copied()
    }

    /// Set a system/environment variable from outside the network (panel
    /// input, test harness, …).
    pub fn set_sysvar(&mut self, name: &str, value: i64) {
        self.sysvars.insert(name.to_owned(), value);
    }

    /// Read a node's global variable (for assertions and tests).
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownNode`] if no node has that name.
    pub fn node_global(&self, node: &str, var: &str) -> Result<Option<CaplValue>, SimError> {
        let n = self
            .nodes
            .iter()
            .find(|n| n.name == node)
            .ok_or_else(|| SimError::UnknownNode(node.to_owned()))?;
        Ok(n.global(var).cloned())
    }

    /// Press a key on a node's panel (`on key` procedures).
    ///
    /// # Errors
    ///
    /// Unknown node, or a runtime error in the handler.
    pub fn key_press(&mut self, node: &str, key: char) -> Result<(), SimError> {
        let idx = self
            .nodes
            .iter()
            .position(|n| n.name == node)
            .ok_or_else(|| SimError::UnknownNode(node.to_owned()))?;
        self.fire_node(idx, &EventKind::Key(key), None)
    }

    /// Inject a frame as if an (unmodelled) external device transmitted it.
    ///
    /// The injection itself is recorded as [`TraceEvent::Injected`], so
    /// externally-sourced frames are distinguishable in the trace from
    /// node-transmitted ones even before the bus grant (which shows the
    /// sender as `<external>`).
    pub fn inject_frame(&mut self, frame: Frame) {
        self.trace.push(TraceEntry {
            time_us: self.time_us,
            event: TraceEvent::Injected {
                message: self.message_name(frame.id),
                id: frame.id,
                payload: frame.payload,
            },
        });
        self.pending_tx.push((None, frame));
        self.grant_bus();
    }

    /// Schedule a node outage (crash at `from_us`, restart at `until_us`):
    /// while down, the node's handlers do not run, it receives no frames
    /// and its timers are lost; on restart its `on start` handler runs
    /// again. Both edges are tagged in the trace as [`TraceEvent::Fault`].
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownNode`] if no node has that name.
    pub fn schedule_outage(
        &mut self,
        node: &str,
        from_us: u64,
        until_us: u64,
    ) -> Result<(), SimError> {
        let idx = self
            .nodes
            .iter()
            .position(|n| n.name == node)
            .ok_or_else(|| SimError::UnknownNode(node.to_owned()))?;
        self.outages.push((idx, from_us, until_us));
        self.push_event(from_us, Pending::NodeDown { node: idx });
        if until_us > from_us {
            self.push_event(until_us, Pending::NodeUp { node: idx });
        }
        Ok(())
    }

    /// Is node `idx` inside a scheduled outage window at the current time?
    fn node_is_down(&self, idx: usize) -> bool {
        self.outages
            .iter()
            .any(|&(n, from, until)| n == idx && self.time_us >= from && self.time_us < until)
    }

    /// Run until simulation time reaches `deadline_us`.
    ///
    /// # Errors
    ///
    /// The first CAPL runtime error raised by any handler.
    pub fn run_until(&mut self, deadline_us: u64) -> Result<(), SimError> {
        if !self.started {
            self.started = true;
            for idx in 0..self.nodes.len() {
                self.fire_node(idx, &EventKind::Start, None)?;
            }
        }
        while let Some(Reverse(ev)) = self.queue.peek().cloned() {
            if ev.time > deadline_us {
                break;
            }
            self.queue.pop();
            self.time_us = ev.time;
            match ev.pending {
                Pending::TimerExpiry {
                    node,
                    timer,
                    generation,
                } => {
                    let current = self
                        .timer_generations
                        .get(&(node, timer.clone()))
                        .copied()
                        .unwrap_or(0);
                    if current != generation {
                        continue; // cancelled or re-armed
                    }
                    if self.node_is_down(node) {
                        continue; // crashed: pending timers are lost
                    }
                    self.trace.push(TraceEntry {
                        time_us: self.time_us,
                        event: TraceEvent::TimerFired {
                            node: self.nodes[node].name.clone(),
                            timer: timer.clone(),
                        },
                    });
                    self.fire_node(node, &EventKind::Timer(timer), None)?;
                }
                Pending::Delivery {
                    sender,
                    frame,
                    intercepted,
                } => {
                    if intercepted {
                        // A delayed/extra delivery from the interceptor:
                        // the bus transmission already completed, so do not
                        // touch bus state and do not re-intercept.
                        self.dispatch(sender, &frame)?;
                    } else {
                        self.bus_busy = false;
                        self.deliver(sender, frame)?;
                    }
                    self.grant_bus();
                }
                Pending::NodeDown { node } => {
                    self.trace.push(TraceEntry {
                        time_us: self.time_us,
                        event: TraceEvent::Fault {
                            fault: "node_crash".to_owned(),
                            action: format!("{} down", self.nodes[node].name),
                            id: 0,
                        },
                    });
                }
                Pending::NodeUp { node } => {
                    self.trace.push(TraceEntry {
                        time_us: self.time_us,
                        event: TraceEvent::Fault {
                            fault: "node_crash".to_owned(),
                            action: format!("{} restarted", self.nodes[node].name),
                            id: 0,
                        },
                    });
                    self.fire_node(node, &EventKind::Start, None)?;
                }
            }
        }
        self.time_us = deadline_us;
        Ok(())
    }

    /// Run for `duration_us` more microseconds.
    ///
    /// # Errors
    ///
    /// See [`Simulation::run_until`].
    pub fn run_for(&mut self, duration_us: u64) -> Result<(), SimError> {
        self.run_until(self.time_us + duration_us)
    }

    // ---- internals -----------------------------------------------------

    fn push_event(&mut self, time: u64, pending: Pending) {
        self.seq += 1;
        self.queue.push(Reverse(Event {
            time,
            seq: self.seq,
            pending,
        }));
    }

    /// Grant the bus to the highest-priority (lowest id) pending frame.
    fn grant_bus(&mut self) {
        if self.bus_busy || self.pending_tx.is_empty() {
            return;
        }
        let best = self
            .pending_tx
            .iter()
            .enumerate()
            .min_by_key(|(_, (_, f))| f.id)
            .map(|(i, _)| i)
            .expect("pending_tx nonempty");
        let (sender, frame) = self.pending_tx.remove(best);
        let start = self.time_us.max(self.bus_free_at);
        let delivery = start + frame.duration_us();
        self.bus_free_at = delivery;
        self.bus_busy = true;
        self.trace.push(TraceEntry {
            time_us: start,
            event: TraceEvent::Transmit {
                node: sender
                    .map(|i| self.nodes[i].name.clone())
                    .unwrap_or_else(|| "<external>".to_owned()),
                message: self.message_name(frame.id),
                id: frame.id,
                payload: frame.payload,
            },
        });
        self.push_event(
            delivery,
            Pending::Delivery {
                sender,
                frame,
                intercepted: false,
            },
        );
    }

    fn message_name(&self, id: u32) -> String {
        self.db
            .as_ref()
            .and_then(|d| d.message_by_id(id))
            .map(|m| m.name.clone())
            .unwrap_or_else(|| format!("id_0x{id:x}"))
    }

    fn deliver(&mut self, sender: Option<usize>, frame: Frame) -> Result<(), SimError> {
        let deliveries = self.interceptor.on_frame_timed(&frame, self.time_us);
        for record in self.interceptor.drain_fault_log() {
            self.trace.push(TraceEntry {
                time_us: self.time_us,
                event: TraceEvent::Fault {
                    fault: record.fault,
                    action: record.action,
                    id: record.id,
                },
            });
        }
        let unchanged = deliveries.len() == 1
            && deliveries[0].frame == frame
            && deliveries[0].delay_us == 0
            && !deliveries[0].from_external;
        if !unchanged {
            self.trace.push(TraceEntry {
                time_us: self.time_us,
                event: TraceEvent::Intercepted {
                    action: if deliveries.is_empty() {
                        "dropped".to_owned()
                    } else {
                        format!("replaced with {} frame(s)", deliveries.len())
                    },
                    id: frame.id,
                },
            });
        }
        for d in deliveries {
            let d_sender = if d.from_external { None } else { sender };
            if d.delay_us == 0 {
                self.dispatch(d_sender, &d.frame)?;
            } else {
                self.push_event(
                    self.time_us + d.delay_us,
                    Pending::Delivery {
                        sender: d_sender,
                        frame: d.frame,
                        intercepted: true,
                    },
                );
            }
        }
        Ok(())
    }

    /// Fan a delivered frame out to every listening node (the post-
    /// interception half of [`Simulation::deliver`]).
    fn dispatch(&mut self, sender: Option<usize>, frame: &Frame) -> Result<(), SimError> {
        let name = self
            .db
            .as_ref()
            .and_then(|d| d.message_by_id(frame.id))
            .map(|m| m.name.clone());
        for idx in 0..self.nodes.len() {
            if Some(idx) == sender {
                continue; // CAN nodes do not receive their own frames
            }
            if self.node_is_down(idx) {
                continue; // crashed nodes receive nothing
            }
            let event = self.matching_event(idx, frame.id, name.as_deref());
            let Some(event) = event else { continue };
            self.trace.push(TraceEntry {
                time_us: self.time_us,
                event: TraceEvent::Receive {
                    node: self.nodes[idx].name.clone(),
                    message: self.message_name(frame.id),
                    id: frame.id,
                    payload: frame.payload,
                },
            });
            let this = MsgObject {
                id: frame.id,
                name: name.clone(),
                dlc: frame.dlc,
                payload: frame.payload,
            };
            self.fire_node(idx, &event, Some(this))?;
        }
        Ok(())
    }

    /// Which `on message` event (if any) node `idx` has for this frame.
    fn matching_event(&self, idx: usize, id: u32, name: Option<&str>) -> Option<EventKind> {
        let program = &self.nodes[idx].program;
        if let Some(n) = name {
            let ev = EventKind::Message(MsgRef::Name(n.to_owned()));
            if program.handler(&ev).is_some() {
                return Some(ev);
            }
        }
        let ev = EventKind::Message(MsgRef::Id(id));
        if program.handler(&ev).is_some() {
            return Some(ev);
        }
        let any = EventKind::Message(MsgRef::Any);
        if program.handler(&any).is_some() {
            return Some(any);
        }
        None
    }

    fn fire_node(
        &mut self,
        idx: usize,
        event: &EventKind,
        this: Option<MsgObject>,
    ) -> Result<(), SimError> {
        if self.node_is_down(idx) {
            return Ok(()); // crashed: handlers do not run
        }
        let db = self.db.take();
        let result = self.nodes[idx].fire(
            event,
            this,
            db.as_ref(),
            &mut self.rng,
            self.time_us,
            &mut self.sysvars,
        );
        self.db = db;
        let effects = result.map_err(|error| SimError::Runtime {
            node: self.nodes[idx].name.clone(),
            error,
        })?;
        for effect in effects {
            match effect {
                Effect::Output(m) => {
                    let mut frame = Frame::new(m.id, m.dlc);
                    frame.payload = m.payload;
                    self.trace.push(TraceEntry {
                        time_us: self.time_us,
                        event: TraceEvent::Queued {
                            node: self.nodes[idx].name.clone(),
                            message: self.message_name(frame.id),
                            id: frame.id,
                            payload: frame.payload,
                        },
                    });
                    self.pending_tx.push((Some(idx), frame));
                }
                Effect::SetTimer { name, delay_us } => {
                    let generation = self
                        .timer_generations
                        .entry((idx, name.clone()))
                        .and_modify(|g| *g += 1)
                        .or_insert(1);
                    let generation = *generation;
                    self.push_event(
                        self.time_us + delay_us,
                        Pending::TimerExpiry {
                            node: idx,
                            timer: name,
                            generation,
                        },
                    );
                }
                Effect::CancelTimer(name) => {
                    self.timer_generations
                        .entry((idx, name))
                        .and_modify(|g| *g += 1)
                        .or_insert(1);
                }
                Effect::Log(text) => {
                    self.trace.push(TraceEntry {
                        time_us: self.time_us,
                        event: TraceEvent::Log {
                            node: self.nodes[idx].name.clone(),
                            text,
                        },
                    });
                }
            }
        }
        self.grant_bus();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        candb::parse(
            "BU_: VMG ECU\n\
             BO_ 100 reqSw: 8 VMG\n SG_ reqType : 0|4@1+ (1,0) [0|15] \"\" ECU\n\
             BO_ 101 rptSw: 8 ECU\n SG_ status : 0|8@1+ (1,0) [0|255] \"\" VMG\n\
             BO_ 50 urgent: 2 VMG\n SG_ code : 0|8@1+ (1,0) [0|255] \"\" ECU",
        )
        .unwrap()
    }

    fn sim_with(nodes: &[(&str, &str)]) -> Simulation {
        let mut sim = Simulation::new(Some(db()));
        for (name, src) in nodes {
            sim.add_node(name, capl::parse(src).unwrap()).unwrap();
        }
        sim
    }

    fn tx_names(sim: &Simulation) -> Vec<String> {
        sim.trace()
            .iter()
            .filter_map(|e| e.event.transmit_name().map(str::to_owned))
            .collect()
    }

    #[test]
    fn request_response_exchange() {
        let mut sim = sim_with(&[
            (
                "VMG",
                "variables { message reqSw m; } on start { output(m); }",
            ),
            (
                "ECU",
                "variables { message rptSw r; } on message reqSw { output(r); }",
            ),
        ]);
        sim.run_for(10_000).unwrap();
        assert_eq!(tx_names(&sim), vec!["reqSw", "rptSw"]);
        // Receive entries are recorded only where a handler consumed the
        // frame: the ECU consumes reqSw; nobody handles rptSw.
        let receives: Vec<&str> = sim
            .trace()
            .iter()
            .filter_map(|e| e.event.receive_name())
            .collect();
        assert_eq!(receives, vec!["reqSw"]);
    }

    #[test]
    fn arbitration_prefers_lower_id() {
        // Both messages queued in the same handler: the lower CAN id (urgent,
        // 0x32) must win the bus even though reqSw was output first.
        let mut sim = sim_with(&[(
            "VMG",
            "variables { message reqSw a; message urgent b; } on start { output(a); output(b); }",
        )]);
        sim.run_for(10_000).unwrap();
        assert_eq!(tx_names(&sim), vec!["urgent", "reqSw"]);
    }

    #[test]
    fn periodic_timer_fires_repeatedly() {
        let mut sim = sim_with(&[(
            "VMG",
            "variables { msTimer t; message reqSw m; }
             on start { setTimer(t, 10); }
             on timer t { output(m); setTimer(t, 10); }",
        )]);
        sim.run_for(35_000).unwrap(); // 35 ms → fires at 10, 20, 30
        assert_eq!(tx_names(&sim).len(), 3);
    }

    #[test]
    fn cancel_timer_prevents_firing() {
        let mut sim = sim_with(&[(
            "VMG",
            "variables { msTimer t; message reqSw m; }
             on start { setTimer(t, 10); cancelTimer(t); }
             on timer t { output(m); }",
        )]);
        sim.run_for(50_000).unwrap();
        assert!(tx_names(&sim).is_empty());
    }

    #[test]
    fn interceptor_can_drop_frames() {
        struct DropAll;
        impl Interceptor for DropAll {
            fn on_frame(&mut self, _f: &Frame, _t: u64) -> Vec<Frame> {
                Vec::new()
            }
        }
        let mut sim = sim_with(&[
            (
                "VMG",
                "variables { message reqSw m; } on start { output(m); }",
            ),
            (
                "ECU",
                "variables { message rptSw r; } on message reqSw { output(r); }",
            ),
        ]);
        sim.set_interceptor(Box::new(DropAll));
        sim.run_for(10_000).unwrap();
        // The request is transmitted but never delivered: no response.
        assert_eq!(tx_names(&sim), vec!["reqSw"]);
        assert!(sim
            .trace()
            .iter()
            .any(|e| matches!(e.event, TraceEvent::Intercepted { .. })));
    }

    #[test]
    fn interceptor_can_forge_frames() {
        struct Forger;
        impl Interceptor for Forger {
            fn on_frame(&mut self, f: &Frame, _t: u64) -> Vec<Frame> {
                let mut forged = f.clone();
                forged.payload[0] = 0xFF;
                vec![forged]
            }
        }
        let mut sim = sim_with(&[
            (
                "VMG",
                "variables { message reqSw m; } on start { m.reqType = 1; output(m); }",
            ),
            (
                "ECU",
                "variables { int seen = 0; } on message reqSw { seen = this.reqType; }",
            ),
        ]);
        sim.set_interceptor(Box::new(Forger));
        sim.run_for(10_000).unwrap();
        // reqType is the low nibble of the forged 0xFF.
        assert_eq!(
            sim.node_global("ECU", "seen").unwrap(),
            Some(CaplValue::Int(0x0F))
        );
    }

    #[test]
    fn injected_frames_reach_nodes() {
        let mut sim = sim_with(&[(
            "ECU",
            "variables { message rptSw r; } on message reqSw { output(r); }",
        )]);
        sim.run_for(1).unwrap();
        sim.inject_frame(Frame::new(100, 8));
        sim.run_for(10_000).unwrap();
        assert_eq!(tx_names(&sim), vec!["reqSw", "rptSw"]);
    }

    #[test]
    fn injected_frames_are_tagged_in_trace() {
        let mut sim = sim_with(&[(
            "ECU",
            "variables { message rptSw r; } on message reqSw { output(r); }",
        )]);
        sim.run_for(1).unwrap();
        sim.inject_frame(Frame::new(100, 8));
        sim.run_for(10_000).unwrap();
        let injected: Vec<&str> = sim
            .trace()
            .iter()
            .filter_map(|e| match &e.event {
                TraceEvent::Injected { message, .. } => Some(message.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(injected, vec!["reqSw"]);
        // The node's own rptSw response is NOT tagged as injected.
        assert_eq!(tx_names(&sim), vec!["reqSw", "rptSw"]);
    }

    #[test]
    fn delayed_deliveries_arrive_later_without_reinterception() {
        struct DelayAll {
            calls: u32,
        }
        impl Interceptor for DelayAll {
            fn on_frame(&mut self, _f: &Frame, _t: u64) -> Vec<Frame> {
                unreachable!("the sim must call on_frame_timed");
            }
            fn on_frame_timed(&mut self, f: &Frame, _t: u64) -> Vec<Delivery> {
                self.calls += 1;
                vec![Delivery {
                    frame: f.clone(),
                    delay_us: 5_000,
                    from_external: false,
                }]
            }
        }
        let mut sim = sim_with(&[
            (
                "VMG",
                "variables { message reqSw m; } on start { output(m); }",
            ),
            (
                "ECU",
                "variables { int seen = 0; } on message reqSw { seen = 1; }",
            ),
        ]);
        sim.set_interceptor(Box::new(DelayAll { calls: 0 }));
        sim.run_for(50_000).unwrap();
        assert_eq!(
            sim.node_global("ECU", "seen").unwrap(),
            Some(CaplValue::Int(1))
        );
        // The reqSw receive is ~5 ms after the undelayed arrival would be.
        let at = sim
            .trace()
            .iter()
            .find(|e| e.event.receive_name() == Some("reqSw"))
            .map(|e| e.time_us)
            .expect("delayed frame must arrive");
        assert!(at >= 5_000, "delivery at {at} µs, expected ≥ 5000");
        // Exactly one interception: the delayed re-delivery bypassed it
        // (otherwise it would loop forever).
        let interceptions = sim
            .trace()
            .iter()
            .filter(|e| matches!(e.event, TraceEvent::Intercepted { .. }))
            .count();
        assert_eq!(interceptions, 1);
    }

    #[test]
    fn external_deliveries_reach_the_original_sender() {
        // A spoofing interceptor re-attributes the frame to an external
        // device, so even the node that sent the original must receive it.
        struct Reflect;
        impl Interceptor for Reflect {
            fn on_frame(&mut self, _f: &Frame, _t: u64) -> Vec<Frame> {
                unreachable!("the sim must call on_frame_timed");
            }
            fn on_frame_timed(&mut self, f: &Frame, _t: u64) -> Vec<Delivery> {
                vec![Delivery {
                    frame: f.clone(),
                    delay_us: 0,
                    from_external: true,
                }]
            }
        }
        let mut sim = sim_with(&[(
            "VMG",
            "variables { message reqSw m; int echo = 0; }
             on start { output(m); }
             on message reqSw { echo = 1; }",
        )]);
        sim.set_interceptor(Box::new(Reflect));
        sim.run_for(10_000).unwrap();
        assert_eq!(
            sim.node_global("VMG", "echo").unwrap(),
            Some(CaplValue::Int(1))
        );
    }

    #[test]
    fn fault_log_is_drained_into_the_trace() {
        struct Tagger;
        impl Interceptor for Tagger {
            fn on_frame(&mut self, f: &Frame, _t: u64) -> Vec<Frame> {
                vec![f.clone()]
            }
            fn drain_fault_log(&mut self) -> Vec<FaultRecord> {
                vec![FaultRecord {
                    fault: "observer".to_owned(),
                    action: "saw a frame".to_owned(),
                    id: 100,
                }]
            }
        }
        let mut sim = sim_with(&[(
            "VMG",
            "variables { message reqSw m; } on start { output(m); }",
        )]);
        sim.set_interceptor(Box::new(Tagger));
        sim.run_for(10_000).unwrap();
        let faults: Vec<&str> = sim
            .trace()
            .iter()
            .filter_map(|e| e.event.fault_name())
            .collect();
        assert_eq!(faults, vec!["observer"]);
        // Unchanged delivery: no generic Intercepted entry alongside.
        assert!(!sim
            .trace()
            .iter()
            .any(|e| matches!(e.event, TraceEvent::Intercepted { .. })));
    }

    #[test]
    fn set_seed_reaches_the_interceptor_regardless_of_call_order() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        struct SeedProbe(Arc<AtomicU64>);
        impl Interceptor for SeedProbe {
            fn on_frame(&mut self, f: &Frame, _t: u64) -> Vec<Frame> {
                vec![f.clone()]
            }
            fn set_seed(&mut self, seed: u64) {
                self.0.store(seed, Ordering::Relaxed);
            }
        }
        let before = Arc::new(AtomicU64::new(0));
        let after = Arc::new(AtomicU64::new(0));

        let mut sim = Simulation::new(None);
        sim.set_interceptor(Box::new(SeedProbe(Arc::clone(&before))));
        sim.set_seed(42);

        let mut sim2 = Simulation::new(None);
        sim2.set_seed(42);
        sim2.set_interceptor(Box::new(SeedProbe(Arc::clone(&after))));

        let b = before.load(Ordering::Relaxed);
        let a = after.load(Ordering::Relaxed);
        assert_eq!(a, b, "seed must not depend on call order");
        assert_ne!(a, 0, "interceptor must be seeded");
        assert_ne!(a, 42, "interceptor stream is derived, not the raw seed");
    }

    #[test]
    fn scheduled_outage_suppresses_and_restarts_node() {
        // The ECU answers reqSw; VMG polls every 20 ms. During the outage
        // window the poll goes unanswered; after restart (which re-runs
        // `on start`) service resumes.
        let mut sim = sim_with(&[
            (
                "VMG",
                "variables { message reqSw m; msTimer t; }
                 on start { setTimer(t, 20); }
                 on timer t { output(m); setTimer(t, 20); }",
            ),
            (
                "ECU",
                "variables { message rptSw r; int boots = 0; }
                 on start { boots = boots + 1; }
                 on message reqSw { output(r); }",
            ),
        ]);
        sim.schedule_outage("ECU", 30_000, 70_000).unwrap();
        sim.run_for(110_000).unwrap();
        // Polls at 20/40/60/80/100 ms; the 40 and 60 ms polls are lost.
        let answers = tx_names(&sim)
            .iter()
            .filter(|n| n.as_str() == "rptSw")
            .count();
        assert_eq!(answers, 3, "trace: {:?}", tx_names(&sim));
        assert_eq!(
            sim.node_global("ECU", "boots").unwrap(),
            Some(CaplValue::Int(2)),
            "restart must re-run on start"
        );
        let fault_marks = sim
            .trace()
            .iter()
            .filter(|e| e.event.fault_name() == Some("node_crash"))
            .count();
        assert_eq!(fault_marks, 2, "down + restarted markers");
        assert_eq!(
            sim.schedule_outage("GHOST", 0, 1),
            Err(SimError::UnknownNode("GHOST".into()))
        );
    }

    #[test]
    fn key_press_triggers_handler() {
        let mut sim = sim_with(&[(
            "VMG",
            "variables { message reqSw m; } on key 'u' { output(m); }",
        )]);
        sim.run_for(1).unwrap();
        sim.key_press("VMG", 'u').unwrap();
        sim.run_for(10_000).unwrap();
        assert_eq!(tx_names(&sim), vec!["reqSw"]);
    }

    #[test]
    fn senders_do_not_receive_own_frames() {
        let mut sim = sim_with(&[(
            "VMG",
            "variables { message reqSw m; int echo = 0; }
             on start { output(m); }
             on message reqSw { echo = 1; }",
        )]);
        sim.run_for(10_000).unwrap();
        assert_eq!(
            sim.node_global("VMG", "echo").unwrap(),
            Some(CaplValue::Int(0))
        );
    }

    #[test]
    fn duplicate_node_rejected() {
        let mut sim = Simulation::new(None);
        sim.add_node("A", capl::parse("").unwrap()).unwrap();
        assert_eq!(
            sim.add_node("A", capl::parse("").unwrap()),
            Err(SimError::DuplicateNode("A".into()))
        );
    }

    #[test]
    fn runtime_errors_are_attributed() {
        let mut sim = sim_with(&[("BAD", "on start { x = 1; }")]);
        let err = sim.run_for(1_000).unwrap_err();
        assert!(matches!(err, SimError::Runtime { node, .. } if node == "BAD"));
    }

    #[test]
    fn deterministic_replay() {
        let build = || {
            let mut sim = sim_with(&[
                (
                    "VMG",
                    "variables { message reqSw m; msTimer t; }
                  on start { setTimer(t, 5); }
                  on timer t { output(m); setTimer(t, 7); }",
                ),
                (
                    "ECU",
                    "variables { message rptSw r; } on message reqSw { output(r); }",
                ),
            ]);
            sim.run_for(100_000).unwrap();
            tx_names(&sim)
        };
        assert_eq!(build(), build());
    }
}

#[cfg(test)]
mod sysvar_tests {
    use super::*;

    #[test]
    fn get_and_put_value_share_state_across_nodes() {
        let mut sim = Simulation::new(Some(candb::parse("BU_: A B\nBO_ 100 ping: 8 A").unwrap()));
        sim.add_node(
            "A",
            capl::parse(
                "variables { message ping m; }
                 on start { putValue(\"mode\", 7); output(m); }",
            )
            .unwrap(),
        )
        .unwrap();
        sim.add_node(
            "B",
            capl::parse(
                "variables { int seen = 0; }
                 on message ping { seen = getValue(\"mode\"); }",
            )
            .unwrap(),
        )
        .unwrap();
        sim.run_for(10_000).unwrap();
        assert_eq!(sim.sysvar("mode"), Some(7));
        assert_eq!(
            sim.node_global("B", "seen").unwrap(),
            Some(crate::interp::CaplValue::Int(7))
        );
    }

    #[test]
    fn harness_can_seed_sysvars() {
        let mut sim = Simulation::new(None);
        sim.set_sysvar("speed", 88);
        sim.add_node(
            "A",
            capl::parse("variables { int v = 0; } on start { v = getValue(speed); }").unwrap(),
        )
        .unwrap();
        sim.run_for(1_000).unwrap();
        assert_eq!(
            sim.node_global("A", "v").unwrap(),
            Some(crate::interp::CaplValue::Int(88))
        );
    }
}
