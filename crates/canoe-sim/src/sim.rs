//! The discrete-event scheduler: nodes, timers and the arbitrated bus.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::fmt;

use candb::Database;
use capl::ast::{EventKind, MsgRef, Program};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::frame::Frame;
use crate::interp::{CaplValue, Effect, MsgObject, NodeState, RuntimeError};
use crate::trace::{TraceEntry, TraceEvent};

/// Errors from building or running a simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A CAPL runtime error, attributed to a node.
    Runtime {
        /// The node whose handler failed.
        node: String,
        /// The underlying error.
        error: RuntimeError,
    },
    /// A node name was used twice.
    DuplicateNode(String),
    /// An operation referenced an unknown node.
    UnknownNode(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Runtime { node, error } => write!(f, "node `{node}`: {error}"),
            SimError::DuplicateNode(n) => write!(f, "node `{n}` added twice"),
            SimError::UnknownNode(n) => write!(f, "unknown node `{n}`"),
        }
    }
}

impl std::error::Error for SimError {}

/// A man-in-the-middle hook: sees every frame that wins arbitration and
/// decides what the bus actually delivers.
///
/// Returning an empty vector drops the frame; returning different or extra
/// frames models modification, replay and forgery — the Dolev-Yao
/// capabilities used by the security analyses (§IV-E of the paper).
pub trait Interceptor {
    /// Decide what is delivered in place of `frame`.
    fn on_frame(&mut self, frame: &Frame, time_us: u64) -> Vec<Frame>;
}

/// The default interceptor: every frame is delivered unchanged.
#[derive(Debug, Clone, Default)]
pub struct PassThrough;

impl Interceptor for PassThrough {
    fn on_frame(&mut self, frame: &Frame, _time_us: u64) -> Vec<Frame> {
        vec![frame.clone()]
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Pending {
    TimerExpiry {
        node: usize,
        timer: String,
        generation: u64,
    },
    Delivery {
        sender: Option<usize>,
        frame: Frame,
    },
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Event {
    time: u64,
    seq: u64,
    pending: Pending,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A CANoe-style simulation: a set of CAPL nodes on one CAN bus.
pub struct Simulation {
    db: Option<Database>,
    nodes: Vec<NodeState>,
    time_us: u64,
    seq: u64,
    queue: BinaryHeap<Reverse<Event>>,
    trace: Vec<TraceEntry>,
    rng: SmallRng,
    bus_free_at: u64,
    bus_busy: bool,
    pending_tx: Vec<(Option<usize>, Frame)>,
    timer_generations: HashMap<(usize, String), u64>,
    sysvars: HashMap<String, i64>,
    interceptor: Box<dyn Interceptor>,
    started: bool,
}

impl fmt::Debug for Simulation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("nodes", &self.nodes.len())
            .field("time_us", &self.time_us)
            .field("trace_len", &self.trace.len())
            .finish()
    }
}

impl Simulation {
    /// Create a simulation, optionally attached to a network database.
    pub fn new(db: Option<Database>) -> Simulation {
        Simulation {
            db,
            nodes: Vec::new(),
            time_us: 0,
            seq: 0,
            queue: BinaryHeap::new(),
            trace: Vec::new(),
            rng: SmallRng::seed_from_u64(0x00CA_7B05),
            bus_free_at: 0,
            bus_busy: false,
            pending_tx: Vec::new(),
            timer_generations: HashMap::new(),
            sysvars: HashMap::new(),
            interceptor: Box::new(PassThrough),
            started: false,
        }
    }

    /// Reseed the deterministic RNG used by CAPL `random()`.
    pub fn set_seed(&mut self, seed: u64) {
        self.rng = SmallRng::seed_from_u64(seed);
    }

    /// Install a man-in-the-middle interceptor.
    pub fn set_interceptor(&mut self, interceptor: Box<dyn Interceptor>) {
        self.interceptor = interceptor;
    }

    /// Add a network node running `program`.
    ///
    /// # Errors
    ///
    /// [`SimError::DuplicateNode`] for repeated names, or a runtime error if
    /// the program's `message` variables cannot be resolved.
    pub fn add_node(&mut self, name: &str, program: Program) -> Result<(), SimError> {
        if self.nodes.iter().any(|n| n.name == name) {
            return Err(SimError::DuplicateNode(name.to_owned()));
        }
        let state =
            NodeState::new(name, program, self.db.as_ref()).map_err(|error| SimError::Runtime {
                node: name.to_owned(),
                error,
            })?;
        self.nodes.push(state);
        Ok(())
    }

    /// Current simulation time in microseconds.
    pub fn time_us(&self) -> u64 {
        self.time_us
    }

    /// The observable trace so far.
    pub fn trace(&self) -> &[TraceEntry] {
        &self.trace
    }

    /// Read a system/environment variable (shared via `getValue`/`putValue`).
    pub fn sysvar(&self, name: &str) -> Option<i64> {
        self.sysvars.get(name).copied()
    }

    /// Set a system/environment variable from outside the network (panel
    /// input, test harness, …).
    pub fn set_sysvar(&mut self, name: &str, value: i64) {
        self.sysvars.insert(name.to_owned(), value);
    }

    /// Read a node's global variable (for assertions and tests).
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownNode`] if no node has that name.
    pub fn node_global(&self, node: &str, var: &str) -> Result<Option<CaplValue>, SimError> {
        let n = self
            .nodes
            .iter()
            .find(|n| n.name == node)
            .ok_or_else(|| SimError::UnknownNode(node.to_owned()))?;
        Ok(n.global(var).cloned())
    }

    /// Press a key on a node's panel (`on key` procedures).
    ///
    /// # Errors
    ///
    /// Unknown node, or a runtime error in the handler.
    pub fn key_press(&mut self, node: &str, key: char) -> Result<(), SimError> {
        let idx = self
            .nodes
            .iter()
            .position(|n| n.name == node)
            .ok_or_else(|| SimError::UnknownNode(node.to_owned()))?;
        self.fire_node(idx, &EventKind::Key(key), None)
    }

    /// Inject a frame as if an (unmodelled) external device transmitted it.
    pub fn inject_frame(&mut self, frame: Frame) {
        self.pending_tx.push((None, frame));
        self.grant_bus();
    }

    /// Run until simulation time reaches `deadline_us`.
    ///
    /// # Errors
    ///
    /// The first CAPL runtime error raised by any handler.
    pub fn run_until(&mut self, deadline_us: u64) -> Result<(), SimError> {
        if !self.started {
            self.started = true;
            for idx in 0..self.nodes.len() {
                self.fire_node(idx, &EventKind::Start, None)?;
            }
        }
        while let Some(Reverse(ev)) = self.queue.peek().cloned() {
            if ev.time > deadline_us {
                break;
            }
            self.queue.pop();
            self.time_us = ev.time;
            match ev.pending {
                Pending::TimerExpiry {
                    node,
                    timer,
                    generation,
                } => {
                    let current = self
                        .timer_generations
                        .get(&(node, timer.clone()))
                        .copied()
                        .unwrap_or(0);
                    if current != generation {
                        continue; // cancelled or re-armed
                    }
                    self.trace.push(TraceEntry {
                        time_us: self.time_us,
                        event: TraceEvent::TimerFired {
                            node: self.nodes[node].name.clone(),
                            timer: timer.clone(),
                        },
                    });
                    self.fire_node(node, &EventKind::Timer(timer), None)?;
                }
                Pending::Delivery { sender, frame } => {
                    self.bus_busy = false;
                    self.deliver(sender, frame)?;
                    self.grant_bus();
                }
            }
        }
        self.time_us = deadline_us;
        Ok(())
    }

    /// Run for `duration_us` more microseconds.
    ///
    /// # Errors
    ///
    /// See [`Simulation::run_until`].
    pub fn run_for(&mut self, duration_us: u64) -> Result<(), SimError> {
        self.run_until(self.time_us + duration_us)
    }

    // ---- internals -----------------------------------------------------

    fn push_event(&mut self, time: u64, pending: Pending) {
        self.seq += 1;
        self.queue.push(Reverse(Event {
            time,
            seq: self.seq,
            pending,
        }));
    }

    /// Grant the bus to the highest-priority (lowest id) pending frame.
    fn grant_bus(&mut self) {
        if self.bus_busy || self.pending_tx.is_empty() {
            return;
        }
        let best = self
            .pending_tx
            .iter()
            .enumerate()
            .min_by_key(|(_, (_, f))| f.id)
            .map(|(i, _)| i)
            .expect("pending_tx nonempty");
        let (sender, frame) = self.pending_tx.remove(best);
        let start = self.time_us.max(self.bus_free_at);
        let delivery = start + frame.duration_us();
        self.bus_free_at = delivery;
        self.bus_busy = true;
        self.trace.push(TraceEntry {
            time_us: start,
            event: TraceEvent::Transmit {
                node: sender
                    .map(|i| self.nodes[i].name.clone())
                    .unwrap_or_else(|| "<external>".to_owned()),
                message: self.message_name(frame.id),
                id: frame.id,
                payload: frame.payload,
            },
        });
        self.push_event(delivery, Pending::Delivery { sender, frame });
    }

    fn message_name(&self, id: u32) -> String {
        self.db
            .as_ref()
            .and_then(|d| d.message_by_id(id))
            .map(|m| m.name.clone())
            .unwrap_or_else(|| format!("id_0x{id:x}"))
    }

    fn deliver(&mut self, sender: Option<usize>, frame: Frame) -> Result<(), SimError> {
        let delivered = self.interceptor.on_frame(&frame, self.time_us);
        if delivered.len() != 1 || delivered[0] != frame {
            self.trace.push(TraceEntry {
                time_us: self.time_us,
                event: TraceEvent::Intercepted {
                    action: if delivered.is_empty() {
                        "dropped".to_owned()
                    } else {
                        format!("replaced with {} frame(s)", delivered.len())
                    },
                    id: frame.id,
                },
            });
        }
        for f in delivered {
            let name = self
                .db
                .as_ref()
                .and_then(|d| d.message_by_id(f.id))
                .map(|m| m.name.clone());
            for idx in 0..self.nodes.len() {
                if Some(idx) == sender {
                    continue; // CAN nodes do not receive their own frames
                }
                let event = self.matching_event(idx, f.id, name.as_deref());
                let Some(event) = event else { continue };
                self.trace.push(TraceEntry {
                    time_us: self.time_us,
                    event: TraceEvent::Receive {
                        node: self.nodes[idx].name.clone(),
                        message: self.message_name(f.id),
                        id: f.id,
                        payload: f.payload,
                    },
                });
                let this = MsgObject {
                    id: f.id,
                    name: name.clone(),
                    dlc: f.dlc,
                    payload: f.payload,
                };
                self.fire_node(idx, &event, Some(this))?;
            }
        }
        Ok(())
    }

    /// Which `on message` event (if any) node `idx` has for this frame.
    fn matching_event(&self, idx: usize, id: u32, name: Option<&str>) -> Option<EventKind> {
        let program = &self.nodes[idx].program;
        if let Some(n) = name {
            let ev = EventKind::Message(MsgRef::Name(n.to_owned()));
            if program.handler(&ev).is_some() {
                return Some(ev);
            }
        }
        let ev = EventKind::Message(MsgRef::Id(id));
        if program.handler(&ev).is_some() {
            return Some(ev);
        }
        let any = EventKind::Message(MsgRef::Any);
        if program.handler(&any).is_some() {
            return Some(any);
        }
        None
    }

    fn fire_node(
        &mut self,
        idx: usize,
        event: &EventKind,
        this: Option<MsgObject>,
    ) -> Result<(), SimError> {
        let db = self.db.take();
        let result = self.nodes[idx].fire(
            event,
            this,
            db.as_ref(),
            &mut self.rng,
            self.time_us,
            &mut self.sysvars,
        );
        self.db = db;
        let effects = result.map_err(|error| SimError::Runtime {
            node: self.nodes[idx].name.clone(),
            error,
        })?;
        for effect in effects {
            match effect {
                Effect::Output(m) => {
                    let mut frame = Frame::new(m.id, m.dlc);
                    frame.payload = m.payload;
                    self.trace.push(TraceEntry {
                        time_us: self.time_us,
                        event: TraceEvent::Queued {
                            node: self.nodes[idx].name.clone(),
                            message: self.message_name(frame.id),
                            id: frame.id,
                            payload: frame.payload,
                        },
                    });
                    self.pending_tx.push((Some(idx), frame));
                }
                Effect::SetTimer { name, delay_us } => {
                    let generation = self
                        .timer_generations
                        .entry((idx, name.clone()))
                        .and_modify(|g| *g += 1)
                        .or_insert(1);
                    let generation = *generation;
                    self.push_event(
                        self.time_us + delay_us,
                        Pending::TimerExpiry {
                            node: idx,
                            timer: name,
                            generation,
                        },
                    );
                }
                Effect::CancelTimer(name) => {
                    self.timer_generations
                        .entry((idx, name))
                        .and_modify(|g| *g += 1)
                        .or_insert(1);
                }
                Effect::Log(text) => {
                    self.trace.push(TraceEntry {
                        time_us: self.time_us,
                        event: TraceEvent::Log {
                            node: self.nodes[idx].name.clone(),
                            text,
                        },
                    });
                }
            }
        }
        self.grant_bus();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        candb::parse(
            "BU_: VMG ECU\n\
             BO_ 100 reqSw: 8 VMG\n SG_ reqType : 0|4@1+ (1,0) [0|15] \"\" ECU\n\
             BO_ 101 rptSw: 8 ECU\n SG_ status : 0|8@1+ (1,0) [0|255] \"\" VMG\n\
             BO_ 50 urgent: 2 VMG\n SG_ code : 0|8@1+ (1,0) [0|255] \"\" ECU",
        )
        .unwrap()
    }

    fn sim_with(nodes: &[(&str, &str)]) -> Simulation {
        let mut sim = Simulation::new(Some(db()));
        for (name, src) in nodes {
            sim.add_node(name, capl::parse(src).unwrap()).unwrap();
        }
        sim
    }

    fn tx_names(sim: &Simulation) -> Vec<String> {
        sim.trace()
            .iter()
            .filter_map(|e| e.event.transmit_name().map(str::to_owned))
            .collect()
    }

    #[test]
    fn request_response_exchange() {
        let mut sim = sim_with(&[
            (
                "VMG",
                "variables { message reqSw m; } on start { output(m); }",
            ),
            (
                "ECU",
                "variables { message rptSw r; } on message reqSw { output(r); }",
            ),
        ]);
        sim.run_for(10_000).unwrap();
        assert_eq!(tx_names(&sim), vec!["reqSw", "rptSw"]);
        // Receive entries are recorded only where a handler consumed the
        // frame: the ECU consumes reqSw; nobody handles rptSw.
        let receives: Vec<&str> = sim
            .trace()
            .iter()
            .filter_map(|e| e.event.receive_name())
            .collect();
        assert_eq!(receives, vec!["reqSw"]);
    }

    #[test]
    fn arbitration_prefers_lower_id() {
        // Both messages queued in the same handler: the lower CAN id (urgent,
        // 0x32) must win the bus even though reqSw was output first.
        let mut sim = sim_with(&[(
            "VMG",
            "variables { message reqSw a; message urgent b; } on start { output(a); output(b); }",
        )]);
        sim.run_for(10_000).unwrap();
        assert_eq!(tx_names(&sim), vec!["urgent", "reqSw"]);
    }

    #[test]
    fn periodic_timer_fires_repeatedly() {
        let mut sim = sim_with(&[(
            "VMG",
            "variables { msTimer t; message reqSw m; }
             on start { setTimer(t, 10); }
             on timer t { output(m); setTimer(t, 10); }",
        )]);
        sim.run_for(35_000).unwrap(); // 35 ms → fires at 10, 20, 30
        assert_eq!(tx_names(&sim).len(), 3);
    }

    #[test]
    fn cancel_timer_prevents_firing() {
        let mut sim = sim_with(&[(
            "VMG",
            "variables { msTimer t; message reqSw m; }
             on start { setTimer(t, 10); cancelTimer(t); }
             on timer t { output(m); }",
        )]);
        sim.run_for(50_000).unwrap();
        assert!(tx_names(&sim).is_empty());
    }

    #[test]
    fn interceptor_can_drop_frames() {
        struct DropAll;
        impl Interceptor for DropAll {
            fn on_frame(&mut self, _f: &Frame, _t: u64) -> Vec<Frame> {
                Vec::new()
            }
        }
        let mut sim = sim_with(&[
            (
                "VMG",
                "variables { message reqSw m; } on start { output(m); }",
            ),
            (
                "ECU",
                "variables { message rptSw r; } on message reqSw { output(r); }",
            ),
        ]);
        sim.set_interceptor(Box::new(DropAll));
        sim.run_for(10_000).unwrap();
        // The request is transmitted but never delivered: no response.
        assert_eq!(tx_names(&sim), vec!["reqSw"]);
        assert!(sim
            .trace()
            .iter()
            .any(|e| matches!(e.event, TraceEvent::Intercepted { .. })));
    }

    #[test]
    fn interceptor_can_forge_frames() {
        struct Forger;
        impl Interceptor for Forger {
            fn on_frame(&mut self, f: &Frame, _t: u64) -> Vec<Frame> {
                let mut forged = f.clone();
                forged.payload[0] = 0xFF;
                vec![forged]
            }
        }
        let mut sim = sim_with(&[
            (
                "VMG",
                "variables { message reqSw m; } on start { m.reqType = 1; output(m); }",
            ),
            (
                "ECU",
                "variables { int seen = 0; } on message reqSw { seen = this.reqType; }",
            ),
        ]);
        sim.set_interceptor(Box::new(Forger));
        sim.run_for(10_000).unwrap();
        // reqType is the low nibble of the forged 0xFF.
        assert_eq!(
            sim.node_global("ECU", "seen").unwrap(),
            Some(CaplValue::Int(0x0F))
        );
    }

    #[test]
    fn injected_frames_reach_nodes() {
        let mut sim = sim_with(&[(
            "ECU",
            "variables { message rptSw r; } on message reqSw { output(r); }",
        )]);
        sim.run_for(1).unwrap();
        sim.inject_frame(Frame::new(100, 8));
        sim.run_for(10_000).unwrap();
        assert_eq!(tx_names(&sim), vec!["reqSw", "rptSw"]);
    }

    #[test]
    fn key_press_triggers_handler() {
        let mut sim = sim_with(&[(
            "VMG",
            "variables { message reqSw m; } on key 'u' { output(m); }",
        )]);
        sim.run_for(1).unwrap();
        sim.key_press("VMG", 'u').unwrap();
        sim.run_for(10_000).unwrap();
        assert_eq!(tx_names(&sim), vec!["reqSw"]);
    }

    #[test]
    fn senders_do_not_receive_own_frames() {
        let mut sim = sim_with(&[(
            "VMG",
            "variables { message reqSw m; int echo = 0; }
             on start { output(m); }
             on message reqSw { echo = 1; }",
        )]);
        sim.run_for(10_000).unwrap();
        assert_eq!(
            sim.node_global("VMG", "echo").unwrap(),
            Some(CaplValue::Int(0))
        );
    }

    #[test]
    fn duplicate_node_rejected() {
        let mut sim = Simulation::new(None);
        sim.add_node("A", capl::parse("").unwrap()).unwrap();
        assert_eq!(
            sim.add_node("A", capl::parse("").unwrap()),
            Err(SimError::DuplicateNode("A".into()))
        );
    }

    #[test]
    fn runtime_errors_are_attributed() {
        let mut sim = sim_with(&[("BAD", "on start { x = 1; }")]);
        let err = sim.run_for(1_000).unwrap_err();
        assert!(matches!(err, SimError::Runtime { node, .. } if node == "BAD"));
    }

    #[test]
    fn deterministic_replay() {
        let build = || {
            let mut sim = sim_with(&[
                (
                    "VMG",
                    "variables { message reqSw m; msTimer t; }
                  on start { setTimer(t, 5); }
                  on timer t { output(m); setTimer(t, 7); }",
                ),
                (
                    "ECU",
                    "variables { message rptSw r; } on message reqSw { output(r); }",
                ),
            ]);
            sim.run_for(100_000).unwrap();
            tx_names(&sim)
        };
        assert_eq!(build(), build());
    }
}

#[cfg(test)]
mod sysvar_tests {
    use super::*;

    #[test]
    fn get_and_put_value_share_state_across_nodes() {
        let mut sim = Simulation::new(Some(candb::parse("BU_: A B\nBO_ 100 ping: 8 A").unwrap()));
        sim.add_node(
            "A",
            capl::parse(
                "variables { message ping m; }
                 on start { putValue(\"mode\", 7); output(m); }",
            )
            .unwrap(),
        )
        .unwrap();
        sim.add_node(
            "B",
            capl::parse(
                "variables { int seen = 0; }
                 on message ping { seen = getValue(\"mode\"); }",
            )
            .unwrap(),
        )
        .unwrap();
        sim.run_for(10_000).unwrap();
        assert_eq!(sim.sysvar("mode"), Some(7));
        assert_eq!(
            sim.node_global("B", "seen").unwrap(),
            Some(crate::interp::CaplValue::Int(7))
        );
    }

    #[test]
    fn harness_can_seed_sysvars() {
        let mut sim = Simulation::new(None);
        sim.set_sysvar("speed", 88);
        sim.add_node(
            "A",
            capl::parse("variables { int v = 0; } on start { v = getValue(speed); }").unwrap(),
        )
        .unwrap();
        sim.run_for(1_000).unwrap();
        assert_eq!(
            sim.node_global("A", "v").unwrap(),
            Some(crate::interp::CaplValue::Int(88))
        );
    }
}
