//! CAN data frames.

use serde::{Deserialize, Serialize};

/// A classic CAN data frame: 11-bit identifier, up to 8 payload bytes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Frame {
    /// CAN identifier (lower values win arbitration).
    pub id: u32,
    /// Data length code (0–8).
    pub dlc: usize,
    /// Payload bytes; only the first `dlc` are meaningful.
    pub payload: [u8; 8],
}

impl Frame {
    /// A frame with the given id and payload size, zero-filled.
    pub fn new(id: u32, dlc: usize) -> Frame {
        Frame {
            id,
            dlc: dlc.min(8),
            payload: [0; 8],
        }
    }

    /// Nominal transmission time in microseconds on a 500 kbit/s bus.
    ///
    /// A classic CAN data frame carries roughly `44 + 8·dlc` bits plus stuff
    /// bits; we use the worst-case stuffing approximation FDR-style models
    /// don't care about but the simulator's arbitration does.
    pub fn duration_us(&self) -> u64 {
        let bits = 44 + 8 * self.dlc as u64;
        let stuffed = bits + bits / 5;
        // 500 kbit/s → 2 µs per bit.
        stuffed * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dlc_is_clamped() {
        assert_eq!(Frame::new(1, 12).dlc, 8);
    }

    #[test]
    fn duration_scales_with_dlc() {
        let short = Frame::new(1, 0).duration_us();
        let long = Frame::new(1, 8).duration_us();
        assert!(long > short);
        // 8-byte frame ≈ 130 bits ≈ 260 µs at 500 kbit/s.
        assert!((200..400).contains(&long), "{long}");
    }
}
