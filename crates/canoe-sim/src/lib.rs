//! `canoe-sim` — a discrete-event CAN bus simulator with a CAPL interpreter.
//!
//! The paper develops and validates its ECU applications inside Vector's
//! proprietary CANoe environment (§IV-B). This crate is the open substitute:
//! it executes the *same CAPL sources* the translator consumes, against a
//! simulated CAN bus, producing an observable message trace. That closes the
//! validation loop — the trace of the simulated implementation must be a
//! trace of the extracted CSP model (see the `translator` crate's
//! integration tests).
//!
//! * [`Frame`] — a classic CAN data frame (11-bit id, up to 8 data bytes);
//! * [`Simulation`] — the discrete-event scheduler: nodes, timers,
//!   priority-arbitrated transmission, broadcast delivery;
//! * CAPL interpretation — `on start` / `on message` / `on timer` /
//!   `on key` procedures, variables, signal access through an attached
//!   [`candb::Database`], and the CAPL built-ins (`output`, `setTimer`,
//!   `cancelTimer`, `write`, …);
//! * [`Interceptor`] — a man-in-the-middle hook used by the security
//!   crates to drop, modify, replay or forge frames (the Dolev-Yao
//!   capabilities of §IV-E).
//!
//! # Example
//!
//! ```
//! use canoe_sim::Simulation;
//!
//! let dbc = r#"
//! BU_: VMG ECU
//! BO_ 100 reqSw: 8 VMG
//!  SG_ reqType : 0|4@1+ (1,0) [0|15] "" ECU
//! BO_ 101 rptSw: 8 ECU
//!  SG_ status : 0|8@1+ (1,0) [0|255] "" VMG
//! "#;
//! let vmg = "variables { message reqSw m; } on start { output(m); }";
//! let ecu = "variables { message rptSw r; } on message reqSw { output(r); }";
//!
//! let mut sim = Simulation::new(Some(candb::parse(dbc)?));
//! sim.add_node("VMG", capl::parse(vmg)?)?;
//! sim.add_node("ECU", capl::parse(ecu)?)?;
//! sim.run_for(10_000)?; // 10 ms
//!
//! let sends: Vec<&str> = sim.trace().iter()
//!     .filter_map(|e| e.event.transmit_name())
//!     .collect();
//! assert_eq!(sends, ["reqSw", "rptSw"]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod frame;
mod interp;
mod sim;
mod trace;

pub use frame::Frame;
pub use interp::{CaplValue, RuntimeError};
pub use sim::{Delivery, FaultRecord, Interceptor, PassThrough, SimError, Simulation};
pub use trace::{TraceEntry, TraceEvent};
