//! The end-to-end workflow of the paper's Fig. 1: CAPL source (plus network
//! database) → model extraction → CSPm → elaborated processes ready for the
//! refinement checker.

use std::fmt;
use std::time::Instant;

use capl::Diagnostic;
use cspm::LoadedScript;
use lint::LintReport;

use crate::translate::{TranslateConfig, TranslationReport, Translator};

/// Errors from any pipeline stage.
#[derive(Debug)]
pub enum PipelineError {
    /// CAPL lexing/parsing failed.
    Capl(capl::CaplError),
    /// The network database failed to parse.
    Dbc(candb::DbcError),
    /// Translation failed.
    Translate(crate::translate::TranslateError),
    /// The generated CSPm failed to parse or elaborate — a translator bug.
    Cspm(cspm::CspmError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Capl(e) => write!(f, "CAPL stage: {e}"),
            PipelineError::Dbc(e) => write!(f, "database stage: {e}"),
            PipelineError::Translate(e) => write!(f, "translation stage: {e}"),
            PipelineError::Cspm(e) => write!(f, "CSPm stage: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// Wall-clock cost of each pipeline stage, in microseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimings {
    /// CAPL (and database) parsing.
    pub parse_us: u64,
    /// Static analysis (CAPL lints, database cross-checks, CSPm lints).
    pub lint_us: u64,
    /// Model extraction.
    pub translate_us: u64,
    /// CSPm parsing and elaboration.
    pub elaborate_us: u64,
}

/// Everything the pipeline produced.
#[derive(Debug)]
pub struct PipelineOutput {
    /// The generated CSPm script.
    pub script: String,
    /// Entry process name.
    pub entry: String,
    /// Translation report (abstractions, inventory).
    pub report: TranslationReport,
    /// Semantic diagnostics from the CAPL frontend.
    pub diagnostics: Vec<Diagnostic>,
    /// Static-analysis findings for every stage: the CAPL lints (a superset
    /// of [`PipelineOutput::diagnostics`], plus dataflow and database
    /// cross-checks), database hygiene, and structural lints over the
    /// *generated* CSPm model. Lints never abort the pipeline — gating is the
    /// caller's policy decision.
    pub lints: LintReport,
    /// The elaborated script, ready for checking.
    pub loaded: LoadedScript,
    /// Per-stage timings.
    pub timings: StageTimings,
}

/// The Fig. 1 pipeline: configure once, run over source files.
#[derive(Debug, Clone)]
pub struct Pipeline {
    config: TranslateConfig,
}

impl Pipeline {
    /// A pipeline with the given translation configuration.
    pub fn new(config: TranslateConfig) -> Pipeline {
        Pipeline { config }
    }

    /// Run the full pipeline over CAPL source and an optional `.dbc` file.
    ///
    /// # Errors
    ///
    /// The first failing stage, as a [`PipelineError`].
    pub fn run(
        &self,
        capl_source: &str,
        dbc_source: Option<&str>,
    ) -> Result<PipelineOutput, PipelineError> {
        let t0 = Instant::now();
        let program = capl::parse(capl_source).map_err(PipelineError::Capl)?;
        let db = dbc_source
            .map(candb::parse)
            .transpose()
            .map_err(PipelineError::Dbc)?;
        let diagnostics = capl::analyze(&program).diagnostics().to_vec();
        let parse_us = t0.elapsed().as_micros() as u64;

        let tl = Instant::now();
        let mut lints = LintReport::for_capl(lint::lint_program(&program));
        if let Some(db) = &db {
            lints.capl.extend(lint::cross_check(&program, db));
            lints.dbc = lint::lint_database(db);
        }
        let front_lint_us = tl.elapsed().as_micros() as u64;

        let t1 = Instant::now();
        let mut translator = Translator::new(self.config.clone());
        if let Some(db) = db {
            translator = translator.with_database(db);
        }
        let output = translator
            .translate(&program)
            .map_err(PipelineError::Translate)?;
        let translate_us = t1.elapsed().as_micros() as u64;

        let t2 = Instant::now();
        let script = cspm::Script::parse(&output.script).map_err(PipelineError::Cspm)?;
        let cspm_parse_us = t2.elapsed().as_micros() as u64;
        let tl2 = Instant::now();
        lints.csp = lint::lint_module(script.module());
        let lint_us = front_lint_us + tl2.elapsed().as_micros() as u64;
        let t3 = Instant::now();
        let loaded = script.load().map_err(PipelineError::Cspm)?;
        let elaborate_us = cspm_parse_us + t3.elapsed().as_micros() as u64;

        Ok(PipelineOutput {
            script: output.script,
            entry: output.entry,
            report: output.report,
            diagnostics,
            lints,
            loaded,
            timings: StageTimings {
                parse_us,
                lint_us,
                translate_us,
                elaborate_us,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ECU_SRC: &str = "
        variables { message reqSw msgReq; message rptSw msgRpt; }
        on message reqSw { output(msgRpt); }
    ";

    const DBC_SRC: &str = "
BU_: VMG ECU
BO_ 100 reqSw: 8 VMG
 SG_ reqType : 0|4@1+ (1,0) [0|15] \"\" ECU
BO_ 101 rptSw: 8 ECU
 SG_ status : 0|8@1+ (1,0) [0|255] \"\" VMG
";

    #[test]
    fn full_pipeline_produces_checkable_model() {
        let pipeline = Pipeline::new(TranslateConfig::ecu("ECU"));
        let out = pipeline.run(ECU_SRC, Some(DBC_SRC)).unwrap();
        assert!(out.loaded.process("ECU").is_some());
        assert!(out
            .diagnostics
            .iter()
            .all(|d| d.severity != capl::Severity::Error));
    }

    #[test]
    fn pipeline_reports_capl_errors() {
        let pipeline = Pipeline::new(TranslateConfig::ecu("ECU"));
        let err = pipeline.run("on frobnicate { }", None).unwrap_err();
        assert!(matches!(err, PipelineError::Capl(_)));
    }

    #[test]
    fn pipeline_reports_dbc_errors() {
        let pipeline = Pipeline::new(TranslateConfig::ecu("ECU"));
        let err = pipeline
            .run(ECU_SRC, Some(" SG_ broken : nonsense"))
            .unwrap_err();
        assert!(matches!(err, PipelineError::Dbc(_)));
    }

    #[test]
    fn pipeline_collects_lints() {
        let pipeline = Pipeline::new(TranslateConfig::ecu("ECU"));
        let src = "variables { message reqSw msgReq; message rptSw msgRpt; }
                   on message reqSw { int x; x = 5; output(msgRpt); }";
        let out = pipeline.run(src, Some(DBC_SRC)).unwrap();
        assert!(
            out.lints
                .capl
                .iter()
                .any(|d| d.code == lint::codes::DEAD_STORE),
            "{:?}",
            out.lints
        );
        // The clean fixture produces no error-severity findings anywhere.
        let out = pipeline.run(ECU_SRC, Some(DBC_SRC)).unwrap();
        assert_eq!(out.lints.error_count(), 0, "{:?}", out.lints);
    }

    #[test]
    fn timings_are_recorded() {
        let pipeline = Pipeline::new(TranslateConfig::ecu("ECU"));
        let out = pipeline.run(ECU_SRC, None).unwrap();
        // Stages ran; timings are plausible (non-pathological).
        assert!(out.timings.elaborate_us < 10_000_000);
    }
}
