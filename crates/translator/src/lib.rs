//! `translator` — the paper's contribution: a model extractor that
//! programmatically transforms ECU application code (CAPL) into a formal,
//! machine-readable CSP model (CSPm) for refinement checking.
//!
//! The architecture mirrors §IV-C/§VI of the paper: a CAPL grammar
//! (the [`capl`] crate) produces an AST; translation rules map AST nodes to
//! CSPm fragments; output text is assembled through templates (the
//! [`sttpl`] crate) so the target-language shape stays separate from the
//! translation logic; message declarations become CSPm channel and datatype
//! declarations — including from an attached CAN database, the second parser
//! the paper lists as future work (§VIII-A).
//!
//! Translation rules, beyond the paper's demonstrated `on message` →
//! prefix / `output()` → send mapping:
//!
//! * **State-variable finitisation** — integer globals become process
//!   parameters over a bounded domain `{0..MAXV}` with saturating
//!   arithmetic, so `if`/`switch` over ECU state translates to CSPm
//!   conditionals;
//! * **Timers via `tock`** — `on timer` procedures become `tock`-guarded
//!   branches with an armed/disarmed parameter per timer (§VII-B's
//!   recommended discrete-time treatment);
//! * **Sound abstraction of the untranslatable** — conditions on signal
//!   payloads or other unsupported expressions become internal choice
//!   (`|~|`), assignments from them havoc the target variable; every such
//!   abstraction is recorded in the [`TranslationReport`].
//!
//! The [`Pipeline`] runs the whole Fig. 1 loop: parse → translate →
//! re-parse the generated CSPm ([`cspm`]) → hand elaborated processes to a
//! checker.
//!
//! # Example
//!
//! ```
//! use translator::{Translator, TranslateConfig};
//!
//! let program = capl::parse(
//!     "variables { message reqSw msgReq; message rptSw msgRpt; }
//!      on message reqSw { output(msgRpt); }",
//! )?;
//! let output = Translator::new(TranslateConfig::ecu("ECU")).translate(&program)?;
//! assert!(output.script.contains("ECU = rec.reqSw -> send.rptSw -> ECU"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pipeline;
mod system;
mod translate;

pub use pipeline::{Pipeline, PipelineError, PipelineOutput};
pub use system::{NodeSpec, SystemBuilder};
pub use translate::{
    Abstraction, AbstractionKind, TranslateConfig, TranslateError, TranslationOutput,
    TranslationReport, Translator,
};
