//! The translation rules: CAPL AST → CSPm text.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use candb::Database;
use capl::ast::{BinOp, Block, EventKind, Expr, MsgRef, Program, Stmt, Type, UnOp};
use sttpl::{Template, Value as TplValue};

/// How a node's events map onto the shared bus channels.
///
/// The paper names channels from the target ECU's point of view: `rec`
/// carries messages *towards* the ECU and `send` carries its responses
/// (§V-B). The gateway (VMG) therefore uses the mirrored orientation so that
/// composed processes synchronise on the same events.
#[derive(Debug, Clone)]
pub struct TranslateConfig {
    /// Name of the generated CSPm process.
    pub process_name: String,
    /// Channel used for this node's `output()` statements.
    pub output_channel: String,
    /// Channel whose events trigger this node's `on message` procedures.
    pub input_channel: String,
    /// Name of the generated message datatype.
    pub datatype_name: String,
    /// Upper bound of the finitised integer state domain `{0..int_bound}`.
    pub int_bound: i64,
    /// Model `on timer` procedures with `tock`-guarded branches.
    pub model_timers: bool,
    /// When a database is attached, declare every database message in the
    /// datatype (not only the referenced ones).
    pub include_db_messages: bool,
    /// Message signals to model as event payloads instead of abstracting
    /// them: `(message, signal)` pairs, at most one signal per message. The
    /// signal's domain is the finitised `StateT = {0..int_bound}`.
    ///
    /// With `("reqSw", "reqType")` configured, `on message reqSw` becomes
    /// `rec.reqSw?v_reqType -> …`, reads of `this.reqType` translate to the
    /// bound variable, and `output()` of a message variable whose `reqType`
    /// field was assigned carries the assigned value.
    pub signal_fields: Vec<(String, String)>,
}

impl TranslateConfig {
    /// ECU orientation: receives on `rec`, responds on `send`.
    pub fn ecu(process_name: &str) -> TranslateConfig {
        TranslateConfig {
            process_name: process_name.to_owned(),
            output_channel: "send".to_owned(),
            input_channel: "rec".to_owned(),
            datatype_name: "MsgT".to_owned(),
            int_bound: 3,
            model_timers: true,
            include_db_messages: false,
            signal_fields: Vec::new(),
        }
    }

    /// Gateway (VMG) orientation: transmits on `rec`, listens on `send`, so
    /// its events coincide with the ECU's when composed in parallel.
    pub fn gateway(process_name: &str) -> TranslateConfig {
        TranslateConfig {
            output_channel: "rec".to_owned(),
            input_channel: "send".to_owned(),
            ..TranslateConfig::ecu(process_name)
        }
    }
}

/// Errors that abort translation entirely (most constructs degrade to
/// reported abstractions instead).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranslateError {
    /// A construct with no sound abstraction (e.g. `output()` of something
    /// that is not a message).
    Unsupported(String),
    /// Internal template failure.
    Template(String),
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::Unsupported(m) => write!(f, "unsupported CAPL construct: {m}"),
            TranslateError::Template(m) => write!(f, "template error: {m}"),
        }
    }
}

impl std::error::Error for TranslateError {}

/// The category of a translation abstraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbstractionKind {
    /// A condition the model cannot evaluate became internal choice.
    NondeterministicCondition,
    /// An assignment from an untranslatable expression havocs the variable.
    HavocAssignment,
    /// Signal/payload detail below message granularity was dropped.
    SignalPayload,
    /// A loop without constant bounds was skipped.
    UnboundedLoop,
    /// A builtin with no behavioural content (`write`, …) was dropped.
    IgnoredBuiltin,
    /// `return`/`break`/`continue` handled approximately.
    ControlFlow,
}

/// One abstraction applied during translation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Abstraction {
    /// The category.
    pub kind: AbstractionKind,
    /// Human-readable description of what was abstracted.
    pub detail: String,
}

/// What the translator did: the abstractions applied and the model's
/// structural inventory.
#[derive(Debug, Clone, Default)]
pub struct TranslationReport {
    /// Abstractions, in application order.
    pub abstractions: Vec<Abstraction>,
    /// Integer state variables promoted to process parameters.
    pub state_vars: Vec<String>,
    /// Timers modelled as `tock`-guarded branches.
    pub timers: Vec<String>,
    /// Messages declared in the generated datatype.
    pub messages: Vec<String>,
}

/// A completed translation.
#[derive(Debug, Clone)]
pub struct TranslationOutput {
    /// The generated CSPm script.
    pub script: String,
    /// The entry process name (use this in assertions).
    pub entry: String,
    /// What was abstracted and what was produced.
    pub report: TranslationReport,
}

/// The raw pieces of one node's translation, before rendering. Used by
/// [`crate::SystemBuilder`] to merge several nodes into one script.
#[derive(Debug, Clone)]
pub(crate) struct TranslationParts {
    pub defs: Vec<String>,
    pub entry: String,
    pub messages: BTreeSet<String>,
    pub channels: BTreeSet<String>,
    pub bare_channels: Vec<String>,
    pub has_state: bool,
    pub report: TranslationReport,
    pub alphabet: NodeAlphabet,
}

/// The events one node's process can perform, as CSPm set syntax pieces:
/// channel-production patterns (`rec.reqSw`, or a bare channel name for a
/// wildcard receive) and bare events (`tock`, `key_u`).
#[derive(Debug, Clone, Default)]
pub(crate) struct NodeAlphabet {
    pub patterns: BTreeSet<String>,
    pub bare: BTreeSet<String>,
}

impl NodeAlphabet {
    /// Render as a CSPm set expression.
    pub(crate) fn to_cspm(&self) -> String {
        let prods = if self.patterns.is_empty() {
            None
        } else {
            Some(format!(
                "{{| {} |}}",
                self.patterns.iter().cloned().collect::<Vec<_>>().join(", ")
            ))
        };
        let bare = if self.bare.is_empty() {
            None
        } else {
            Some(format!(
                "{{{}}}",
                self.bare.iter().cloned().collect::<Vec<_>>().join(", ")
            ))
        };
        match (prods, bare) {
            (Some(p), Some(b)) => format!("union({p}, {b})"),
            (Some(p), None) => p,
            (None, Some(b)) => b,
            (None, None) => "{}".to_owned(),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Sym {
    Expr(String),
    Havoc,
}

type Env = BTreeMap<String, Sym>;

type TrResult = Result<String, TranslateError>;
type Cont<'c> = &'c dyn Fn(&mut Translator, Env) -> TrResult;

/// The model extractor. Configure, optionally attach a database, translate.
#[derive(Debug)]
pub struct Translator {
    config: TranslateConfig,
    db: Option<Database>,
    report: TranslationReport,
    // Derived per-translation state:
    msg_vars: BTreeMap<String, String>,
    messages: BTreeSet<String>,
    out_msgs: BTreeSet<String>,
    in_msgs: BTreeSet<String>,
    wildcard_input: bool,
    params: Vec<String>,
    init_values: BTreeMap<String, String>,
    payload_of: BTreeMap<String, String>,
    current_input_payload: Option<(String, String)>,
    fresh_counter: u32,
}

const MAX_UNROLL: i64 = 32;

impl Translator {
    /// A translator with the given configuration.
    pub fn new(config: TranslateConfig) -> Translator {
        Translator {
            config,
            db: None,
            report: TranslationReport::default(),
            msg_vars: BTreeMap::new(),
            messages: BTreeSet::new(),
            out_msgs: BTreeSet::new(),
            in_msgs: BTreeSet::new(),
            wildcard_input: false,
            params: Vec::new(),
            init_values: BTreeMap::new(),
            payload_of: BTreeMap::new(),
            current_input_payload: None,
            fresh_counter: 0,
        }
    }

    /// Attach a CAN database: resolves numeric message ids and (optionally)
    /// declares all database messages in the generated datatype.
    pub fn with_database(mut self, db: Database) -> Translator {
        self.db = Some(db);
        self
    }

    /// Translate a CAPL program into a CSPm script.
    ///
    /// # Errors
    ///
    /// [`TranslateError::Unsupported`] only for constructs with no sound
    /// abstraction; everything else degrades and is recorded in the report.
    pub fn translate(self, program: &Program) -> Result<TranslationOutput, TranslateError> {
        let config = self.config.clone();
        let parts = self.translate_parts(program)?;
        let script = render_script(&config, &parts)?;
        Ok(TranslationOutput {
            script,
            entry: parts.entry,
            report: parts.report,
        })
    }

    /// Translate to raw parts without rendering the script header.
    pub(crate) fn translate_parts(
        mut self,
        program: &Program,
    ) -> Result<TranslationParts, TranslateError> {
        self.collect(program);

        // Branches of the main recursive process.
        let mut branches: Vec<String> = Vec::new();
        for handler in &program.handlers {
            match &handler.event {
                EventKind::Message(selector) => {
                    let env = self.param_env();
                    self.current_input_payload = match selector {
                        MsgRef::Any => None,
                        other => {
                            let name = self.selector_name(other)?;
                            self.payload_of
                                .get(&name)
                                .map(|sig| (name.clone(), sig.clone()))
                        }
                    };
                    let body = self.tr_stmts(program, &handler.body.stmts, env, &|s, e| {
                        Ok(s.recursion_call(&e))
                    })?;
                    self.current_input_payload = None;
                    let branch = match selector {
                        MsgRef::Any => {
                            format!("{}?m_any -> {body}", self.config.input_channel)
                        }
                        other => {
                            let name = self.selector_name(other)?;
                            match self.payload_of.get(&name) {
                                Some(signal) => format!(
                                    "{}.{name}?v_{signal} -> {body}",
                                    self.config.input_channel
                                ),
                                None => {
                                    format!("{}.{name} -> {body}", self.config.input_channel)
                                }
                            }
                        }
                    };
                    branches.push(branch);
                }
                EventKind::Timer(t) if self.config.model_timers => {
                    let mut env = self.param_env();
                    // Firing consumes the timer unless the body re-arms it.
                    env.insert(armed_name(t), Sym::Expr("0".to_owned()));
                    let body = self.tr_stmts(program, &handler.body.stmts, env, &|s, e| {
                        Ok(s.recursion_call(&e))
                    })?;
                    branches.push(format!("{} == 1 & tock -> {body}", armed_name(t)));
                }
                EventKind::Timer(_) => {
                    self.note(
                        AbstractionKind::IgnoredBuiltin,
                        "timer handler dropped (timer modelling disabled)",
                    );
                }
                EventKind::Key(c) => {
                    let env = self.param_env();
                    let body = self.tr_stmts(program, &handler.body.stmts, env, &|s, e| {
                        Ok(s.recursion_call(&e))
                    })?;
                    branches.push(format!("{} -> {body}", key_event(*c)));
                }
                EventKind::Start | EventKind::PreStart | EventKind::StopMeasurement => {}
            }
        }

        let name = self.config.process_name.clone();
        let process_header = if self.params.is_empty() {
            name.clone()
        } else {
            format!("{name}({})", self.params.join(", "))
        };
        let process_body = match branches.len() {
            0 => "STOP".to_owned(),
            1 => branches[0].clone(),
            _ => branches.join("\n  [] "),
        };
        let mut defs = vec![format!("{process_header} = {process_body}")];

        // Entry point: `on start` runs once, then the recursive process.
        let entry = if let Some(start) = program.handler(&EventKind::Start) {
            let env = self.initial_env();
            let body = self.tr_stmts(program, &start.body.stmts, env, &|s, e| {
                Ok(s.recursion_call(&e))
            })?;
            let entry = format!("{name}_INIT");
            defs.push(format!("{entry} = {body}"));
            entry
        } else if self.params.is_empty() {
            name.clone()
        } else {
            let env = self.initial_env();
            let entry = format!("{name}_INIT");
            defs.push(format!("{entry} = {}", self.recursion_call(&env)));
            entry
        };

        self.report.messages = self.messages.iter().cloned().collect();
        let mut bare_channels = Vec::new();
        if self.config.model_timers
            && program
                .handlers
                .iter()
                .any(|h| matches!(h.event, EventKind::Timer(_)))
        {
            bare_channels.push("tock".to_owned());
        }
        for h in &program.handlers {
            if let EventKind::Key(c) = h.event {
                bare_channels.push(key_event(c));
            }
        }
        let has_payload = !self.payload_of.is_empty();
        let mut alphabet = NodeAlphabet::default();
        for m in &self.out_msgs {
            alphabet
                .patterns
                .insert(format!("{}.{m}", self.config.output_channel));
        }
        if self.wildcard_input {
            alphabet.patterns.insert(self.config.input_channel.clone());
        } else {
            for m in &self.in_msgs {
                alphabet
                    .patterns
                    .insert(format!("{}.{m}", self.config.input_channel));
            }
        }
        for b in &bare_channels {
            alphabet.bare.insert(b.clone());
        }
        let rendered_messages: BTreeSet<String> = self
            .messages
            .iter()
            .map(|m| match self.payload_of.get(m) {
                Some(_) => format!("{m}.StateT"),
                None => m.clone(),
            })
            .collect();
        Ok(TranslationParts {
            defs,
            entry,
            messages: rendered_messages,
            channels: [
                self.config.output_channel.clone(),
                self.config.input_channel.clone(),
            ]
            .into_iter()
            .collect(),
            bare_channels,
            has_state: !self.params.is_empty() || has_payload,
            report: self.report,
            alphabet,
        })
    }

    // ---- inventory -------------------------------------------------------

    fn collect(&mut self, program: &Program) {
        for (message, signal) in self.config.signal_fields.clone() {
            if self
                .payload_of
                .insert(message.clone(), signal.clone())
                .is_some()
            {
                self.note(
                    AbstractionKind::SignalPayload,
                    format!(
                        "multiple payload signals configured for `{message}`; keeping `{signal}`"
                    ),
                );
            }
        }
        // Message variables and the message set.
        for v in &program.variables {
            match &v.ty {
                Type::Message(r) => {
                    if let Ok(name) = self.msg_name(r) {
                        self.msg_vars.insert(v.name.clone(), name.clone());
                        self.messages.insert(name);
                    }
                }
                Type::MsTimer | Type::Timer => {
                    if self.config.model_timers {
                        self.report.timers.push(v.name.clone());
                    }
                }
                Type::Int | Type::Long | Type::Byte | Type::Word | Type::Dword | Type::Char => {
                    if v.array.is_none() {
                        self.report.state_vars.push(v.name.clone());
                        let init = match &v.init {
                            Some(Expr::Int(n)) => n.to_string(),
                            Some(Expr::Char(c)) => (*c as i64).to_string(),
                            _ => "0".to_owned(),
                        };
                        self.init_values.insert(v.name.clone(), init);
                    } else {
                        self.note(
                            AbstractionKind::SignalPayload,
                            format!("array `{}` not modelled", v.name),
                        );
                    }
                }
                Type::Float => {
                    self.note(
                        AbstractionKind::SignalPayload,
                        format!("float `{}` not modelled", v.name),
                    );
                }
                Type::Void => {}
            }
        }
        for h in &program.handlers {
            if let EventKind::Message(sel) = &h.event {
                if matches!(sel, MsgRef::Any) {
                    self.wildcard_input = true;
                } else if let Ok(name) = self.msg_name_of_selector(sel) {
                    self.messages.insert(name.clone());
                    self.in_msgs.insert(name);
                }
            }
        }
        let mut outputs: Vec<String> = Vec::new();
        for h in &program.handlers {
            collect_outputs(&h.body, &mut |arg| {
                if let Some(name) = self.output_msg_name(arg) {
                    outputs.push(name);
                }
            });
        }
        for f in &program.functions {
            collect_outputs(&f.body, &mut |arg| {
                if let Some(name) = self.output_msg_name(arg) {
                    outputs.push(name);
                }
            });
        }
        for name in outputs {
            self.messages.insert(name.clone());
            self.out_msgs.insert(name);
        }
        if self.config.include_db_messages {
            if let Some(db) = &self.db {
                for m in &db.messages {
                    self.messages.insert(m.name.clone());
                }
            }
        }

        // Parameters: state variables then timer armed-flags.
        self.params = self.report.state_vars.clone();
        for t in &self.report.timers {
            self.params.push(armed_name(t));
            self.init_values.insert(armed_name(t), "0".to_owned());
        }
    }

    fn note(&mut self, kind: AbstractionKind, detail: impl Into<String>) {
        self.report.abstractions.push(Abstraction {
            kind,
            detail: detail.into(),
        });
    }

    fn msg_name(&self, r: &MsgRef) -> Result<String, TranslateError> {
        match r {
            MsgRef::Name(n) => Ok(n.clone()),
            MsgRef::Id(id) => Ok(self
                .db
                .as_ref()
                .and_then(|d| d.message_by_id(*id))
                .map(|m| m.name.clone())
                .unwrap_or_else(|| format!("msg_0x{id:x}"))),
            MsgRef::Any => Err(TranslateError::Unsupported(
                "`message *` variable declaration".into(),
            )),
        }
    }

    fn msg_name_of_selector(&self, sel: &MsgRef) -> Result<String, TranslateError> {
        self.msg_name(sel)
    }

    fn selector_name(&self, sel: &MsgRef) -> Result<String, TranslateError> {
        self.msg_name(sel)
    }

    /// The message name that `output(arg)` transmits, if resolvable.
    fn output_msg_name(&self, arg: &Expr) -> Option<String> {
        let Expr::Ident(name) = arg else { return None };
        if let Some(m) = self.msg_vars.get(name) {
            return Some(m.clone());
        }
        if let Some(db) = &self.db {
            if db.message_by_name(name).is_some() {
                return Some(name.clone());
            }
        }
        // A bare symbolic name with no database: assume it names a message.
        Some(name.clone())
    }

    // ---- environments ------------------------------------------------------

    fn param_env(&self) -> Env {
        self.params
            .iter()
            .map(|p| (p.clone(), Sym::Expr(p.clone())))
            .collect()
    }

    fn initial_env(&self) -> Env {
        self.params
            .iter()
            .map(|p| {
                (
                    p.clone(),
                    Sym::Expr(
                        self.init_values
                            .get(p)
                            .cloned()
                            .unwrap_or_else(|| "0".into()),
                    ),
                )
            })
            .collect()
    }

    fn recursion_call(&self, env: &Env) -> String {
        if self.params.is_empty() {
            return self.config.process_name.clone();
        }
        let mut havocs = Vec::new();
        let args: Vec<String> = self
            .params
            .iter()
            .map(|p| match env.get(p) {
                Some(Sym::Expr(e)) => e.clone(),
                Some(Sym::Havoc) => {
                    havocs.push(p.clone());
                    p.clone()
                }
                None => p.clone(),
            })
            .collect();
        let mut call = format!("{}({})", self.config.process_name, args.join(", "));
        for h in havocs {
            call = format!("(|~| {h} : StateT @ {call})");
        }
        call
    }

    // ---- statement translation ---------------------------------------------

    fn tr_stmts(&mut self, program: &Program, stmts: &[Stmt], env: Env, k: Cont<'_>) -> TrResult {
        let Some((first, rest)) = stmts.split_first() else {
            return k(self, env);
        };
        let k_rest: &dyn Fn(&mut Translator, Env) -> TrResult =
            &move |s: &mut Translator, e: Env| s.tr_stmts(program, rest, e, k);

        match first {
            Stmt::Expr(e) => self.tr_effect_expr(program, e, env, k_rest),
            Stmt::VarDecl(v) => {
                let mut env = env;
                let init = v
                    .init
                    .as_ref()
                    .and_then(|e| self.tr_expr(e, &env))
                    .map(Sym::Expr)
                    .unwrap_or(Sym::Expr("0".to_owned()));
                env.insert(v.name.clone(), init);
                k_rest(self, env)
            }
            Stmt::If { cond, then, els } => {
                let cond_text = self.tr_cond(cond, &env);
                let then_text = self.tr_stmts(program, &then.stmts, env.clone(), k_rest)?;
                let else_text = match els {
                    Some(b) => self.tr_stmts(program, &b.stmts, env.clone(), k_rest)?,
                    None => k_rest(self, env.clone())?,
                };
                match cond_text {
                    Some(c) => Ok(format!("(if {c} then {then_text} else {else_text})")),
                    None => {
                        self.note(
                            AbstractionKind::NondeterministicCondition,
                            "condition outside the finitised state became internal choice",
                        );
                        if then_text == else_text {
                            Ok(then_text)
                        } else {
                            Ok(format!("({then_text} |~| {else_text})"))
                        }
                    }
                }
            }
            Stmt::Switch {
                scrutinee,
                cases,
                default,
            } => {
                let scrut = self.tr_expr(scrutinee, &env);
                match scrut {
                    Some(sc) => {
                        // Nested conditionals, most specific first.
                        let mut text = match default {
                            Some(d) => self.tr_stmts(program, &d.stmts, env.clone(), k_rest)?,
                            None => k_rest(self, env.clone())?,
                        };
                        for (case_expr, body) in cases.iter().rev() {
                            let Some(cv) = self.tr_expr(case_expr, &env) else {
                                return Err(TranslateError::Unsupported(
                                    "non-constant case label".into(),
                                ));
                            };
                            let body_text =
                                self.tr_stmts(program, &body.stmts, env.clone(), k_rest)?;
                            text = format!("(if {sc} == {cv} then {body_text} else {text})");
                        }
                        Ok(text)
                    }
                    None => {
                        self.note(
                            AbstractionKind::NondeterministicCondition,
                            "switch on untranslatable scrutinee became internal choice",
                        );
                        let mut arms = Vec::new();
                        for (_, body) in cases {
                            arms.push(self.tr_stmts(program, &body.stmts, env.clone(), k_rest)?);
                        }
                        match default {
                            Some(d) => {
                                arms.push(self.tr_stmts(program, &d.stmts, env.clone(), k_rest)?);
                            }
                            None => arms.push(k_rest(self, env.clone())?),
                        }
                        arms.dedup();
                        Ok(if arms.len() == 1 {
                            arms.pop().expect("nonempty")
                        } else {
                            format!("({})", arms.join(" |~| "))
                        })
                    }
                }
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => self.tr_for(program, init, cond, step, body, env, k_rest),
            Stmt::While { .. } => {
                self.note(
                    AbstractionKind::UnboundedLoop,
                    "`while` loop without constant bounds skipped",
                );
                k_rest(self, env)
            }
            Stmt::Return(_) => {
                self.note(
                    AbstractionKind::ControlFlow,
                    "`return` ends the handler in the model",
                );
                Ok(self.recursion_call(&env))
            }
            Stmt::Break | Stmt::Continue => {
                self.note(
                    AbstractionKind::ControlFlow,
                    "`break`/`continue` treated as fallthrough",
                );
                k_rest(self, env)
            }
            Stmt::Block(b) => {
                let stmts2 = b.stmts.clone();
                self.tr_stmts(program, &stmts2, env, k_rest)
            }
        }
    }

    /// Expression statements: calls with effects, and assignments.
    fn tr_effect_expr(
        &mut self,
        program: &Program,
        e: &Expr,
        mut env: Env,
        k: Cont<'_>,
    ) -> TrResult {
        match e {
            Expr::Call { name, args } => match name.as_str() {
                "output" => {
                    let Some(arg) = args.first() else {
                        return Err(TranslateError::Unsupported(
                            "output() without argument".into(),
                        ));
                    };
                    let Some(msg) = self.output_msg_name(arg) else {
                        return Err(TranslateError::Unsupported(
                            "output() of a non-message expression".into(),
                        ));
                    };
                    self.messages.insert(msg.clone());
                    self.out_msgs.insert(msg.clone());
                    if let Some(signal) = self.payload_of.get(&msg).cloned() {
                        // The payload value is whatever the handler assigned
                        // to the message variable's signal field, if
                        // anything; unset or havocked payloads transmit
                        // nondeterministically (a sound over-approximation).
                        let var_key = match arg {
                            Expr::Ident(v) => format!("{v}.{signal}"),
                            _ => String::new(),
                        };
                        let value = env.get(&var_key).cloned();
                        let rest = k(self, env)?;
                        return Ok(match value {
                            Some(Sym::Expr(text)) => {
                                format!("{}.{msg}.({text}) -> {rest}", self.config.output_channel)
                            }
                            _ => {
                                self.fresh_counter += 1;
                                if value.is_none() {
                                    self.note(
                                        AbstractionKind::SignalPayload,
                                        format!(
                                            "payload `{signal}` of `{msg}` not set before output; value nondeterministic"
                                        ),
                                    );
                                }
                                format!(
                                    "{}.{msg}?vout_{} -> {rest}",
                                    self.config.output_channel, self.fresh_counter
                                )
                            }
                        });
                    }
                    let rest = k(self, env)?;
                    Ok(format!("{}.{msg} -> {rest}", self.config.output_channel))
                }
                "setTimer" => {
                    if let (true, Some(Expr::Ident(t))) = (self.config.model_timers, args.first()) {
                        if self.report.timers.iter().any(|x| x == t) {
                            env.insert(armed_name(t), Sym::Expr("1".to_owned()));
                        }
                    }
                    k(self, env)
                }
                "cancelTimer" => {
                    if let (true, Some(Expr::Ident(t))) = (self.config.model_timers, args.first()) {
                        if self.report.timers.iter().any(|x| x == t) {
                            env.insert(armed_name(t), Sym::Expr("0".to_owned()));
                        }
                    }
                    k(self, env)
                }
                "write" => {
                    self.note(
                        AbstractionKind::IgnoredBuiltin,
                        "`write` has no model effect",
                    );
                    k(self, env)
                }
                _ => {
                    // Inline a user-defined function.
                    if let Some(f) = program.function(name).cloned() {
                        let mut env2 = env;
                        for ((_, pname), arg) in f.params.iter().zip(args) {
                            let v = self
                                .tr_expr(arg, &env2)
                                .map(Sym::Expr)
                                .unwrap_or(Sym::Havoc);
                            env2.insert(pname.clone(), v);
                        }
                        return self.tr_stmts(program, &f.body.stmts, env2, k);
                    }
                    self.note(
                        AbstractionKind::IgnoredBuiltin,
                        format!("call to `{name}` has no model effect"),
                    );
                    k(self, env)
                }
            },
            Expr::Assign { target, value } => {
                match target.as_ref() {
                    Expr::Ident(v) if env.contains_key(v) => match self.tr_expr(value, &env) {
                        Some(text) => {
                            let bounded = if self.params.contains(v) {
                                format!("sat({text})")
                            } else {
                                text
                            };
                            env.insert(v.clone(), Sym::Expr(bounded));
                        }
                        None => {
                            self.note(
                                AbstractionKind::HavocAssignment,
                                format!("`{v}` assigned an untranslatable value; havocked"),
                            );
                            env.insert(v.clone(), Sym::Havoc);
                        }
                    },
                    Expr::Member { object, member } => {
                        let configured = match object.as_ref() {
                            Expr::Ident(v) => self
                                .msg_vars
                                .get(v)
                                .and_then(|m| self.payload_of.get(m))
                                .is_some_and(|sig| sig == member)
                                .then(|| format!("{v}.{member}")),
                            _ => None,
                        };
                        match configured {
                            Some(key) => {
                                match self.tr_expr(value, &env) {
                                    Some(text) => {
                                        env.insert(key, Sym::Expr(format!("sat({text})")));
                                    }
                                    None => {
                                        env.insert(key, Sym::Havoc);
                                        self.note(
                                        AbstractionKind::HavocAssignment,
                                        format!("payload `{member}` assigned an untranslatable value"),
                                    );
                                    }
                                }
                            }
                            None => {
                                self.note(
                                    AbstractionKind::SignalPayload,
                                    "signal/payload write below message granularity dropped",
                                );
                            }
                        }
                    }
                    Expr::Index { .. } => {
                        self.note(
                            AbstractionKind::SignalPayload,
                            "signal/payload write below message granularity dropped",
                        );
                    }
                    other => {
                        self.note(
                            AbstractionKind::SignalPayload,
                            format!("assignment to unmodelled target {other:?} dropped"),
                        );
                    }
                }
                k(self, env)
            }
            other => {
                self.note(
                    AbstractionKind::IgnoredBuiltin,
                    format!("expression statement {other:?} has no model effect"),
                );
                k(self, env)
            }
        }
    }

    /// `for` loops with constant bounds are unrolled; others are skipped.
    #[allow(clippy::too_many_arguments)]
    fn tr_for(
        &mut self,
        program: &Program,
        init: &Option<Box<Stmt>>,
        cond: &Option<Expr>,
        step: &Option<Expr>,
        body: &Block,
        env: Env,
        k: Cont<'_>,
    ) -> TrResult {
        // Pattern: for (i = c0; i < c1; i++) — with i a local counter.
        let unrollable = (|| {
            let Some(init) = init else { return None };
            let (var, from) = match init.as_ref() {
                Stmt::Expr(Expr::Assign { target, value }) => {
                    match (target.as_ref(), value.as_ref()) {
                        (Expr::Ident(v), Expr::Int(n)) => (v.clone(), *n),
                        _ => return None,
                    }
                }
                Stmt::VarDecl(v) => match &v.init {
                    Some(Expr::Int(n)) => (v.name.clone(), *n),
                    _ => return None,
                },
                _ => return None,
            };
            let Some(Expr::Binary {
                op: BinOp::Lt,
                lhs,
                rhs,
            }) = cond
            else {
                return None;
            };
            let (Expr::Ident(cv), Expr::Int(to)) = (lhs.as_ref(), rhs.as_ref()) else {
                return None;
            };
            if cv != &var {
                return None;
            }
            let Some(Expr::Assign { target, value }) = step else {
                return None;
            };
            let Expr::Ident(sv) = target.as_ref() else {
                return None;
            };
            if sv != &var {
                return None;
            }
            let Expr::Binary {
                op: BinOp::Add,
                rhs: step_rhs,
                ..
            } = value.as_ref()
            else {
                return None;
            };
            let Expr::Int(by) = step_rhs.as_ref() else {
                return None;
            };
            if *by <= 0 || (*to - from) / *by > MAX_UNROLL {
                return None;
            }
            Some((var, from, *to, *by))
        })();

        let Some((var, from, to, by)) = unrollable else {
            self.note(
                AbstractionKind::UnboundedLoop,
                "`for` loop without constant bounds skipped",
            );
            return k(self, env);
        };

        // Unroll: translate body iterations in sequence via nested
        // continuations built from the back.
        #[allow(clippy::items_after_statements, clippy::too_many_arguments)]
        fn unroll(
            s: &mut Translator,
            program: &Program,
            body: &Block,
            var: &str,
            i: i64,
            to: i64,
            by: i64,
            env: Env,
            k: Cont<'_>,
        ) -> TrResult {
            if i >= to {
                return k(s, env);
            }
            let mut env2 = env;
            env2.insert(var.to_owned(), Sym::Expr(i.to_string()));
            let next = move |s: &mut Translator, e: Env| {
                unroll(s, program, body, var, i + by, to, by, e, k)
            };
            s.tr_stmts(program, &body.stmts, env2, &next)
        }
        unroll(self, program, body, &var, from, to, by, env, k)
    }

    // ---- expressions ---------------------------------------------------------

    /// Integer-valued CAPL expression → CSPm text, or `None` when it depends
    /// on unmodelled detail (signals, arrays, …).
    fn tr_expr(&self, e: &Expr, env: &Env) -> Option<String> {
        match e {
            Expr::Int(n) => Some(n.to_string()),
            Expr::Char(c) => Some((*c as i64).to_string()),
            Expr::Ident(v) => match env.get(v) {
                Some(Sym::Expr(text)) => Some(text.clone()),
                _ => None,
            },
            Expr::Member { object, member } => match object.as_ref() {
                Expr::This => {
                    let (_, signal) = self.current_input_payload.as_ref()?;
                    (signal == member).then(|| format!("v_{member}"))
                }
                Expr::Ident(v) => match env.get(&format!("{v}.{member}")) {
                    Some(Sym::Expr(text)) => Some(text.clone()),
                    _ => None,
                },
                _ => None,
            },
            Expr::Unary {
                op: UnOp::Neg,
                expr,
            } => Some(format!("(-{})", self.tr_expr(expr, env)?)),
            Expr::Binary { op, lhs, rhs } => {
                let op_text = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Mod => "%",
                    _ => return None,
                };
                Some(format!(
                    "({} {op_text} {})",
                    self.tr_expr(lhs, env)?,
                    self.tr_expr(rhs, env)?
                ))
            }
            _ => None,
        }
    }

    /// Boolean condition → CSPm text, or `None` for unmodelled conditions.
    fn tr_cond(&self, e: &Expr, env: &Env) -> Option<String> {
        match e {
            Expr::Binary { op, lhs, rhs } => match op {
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    let op_text = match op {
                        BinOp::Eq => "==",
                        BinOp::Ne => "!=",
                        BinOp::Lt => "<",
                        BinOp::Le => "<=",
                        BinOp::Gt => ">",
                        _ => ">=",
                    };
                    Some(format!(
                        "{} {op_text} {}",
                        self.tr_expr(lhs, env)?,
                        self.tr_expr(rhs, env)?
                    ))
                }
                BinOp::And => Some(format!(
                    "({}) and ({})",
                    self.tr_cond(lhs, env)?,
                    self.tr_cond(rhs, env)?
                )),
                BinOp::Or => Some(format!(
                    "({}) or ({})",
                    self.tr_cond(lhs, env)?,
                    self.tr_cond(rhs, env)?
                )),
                _ => Some(format!("{} != 0", self.tr_expr(e, env)?)),
            },
            Expr::Unary {
                op: UnOp::Not,
                expr,
            } => Some(format!("not ({})", self.tr_cond(expr, env)?)),
            other => Some(format!("{} != 0", self.tr_expr(other, env)?)),
        }
    }
}

// ---- rendering -----------------------------------------------------------

/// Render a script from translation parts. Shared between single-node
/// translation and multi-node system composition.
pub(crate) fn render_script(config: &TranslateConfig, parts: &TranslationParts) -> TrResult {
    const SCRIPT_TPL: &str = "-- CSPm implementation model, automatically extracted from CAPL\n\
         -- source by the auto-csp model extractor.\n\
         $if(messages)$datatype $datatype$ = $messages; separator=\" | \"$\n\
         channel $channels; separator=\", \"$ : $datatype$\n\
         $endif$$if(bare_channels)$channel $bare_channels; separator=\", \"$\n\
         $endif$$if(has_state)$MAXV = $maxv$\n\
         nametype StateT = {0..MAXV}\n\
         sat(x) = if x < 0 then 0 else if x > MAXV then MAXV else x\n\
         $endif$$defs; separator=\"\\n\"$\n";

    let template =
        Template::parse(SCRIPT_TPL).map_err(|e| TranslateError::Template(e.to_string()))?;
    let mut ctx = TplValue::map();
    ctx.set(
        "messages",
        parts
            .messages
            .iter()
            .map(|m| TplValue::from(m.as_str()))
            .collect::<TplValue>(),
    );
    ctx.set("datatype", config.datatype_name.as_str());
    ctx.set(
        "channels",
        parts
            .channels
            .iter()
            .map(|c| TplValue::from(c.as_str()))
            .collect::<TplValue>(),
    );
    ctx.set(
        "bare_channels",
        parts
            .bare_channels
            .iter()
            .map(|b| TplValue::from(b.as_str()))
            .collect::<TplValue>(),
    );
    ctx.set("has_state", parts.has_state);
    ctx.set("maxv", config.int_bound);
    ctx.set(
        "defs",
        parts
            .defs
            .iter()
            .map(|d| TplValue::from(d.as_str()))
            .collect::<TplValue>(),
    );
    template
        .render(&ctx)
        .map_err(|e| TranslateError::Template(e.to_string()))
}

fn armed_name(timer: &str) -> String {
    format!("armed_{timer}")
}

fn key_event(c: char) -> String {
    format!("key_{c}")
}

/// Walk a block calling `f` on every `output(arg)` argument.
fn collect_outputs(block: &Block, f: &mut dyn FnMut(&Expr)) {
    for s in &block.stmts {
        collect_outputs_stmt(s, f);
    }
}

fn collect_outputs_stmt(s: &Stmt, f: &mut dyn FnMut(&Expr)) {
    match s {
        Stmt::Expr(Expr::Call { name, args }) if name == "output" => {
            if let Some(a) = args.first() {
                f(a);
            }
        }
        Stmt::If { then, els, .. } => {
            collect_outputs(then, f);
            if let Some(e) = els {
                collect_outputs(e, f);
            }
        }
        Stmt::While { body, .. } => collect_outputs(body, f),
        Stmt::For { body, .. } => collect_outputs(body, f),
        Stmt::Switch { cases, default, .. } => {
            for (_, b) in cases {
                collect_outputs(b, f);
            }
            if let Some(d) = default {
                collect_outputs(d, f);
            }
        }
        Stmt::Block(b) => collect_outputs(b, f),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn translate(src: &str) -> TranslationOutput {
        let program = capl::parse(src).unwrap();
        Translator::new(TranslateConfig::ecu("ECU"))
            .translate(&program)
            .unwrap()
    }

    #[test]
    fn paper_shape_request_response() {
        let out = translate(
            "variables { message reqSw msgReq; message rptSw msgRpt; }
             on message reqSw { output(msgRpt); }",
        );
        assert!(out.script.contains("datatype MsgT = reqSw | rptSw"));
        assert!(out.script.contains("channel rec, send : MsgT"));
        assert!(out.script.contains("ECU = rec.reqSw -> send.rptSw -> ECU"));
        assert_eq!(out.entry, "ECU");
        assert!(out.report.abstractions.is_empty());
    }

    #[test]
    fn generated_script_is_valid_cspm() {
        let out = translate(
            "variables { message reqSw a; message rptSw b; int n = 0; msTimer t; }
             on start { setTimer(t, 100); }
             on message reqSw { n = n + 1; output(b); }
             on timer t { output(b); setTimer(t, 100); }",
        );
        let loaded = cspm::Script::parse(&out.script)
            .unwrap_or_else(|e| panic!("parse failed: {e}\n{}", out.script))
            .load()
            .unwrap_or_else(|e| panic!("load failed: {e}\n{}", out.script));
        assert!(loaded.process(&out.entry).is_some(), "{}", out.script);
    }

    #[test]
    fn state_variable_becomes_parameter() {
        let out = translate(
            "variables { message reqSw a; message rptSw b; int count = 0; }
             on message reqSw { count = count + 1; output(b); }",
        );
        assert!(out.script.contains("ECU(count)"), "{}", out.script);
        assert!(out.script.contains("sat((count + 1))"), "{}", out.script);
        assert!(out.script.contains("ECU_INIT = ECU(0)"), "{}", out.script);
        assert_eq!(out.report.state_vars, vec!["count"]);
    }

    #[test]
    fn conditional_over_state_translates_to_if() {
        let out = translate(
            "variables { message reqSw a; message rptSw b; message rptUpd c; int mode = 0; }
             on message reqSw {
                if (mode == 0) { output(b); } else { output(c); }
             }",
        );
        assert!(
            out.script.contains("if mode == 0 then send.rptSw"),
            "{}",
            out.script
        );
    }

    #[test]
    fn unmodelled_condition_becomes_internal_choice() {
        let out = translate(
            "variables { message reqSw a; message rptSw b; message rptUpd c; }
             on message reqSw {
                if (this.reqType == 1) { output(b); } else { output(c); }
             }",
        );
        assert!(out.script.contains("|~|"), "{}", out.script);
        assert!(out
            .report
            .abstractions
            .iter()
            .any(|a| a.kind == AbstractionKind::NondeterministicCondition));
    }

    #[test]
    fn timer_becomes_tock_branch() {
        let out = translate(
            "variables { message rptSw b; msTimer t; }
             on start { setTimer(t, 50); }
             on timer t { output(b); setTimer(t, 50); }",
        );
        assert!(out.script.contains("channel tock"), "{}", out.script);
        assert!(
            out.script
                .contains("armed_t == 1 & tock -> send.rptSw -> ECU(1)"),
            "{}",
            out.script
        );
        assert!(out.script.contains("ECU_INIT = ECU(1)"), "{}", out.script);
    }

    #[test]
    fn cancel_timer_disarms() {
        let out = translate(
            "variables { message reqSw a; msTimer t; }
             on start { setTimer(t, 50); }
             on message reqSw { cancelTimer(t); }
             on timer t { }",
        );
        assert!(out.script.contains("rec.reqSw -> ECU(0)"), "{}", out.script);
    }

    #[test]
    fn functions_are_inlined() {
        let out = translate(
            "variables { message reqSw a; message rptSw b; }
             void respond(int dummy) { output(b); }
             on message reqSw { respond(0); }",
        );
        assert!(
            out.script.contains("ECU = rec.reqSw -> send.rptSw -> ECU"),
            "{}",
            out.script
        );
    }

    #[test]
    fn constant_for_loop_is_unrolled() {
        let out = translate(
            "variables { message rptSw b; message reqSw a; }
             on message reqSw {
                int i;
                for (i = 0; i < 3; i++) { output(b); }
             }",
        );
        assert!(
            out.script
                .contains("rec.reqSw -> send.rptSw -> send.rptSw -> send.rptSw -> ECU"),
            "{}",
            out.script
        );
        assert!(out.report.abstractions.is_empty());
    }

    #[test]
    fn while_loop_is_reported() {
        let out = translate(
            "variables { message reqSw a; int n = 0; }
             on message reqSw { while (n < 10) { n = n + 1; } }",
        );
        assert!(out
            .report
            .abstractions
            .iter()
            .any(|a| a.kind == AbstractionKind::UnboundedLoop));
    }

    #[test]
    fn switch_over_state_translates() {
        let out = translate(
            "variables { message reqSw a; message rptSw b; message rptUpd c; int st = 0; }
             on message reqSw {
                switch (st) {
                    case 0: output(b); break;
                    default: output(c);
                }
             }",
        );
        assert!(out.script.contains("if st == 0 then"), "{}", out.script);
        let loaded = cspm::Script::parse(&out.script).unwrap().load().unwrap();
        assert!(loaded.process("ECU_INIT").is_some());
    }

    #[test]
    fn wildcard_handler_uses_input_binding() {
        let out = translate(
            "variables { message rptSw b; }
             on message * { output(b); }",
        );
        assert!(
            out.script.contains("rec?m_any -> send.rptSw"),
            "{}",
            out.script
        );
        let loaded = cspm::Script::parse(&out.script).unwrap().load().unwrap();
        assert!(loaded.process("ECU").is_some());
    }

    #[test]
    fn key_handler_becomes_bare_event() {
        let out = translate(
            "variables { message reqSw a; }
             on key 'u' { output(a); }",
        );
        assert!(out.script.contains("channel key_u"), "{}", out.script);
        assert!(
            out.script.contains("key_u -> send.reqSw -> ECU"),
            "{}",
            out.script
        );
    }

    #[test]
    fn gateway_orientation_flips_channels() {
        let program = capl::parse(
            "variables { message reqSw a; message rptSw b; }
             on start { output(a); }
             on message rptSw { output(a); }",
        )
        .unwrap();
        let out = Translator::new(TranslateConfig::gateway("VMG"))
            .translate(&program)
            .unwrap();
        assert!(
            out.script.contains("VMG = send.rptSw -> rec.reqSw -> VMG"),
            "{}",
            out.script
        );
        assert!(
            out.script.contains("VMG_INIT = rec.reqSw -> VMG"),
            "{}",
            out.script
        );
    }

    #[test]
    fn database_contributes_message_names() {
        let db =
            candb::parse("BU_: A B\nBO_ 100 reqSw: 8 A\nBO_ 101 rptSw: 8 B\nBO_ 102 extra: 8 A")
                .unwrap();
        let program = capl::parse("on message 100 { output(101); }").unwrap();
        // Numeric output targets are not idents, so use a variables-based
        // program instead for output; ids resolve for the selector.
        let program2 =
            capl::parse("variables { message 101 rpt; } on message 100 { output(rpt); }").unwrap();
        let _ = program;
        let mut cfg = TranslateConfig::ecu("ECU");
        cfg.include_db_messages = true;
        let out = Translator::new(cfg)
            .with_database(db)
            .translate(&program2)
            .unwrap();
        assert!(out.script.contains("extra"), "{}", out.script);
        assert!(
            out.script.contains("rec.reqSw -> send.rptSw -> ECU"),
            "{}",
            out.script
        );
    }

    #[test]
    fn havoc_assignment_produces_internal_choice_over_domain() {
        let out = translate(
            "variables { message reqSw a; int n = 0; }
             on message reqSw { n = this.reqType; }",
        );
        assert!(
            out.script.contains("|~| n : StateT @ ECU(n)"),
            "{}",
            out.script
        );
        let loaded = cspm::Script::parse(&out.script).unwrap().load().unwrap();
        assert!(loaded.process("ECU_INIT").is_some());
    }

    #[test]
    fn empty_program_is_stop() {
        let out = translate("");
        assert!(out.script.contains("ECU = STOP"), "{}", out.script);
    }
}

#[cfg(test)]
mod signal_tests {
    use super::*;

    fn translate_with_signals(src: &str, signals: &[(&str, &str)]) -> TranslationOutput {
        let program = capl::parse(src).unwrap();
        let mut cfg = TranslateConfig::ecu("ECU");
        cfg.signal_fields = signals
            .iter()
            .map(|(m, s)| (m.to_string(), s.to_string()))
            .collect();
        Translator::new(cfg).translate(&program).unwrap()
    }

    #[test]
    fn configured_signal_becomes_event_payload() {
        let out = translate_with_signals(
            "variables { message reqSw a; message rptSw b; message rptUpd c; }
             on message reqSw {
                if (this.reqType == 1) { output(b); } else { output(c); }
             }",
            &[("reqSw", "reqType")],
        );
        assert!(
            out.script
                .contains("rec.reqSw?v_reqType -> (if v_reqType == 1"),
            "{}",
            out.script
        );
        assert!(out.script.contains("reqSw.StateT"), "{}", out.script);
        // The condition is now modelled, not abstracted.
        assert!(
            !out.report
                .abstractions
                .iter()
                .any(|a| a.kind == AbstractionKind::NondeterministicCondition),
            "{:?}",
            out.report.abstractions
        );
        // And the script elaborates.
        let loaded = cspm::Script::parse(&out.script)
            .unwrap_or_else(|e| panic!("{e}\n{}", out.script))
            .load()
            .unwrap_or_else(|e| panic!("{e}\n{}", out.script));
        assert!(loaded.process("ECU").is_some());
    }

    #[test]
    fn assigned_payload_is_transmitted() {
        let out = translate_with_signals(
            "variables { message rptSw rpt; message reqSw a; }
             on message reqSw {
                rpt.status = 2;
                output(rpt);
             }",
            &[("rptSw", "status")],
        );
        assert!(
            out.script.contains("send.rptSw.(sat(2)) ->"),
            "{}",
            out.script
        );
        let loaded = cspm::Script::parse(&out.script).unwrap().load().unwrap();
        let p = loaded.process("ECU").unwrap().clone();
        let lts = csp::Lts::build(p, loaded.definitions(), 10_000).unwrap();
        let req = loaded.alphabet().lookup("rec.reqSw").unwrap();
        let rpt2 = loaded.alphabet().lookup("send.rptSw.2").unwrap();
        assert!(csp::traces::has_trace(&lts, &[req, rpt2]));
        // No other status value is transmitted (the event may not even be
        // interned, since the process never constructs it).
        if let Some(rpt0) = loaded.alphabet().lookup("send.rptSw.0") {
            assert!(!csp::traces::has_trace(&lts, &[req, rpt0]));
        }
    }

    #[test]
    fn input_payload_flows_to_output() {
        // Echo the received value back.
        let out = translate_with_signals(
            "variables { message rptSw rpt; message reqSw a; }
             on message reqSw {
                rpt.status = this.reqType;
                output(rpt);
             }",
            &[("reqSw", "reqType"), ("rptSw", "status")],
        );
        assert!(
            out.script
                .contains("rec.reqSw?v_reqType -> send.rptSw.(sat(v_reqType)) ->"),
            "{}",
            out.script
        );
        let loaded = cspm::Script::parse(&out.script).unwrap().load().unwrap();
        let p = loaded.process("ECU").unwrap().clone();
        let lts = csp::Lts::build(p, loaded.definitions(), 10_000).unwrap();
        let req1 = loaded.alphabet().lookup("rec.reqSw.1").unwrap();
        let rpt1 = loaded.alphabet().lookup("send.rptSw.1").unwrap();
        let rpt2 = loaded.alphabet().lookup("send.rptSw.2").unwrap();
        assert!(csp::traces::has_trace(&lts, &[req1, rpt1]));
        assert!(!csp::traces::has_trace(&lts, &[req1, rpt2]));
    }

    #[test]
    fn unset_payload_transmits_nondeterministically() {
        let out = translate_with_signals(
            "variables { message rptSw rpt; message reqSw a; }
             on message reqSw { output(rpt); }",
            &[("rptSw", "status")],
        );
        assert!(out.script.contains("send.rptSw?vout_1"), "{}", out.script);
        assert!(out
            .report
            .abstractions
            .iter()
            .any(|a| a.kind == AbstractionKind::SignalPayload));
        let loaded = cspm::Script::parse(&out.script).unwrap().load().unwrap();
        let p = loaded.process("ECU").unwrap().clone();
        let lts = csp::Lts::build(p, loaded.definitions(), 10_000).unwrap();
        let req = loaded.alphabet().lookup("rec.reqSw").unwrap();
        // Every status value is possible — the over-approximation.
        for v in 0..=3 {
            let rpt = loaded
                .alphabet()
                .lookup(&format!("send.rptSw.{v}"))
                .unwrap();
            assert!(csp::traces::has_trace(&lts, &[req, rpt]));
        }
    }

    #[test]
    fn payload_state_interacts_with_counters() {
        // Signal payload and an ordinary state variable coexist.
        let out = translate_with_signals(
            "variables { message rptSw rpt; message reqSw a; int n = 0; }
             on message reqSw {
                rpt.status = n;
                n = n + 1;
                output(rpt);
             }",
            &[("rptSw", "status")],
        );
        let loaded = cspm::Script::parse(&out.script)
            .unwrap_or_else(|e| panic!("{e}\n{}", out.script))
            .load()
            .unwrap();
        let p = loaded.process("ECU_INIT").unwrap().clone();
        let lts = csp::Lts::build(p, loaded.definitions(), 10_000).unwrap();
        let req = loaded.alphabet().lookup("rec.reqSw").unwrap();
        let rpt0 = loaded.alphabet().lookup("send.rptSw.0").unwrap();
        let rpt1 = loaded.alphabet().lookup("send.rptSw.1").unwrap();
        // First response carries 0, second carries 1.
        assert!(csp::traces::has_trace(&lts, &[req, rpt0, req, rpt1]));
        assert!(!csp::traces::has_trace(&lts, &[req, rpt1]));
    }
}
