//! Composite system models: several translated nodes in parallel.
//!
//! §VIII-A of the paper lists "writing CSP parallel operation constructs …
//! would allow building composite ECU models" as future work; this module
//! implements it. Each node is translated with its own orientation, the
//! declarations are merged, and a `SYSTEM` process composes the node entry
//! processes in parallel, synchronised on the shared message channels.

use std::collections::BTreeSet;

use candb::Database;
use capl::ast::Program;

use crate::translate::{
    render_script, NodeAlphabet, TranslateConfig, TranslateError, TranslationReport, Translator,
};

/// One node of a composite system.
#[derive(Debug, Clone)]
pub struct NodeSpec {
    /// The CAPL program for this node.
    pub program: Program,
    /// Its translation configuration (name, channel orientation).
    pub config: TranslateConfig,
}

impl NodeSpec {
    /// An ECU-oriented node.
    pub fn ecu(name: &str, program: Program) -> NodeSpec {
        NodeSpec {
            program,
            config: TranslateConfig::ecu(name),
        }
    }

    /// A gateway-oriented node (see [`TranslateConfig::gateway`]).
    pub fn gateway(name: &str, program: Program) -> NodeSpec {
        NodeSpec {
            program,
            config: TranslateConfig::gateway(name),
        }
    }
}

/// The result of composing a system.
#[derive(Debug, Clone)]
pub struct SystemOutput {
    /// The combined CSPm script.
    pub script: String,
    /// The name of the composed process (`SYSTEM` by default).
    pub system: String,
    /// Entry process name per node, in node order.
    pub entries: Vec<String>,
    /// Translation report per node, in node order.
    pub reports: Vec<TranslationReport>,
}

/// Builds a multi-node CSPm system model.
#[derive(Debug, Default)]
pub struct SystemBuilder {
    nodes: Vec<NodeSpec>,
    db: Option<Database>,
    system_name: String,
    buffer_capacity: Option<usize>,
}

impl SystemBuilder {
    /// An empty builder; the composed process is named `SYSTEM`.
    pub fn new() -> SystemBuilder {
        SystemBuilder {
            nodes: Vec::new(),
            db: None,
            system_name: "SYSTEM".to_owned(),
            buffer_capacity: None,
        }
    }

    /// Rename the composed process.
    pub fn system_name(mut self, name: &str) -> SystemBuilder {
        self.system_name = name.to_owned();
        self
    }

    /// Attach a CAN database shared by all nodes.
    pub fn database(mut self, db: Database) -> SystemBuilder {
        self.db = Some(db);
        self
    }

    /// Add a node.
    pub fn node(mut self, spec: NodeSpec) -> SystemBuilder {
        self.nodes.push(spec);
        self
    }

    /// Insert a bounded FIFO network model between senders and receivers
    /// (the "associated network model" of the paper's Fig. 1).
    ///
    /// Without it, composition is synchronous: a receiver that is not ready
    /// blocks the sender — faithful to CSP handshakes but not to a CAN bus,
    /// where frames queue at the controller. With a buffer of `capacity`
    /// frames per direction, each receiver listens on a derived `<chan>d`
    /// channel fed by a `BUF_<chan>` process.
    pub fn buffered(mut self, capacity: usize) -> SystemBuilder {
        self.buffer_capacity = Some(capacity);
        self
    }

    /// Translate all nodes and compose them.
    ///
    /// # Errors
    ///
    /// Any node-level [`TranslateError`].
    pub fn build(self) -> Result<SystemOutput, TranslateError> {
        let mut defs = Vec::new();
        let mut entries = Vec::new();
        let mut reports = Vec::new();
        let mut messages: BTreeSet<String> = BTreeSet::new();
        let mut bare_channels: Vec<String> = Vec::new();
        let mut has_state = false;
        let mut alphabets: Vec<NodeAlphabet> = Vec::new();
        let mut names: Vec<String> = Vec::new();
        let mut max_bound = 0;

        let first_config = self
            .nodes
            .first()
            .map(|n| n.config.clone())
            .unwrap_or_else(|| TranslateConfig::ecu(&self.system_name));

        let mut channels: BTreeSet<String> = BTreeSet::new();
        // (producer channel, delivery channel) pairs needing a buffer.
        let mut buffered_pairs: BTreeSet<(String, String)> = BTreeSet::new();

        for spec in &self.nodes {
            let mut config = spec.config.clone();
            if self.buffer_capacity.is_some() {
                // Receivers listen on the buffered delivery channel.
                let delivery = format!("{}d", config.input_channel);
                buffered_pairs.insert((config.input_channel.clone(), delivery.clone()));
                config.input_channel = delivery;
            }
            let mut translator = Translator::new(config.clone());
            if let Some(db) = &self.db {
                translator = translator.with_database(db.clone());
            }
            names.push(config.process_name.clone());
            let parts = translator.translate_parts(&spec.program)?;
            channels.extend(parts.channels.iter().cloned());
            defs.extend(parts.defs);
            entries.push(parts.entry);
            reports.push(parts.report);
            messages.extend(parts.messages);
            alphabets.push(parts.alphabet);
            for c in parts.bare_channels {
                if !bare_channels.contains(&c) {
                    bare_channels.push(c);
                }
            }
            has_state |= parts.has_state;
            max_bound = max_bound.max(spec.config.int_bound);
        }

        // Network model: one bounded FIFO process per buffered direction.
        if let Some(capacity) = self.buffer_capacity {
            for (produce, deliver) in &buffered_pairs {
                channels.insert(produce.clone());
                channels.insert(deliver.clone());
                let buf = format!("BUF_{produce}");
                defs.push(format!(
                    "{buf}(q) = length(q) < {capacity} & {produce}?m -> {buf}(cat(q, <m>))\n                       [] length(q) > 0 & {deliver}!(head(q)) -> {buf}(tail(q))"
                ));
                names.push(buf.clone());
                entries.push(format!("{buf}(<>)"));
                let mut alpha = NodeAlphabet::default();
                alpha.patterns.insert(produce.clone());
                alpha.patterns.insert(deliver.clone());
                alphabets.push(alpha);
                reports.push(TranslationReport::default());
            }
        }

        // Alphabetised composition: each step synchronises on the
        // intersection of the alphabets on either side, so a node never
        // blocks events it does not observe.
        for (name, alpha) in names.iter().zip(&alphabets) {
            defs.push(format!("ALPHA_{name} = {}", alpha.to_cspm()));
        }
        let system_def = match entries.len() {
            0 => format!("{} = STOP", self.system_name),
            1 => format!("{} = {}", self.system_name, entries[0]),
            _ => {
                let mut composed = entries[0].clone();
                let mut left_alpha = format!("ALPHA_{}", names[0]);
                for (i, entry) in entries.iter().enumerate().skip(1) {
                    let right_alpha = format!("ALPHA_{}", names[i]);
                    composed =
                        format!("({composed} [| inter({left_alpha}, {right_alpha}) |] {entry})");
                    left_alpha = format!("union({left_alpha}, {right_alpha})");
                }
                format!("{} = {composed}", self.system_name)
            }
        };
        defs.push(system_def);

        let merged = crate::translate::TranslationParts {
            defs,
            entry: self.system_name.clone(),
            messages,
            channels,
            bare_channels,
            has_state,
            report: TranslationReport::default(),
            alphabet: NodeAlphabet::default(),
        };
        let mut render_config = first_config;
        render_config.int_bound = max_bound;
        let script = render_script(&render_config, &merged)?;
        Ok(SystemOutput {
            script,
            system: self.system_name,
            entries,
            reports,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composes_vmg_and_ecu() {
        let vmg = capl::parse(
            "variables { message reqSw req; }
             on start { output(req); }
             on message rptSw { output(req); }",
        )
        .unwrap();
        let ecu = capl::parse(
            "variables { message rptSw rpt; }
             on message reqSw { output(rpt); }",
        )
        .unwrap();
        let out = SystemBuilder::new()
            .node(NodeSpec::gateway("VMG", vmg))
            .node(NodeSpec::ecu("ECU", ecu))
            .build()
            .unwrap();
        assert!(
            out.script
                .contains("SYSTEM = (VMG_INIT [| inter(ALPHA_VMG, ALPHA_ECU) |] ECU)"),
            "{}",
            out.script
        );
        let loaded = cspm::Script::parse(&out.script)
            .unwrap_or_else(|e| panic!("{e}\n{}", out.script))
            .load()
            .unwrap_or_else(|e| panic!("{e}\n{}", out.script));
        assert!(loaded.process("SYSTEM").is_some());
    }

    #[test]
    fn composed_system_exchanges_messages() {
        // The composed model must exhibit the request/response trace.
        let vmg = capl::parse(
            "variables { message reqSw req; }
             on start { output(req); }",
        )
        .unwrap();
        let ecu = capl::parse(
            "variables { message rptSw rpt; }
             on message reqSw { output(rpt); }",
        )
        .unwrap();
        let out = SystemBuilder::new()
            .node(NodeSpec::gateway("VMG", vmg))
            .node(NodeSpec::ecu("ECU", ecu))
            .build()
            .unwrap();
        let loaded = cspm::Script::parse(&out.script).unwrap().load().unwrap();
        let system = loaded.process("SYSTEM").unwrap().clone();
        let lts = csp::Lts::build(system, loaded.definitions(), 10_000).unwrap();
        let req = loaded.alphabet().lookup("rec.reqSw").unwrap();
        let rpt = loaded.alphabet().lookup("send.rptSw").unwrap();
        assert!(csp::traces::has_trace(&lts, &[req, rpt]));
    }

    #[test]
    fn empty_system_is_stop() {
        let out = SystemBuilder::new().build().unwrap();
        assert!(out.script.contains("SYSTEM = STOP"));
    }

    #[test]
    fn single_node_system_is_that_node() {
        let ecu = capl::parse(
            "variables { message rptSw rpt; }
             on message reqSw { output(rpt); }",
        )
        .unwrap();
        let out = SystemBuilder::new()
            .node(NodeSpec::ecu("ECU", ecu))
            .build()
            .unwrap();
        assert!(out.script.contains("SYSTEM = ECU"), "{}", out.script);
    }
}
