//! Fig. 3 reproduction: the ECU implementation model (CSPm script)
//! automatically generated from the application code of the simulated CAN
//! bus network — pinned byte-for-byte.
//!
//! The structure matches the paper's example output: a header comment,
//! message declarations emitted as CSPm channel/datatype declarations, and
//! one recursive process per CAPL program in which `on message m` becomes a
//! `rec.m ->` prefix and `output(m)` becomes a `send.m ->` prefix.

use translator::{TranslateConfig, Translator};

/// The paper's demonstration ECU, reduced to its Fig. 3 scope: one
/// diagnosis exchange (`on message` + `output`), no state.
const FIG3_ECU_CAPL: &str = "
variables
{
  message reqSw msgReq;
  message rptSw msgRpt;
}

on message reqSw
{
  output(msgRpt);
}
";

const FIG3_GOLDEN: &str = "-- CSPm implementation model, automatically extracted from CAPL
-- source by the auto-csp model extractor.
datatype MsgT = reqSw | rptSw
channel rec, send : MsgT
ECU = rec.reqSw -> send.rptSw -> ECU
";

#[test]
fn fig3_script_is_byte_identical() {
    let program = capl::parse(FIG3_ECU_CAPL).unwrap();
    let out = Translator::new(TranslateConfig::ecu("ECU"))
        .translate(&program)
        .unwrap();
    assert_eq!(out.script, FIG3_GOLDEN);
    assert!(out.report.abstractions.is_empty());
}

#[test]
fn fig3_script_round_trips_through_the_checker() {
    let loaded = cspm::Script::parse(FIG3_GOLDEN).unwrap().load().unwrap();
    let ecu = loaded.process("ECU").unwrap().clone();
    // The generated model satisfies the paper's SP02 integrity property.
    let mut defs = loaded.definitions().clone();
    let req = loaded.alphabet().lookup("rec.reqSw").unwrap();
    let rpt = loaded.alphabet().lookup("send.rptSw").unwrap();
    let sp02 = fdrlite::properties::request_response(&mut defs, "SP02", req, rpt);
    let verdict = fdrlite::Checker::new()
        .trace_refinement(&sp02, &ecu, &defs)
        .unwrap();
    assert!(verdict.is_pass());
}

/// The full bundled ECU (with the update counter) keeps the same structural
/// shape: channel declarations derived from message declarations, handlers
/// as prefix branches of one recursive process.
#[test]
fn full_ecu_keeps_the_fig3_shape() {
    let program = capl::parse(ota::sources::ECU_CAPL).unwrap();
    let out = Translator::new(TranslateConfig::ecu("ECU"))
        .translate(&program)
        .unwrap();
    for line in [
        "datatype MsgT = reqApp | reqSw | rptSw | rptUpd",
        "channel rec, send : MsgT",
        "ECU(updatesApplied) = rec.reqSw -> send.rptSw -> ECU(updatesApplied)",
        "  [] rec.reqApp -> send.rptUpd -> ECU(sat((updatesApplied + 1)))",
        "ECU_INIT = ECU(0)",
    ] {
        assert!(
            out.script.contains(line),
            "missing `{line}` in:\n{}",
            out.script
        );
    }
}
