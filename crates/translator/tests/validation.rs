//! The validation loop the paper's workflow implies but leaves manual:
//! the observable trace of the *simulated* CAPL implementation must be a
//! trace of the *extracted* CSP model.
//!
//! One CAPL source drives both `canoe-sim` (execution) and `translator`
//! (model extraction); if the translation rules were wrong, the simulator's
//! send/receive sequence would escape the model and this test would fail.

use canoe_sim::{Simulation, TraceEvent};
use csp::EventId;
use translator::{NodeSpec, SystemBuilder};

/// Map a simulation trace to the model's event sequence.
///
/// The model's convention (paper §V-B): `rec.m` is a message travelling
/// towards the ECU, `send.m` one travelling from it. A bus transmit of a
/// VMG-sent message is therefore the shared event `rec.m`, and an ECU-sent
/// one is `send.m`. Receive entries are the same shared event and are
/// skipped to avoid double counting.
fn model_events(sim: &Simulation, db: &candb::Database, alphabet: &csp::Alphabet) -> Vec<EventId> {
    let mut out = Vec::new();
    for entry in sim.trace() {
        if let TraceEvent::Transmit { node, message, .. } = &entry.event {
            let channel = if db
                .message_by_name(message)
                .is_some_and(|m| m.sender == "ECU")
            {
                "send"
            } else {
                "rec"
            };
            let name = format!("{channel}.{message}");
            let id = alphabet
                .lookup(&name)
                .unwrap_or_else(|| panic!("event `{name}` (from node {node}) not in model"));
            out.push(id);
        }
    }
    out
}

fn validate(vmg_src: &str, ecu_src: &str, run_us: u64) {
    let db = ota::messages::database();

    // Execute.
    let mut sim = Simulation::new(Some(db.clone()));
    sim.add_node("VMG", capl::parse(vmg_src).unwrap()).unwrap();
    sim.add_node("ECU", capl::parse(ecu_src).unwrap()).unwrap();
    sim.run_for(run_us).unwrap();

    // Extract.
    let out = SystemBuilder::new()
        .database(db.clone())
        .node(NodeSpec::gateway("VMG", capl::parse(vmg_src).unwrap()))
        .node(NodeSpec::ecu("ECU", capl::parse(ecu_src).unwrap()))
        .build()
        .unwrap();
    let loaded = cspm::Script::parse(&out.script).unwrap().load().unwrap();
    let system = loaded.process("SYSTEM").unwrap().clone();
    let lts = csp::Lts::build(system, loaded.definitions(), 500_000).unwrap();

    // Contain.
    let observed = model_events(&sim, &db, loaded.alphabet());
    assert!(
        !observed.is_empty(),
        "simulation produced no observable events"
    );
    assert!(
        csp::traces::has_trace(&lts, &observed),
        "simulated trace escapes the extracted model:\n{:?}\nscript:\n{}",
        observed
            .iter()
            .map(|e| loaded.alphabet().name(*e))
            .collect::<Vec<_>>(),
        out.script
    );
}

#[test]
fn ota_case_study_simulation_is_contained_in_the_model() {
    validate(ota::sources::VMG_CAPL, ota::sources::ECU_CAPL, 100_000);
}

#[test]
fn faulty_ecu_needs_the_buffered_network_model() {
    // The faulty ECU emits two responses back-to-back. On the real (and
    // simulated) bus the second one queues at the CAN controller; in a
    // synchronous CSP composition it would block. The Fig. 1 "network
    // model" box exists for exactly this: with a FIFO bus model the
    // simulated trace is contained again.
    let vmg_src = ota::sources::VMG_CAPL;
    let ecu_src = ota::sources::FAULTY_ECU_CAPL;
    let db = ota::messages::database();

    let mut sim = Simulation::new(Some(db.clone()));
    sim.add_node("VMG", capl::parse(vmg_src).unwrap()).unwrap();
    sim.add_node("ECU", capl::parse(ecu_src).unwrap()).unwrap();
    sim.run_for(100_000).unwrap();

    let out = SystemBuilder::new()
        .database(db.clone())
        .buffered(4)
        .node(NodeSpec::gateway("VMG", capl::parse(vmg_src).unwrap()))
        .node(NodeSpec::ecu("ECU", capl::parse(ecu_src).unwrap()))
        .build()
        .unwrap();
    let loaded = cspm::Script::parse(&out.script)
        .unwrap_or_else(|e| panic!("{e}\n{}", out.script))
        .load()
        .unwrap_or_else(|e| panic!("{e}\n{}", out.script));
    let system = loaded.process("SYSTEM").unwrap().clone();
    let lts = csp::Lts::build(system, loaded.definitions(), 2_000_000).unwrap();

    // With buffering, a producer event (`rec.m` / `send.m`) is the handler's
    // controller handoff — the `Queued` entry — and a delivery event
    // (`recd.m` / `sendd.m`) is the matching `Receive` entry. The in-between
    // `Transmit` (bus grant) is internal to the network model.
    let mut observed = Vec::new();
    for entry in sim.trace() {
        let (kind, message) = match &entry.event {
            TraceEvent::Queued { message, .. } => ("tx", message),
            TraceEvent::Receive { message, .. } => ("rx", message),
            _ => continue,
        };
        let base = if db
            .message_by_name(message)
            .is_some_and(|m| m.sender == "ECU")
        {
            "send"
        } else {
            "rec"
        };
        let name = match kind {
            "tx" => format!("{base}.{message}"),
            _ => format!("{base}d.{message}"),
        };
        observed.push(
            loaded
                .alphabet()
                .lookup(&name)
                .unwrap_or_else(|| panic!("event `{name}` not in model")),
        );
    }
    assert!(
        csp::traces::has_trace(&lts, &observed),
        "observed: {:?}\nscript:\n{}",
        observed
            .iter()
            .map(|e| loaded.alphabet().name(*e))
            .collect::<Vec<_>>(),
        out.script
    );
}

#[test]
fn stateful_counter_program_is_contained() {
    let vmg = "
        variables { message reqSw req; msTimer t; }
        on start { setTimer(t, 10); }
        on timer t { output(req); setTimer(t, 10); }
    ";
    let ecu = "
        variables { message rptSw rpt; int served = 0; }
        on message reqSw {
            if (served < 2) { output(rpt); }
            served = served + 1;
        }
    ";
    // Timers become tock branches in the model; the simulated trace has no
    // tock events, so containment is checked on the message alphabet with
    // tock hidden.
    let db = ota::messages::database();
    let mut sim = Simulation::new(Some(db.clone()));
    sim.add_node("VMG", capl::parse(vmg).unwrap()).unwrap();
    sim.add_node("ECU", capl::parse(ecu).unwrap()).unwrap();
    sim.run_for(45_000).unwrap();

    let out = SystemBuilder::new()
        .database(db.clone())
        .node(NodeSpec::gateway("VMG", capl::parse(vmg).unwrap()))
        .node(NodeSpec::ecu("ECU", capl::parse(ecu).unwrap()))
        .build()
        .unwrap();
    let loaded = cspm::Script::parse(&out.script).unwrap().load().unwrap();
    let system = loaded.process("SYSTEM").unwrap().clone();
    let tock = loaded
        .alphabet()
        .lookup("tock")
        .expect("timer model emits tock");
    let hidden = csp::EventSet::singleton(tock);
    let lts = csp::Lts::build(
        csp::Process::hide(system, hidden),
        loaded.definitions(),
        500_000,
    )
    .unwrap();

    let observed = model_events(&sim, &db, loaded.alphabet());
    assert!(
        csp::traces::has_trace(&lts, &observed),
        "observed: {:?}\nscript:\n{}",
        observed
            .iter()
            .map(|e| loaded.alphabet().name(*e))
            .collect::<Vec<_>>(),
        out.script
    );
}
