//! Security-property builders over named events.
//!
//! Thin wrappers around [`fdrlite::properties`] that resolve event names
//! through a [`csp::Alphabet`], matching how the OTA case study (and user
//! code) talks about messages.

use csp::{Alphabet, Definitions, EventSet, Process};

/// Integrity as in the paper's `SP02` (§V-B): every `request` is answered by
/// exactly one `response` before the next request.
pub fn integrity(
    alphabet: &mut Alphabet,
    defs: &mut Definitions,
    name: &str,
    request: &str,
    response: &str,
) -> Process {
    let req = alphabet.intern(request);
    let rsp = alphabet.intern(response);
    fdrlite::properties::request_response(defs, name, req, rsp)
}

/// The "more sophisticated" §V-B variant: other traffic may interleave, but
/// a response still follows each request before the next request.
pub fn integrity_with_noise(
    alphabet: &mut Alphabet,
    defs: &mut Definitions,
    name: &str,
    request: &str,
    response: &str,
    other: &[&str],
) -> Process {
    let req = alphabet.intern(request);
    let rsp = alphabet.intern(response);
    let noise: EventSet = other.iter().map(|o| alphabet.intern(o)).collect();
    fdrlite::properties::request_response_with_noise(defs, name, req, rsp, &noise)
}

/// Confidentiality: none of `leaks` may ever occur while `allowed` events
/// run freely.
pub fn confidentiality(
    alphabet: &mut Alphabet,
    defs: &mut Definitions,
    name: &str,
    allowed: &[&str],
    leaks: &[&str],
) -> Process {
    let universe: EventSet = allowed
        .iter()
        .chain(leaks.iter())
        .map(|e| alphabet.intern(e))
        .collect();
    let forbidden: EventSet = leaks.iter().map(|e| alphabet.intern(e)).collect();
    fdrlite::properties::never(defs, name, &universe, &forbidden)
}

/// Authentication precedence: no event of `effects` may occur before some
/// event of `credentials` has occurred.
pub fn authentication(
    alphabet: &mut Alphabet,
    defs: &mut Definitions,
    name: &str,
    universe: &[&str],
    credentials: &[&str],
    effects: &[&str],
) -> Process {
    let uni: EventSet = universe.iter().map(|e| alphabet.intern(e)).collect();
    let first: EventSet = credentials.iter().map(|e| alphabet.intern(e)).collect();
    let then: EventSet = effects.iter().map(|e| alphabet.intern(e)).collect();
    fdrlite::properties::precedes(defs, name, &uni, &first, &then)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdrlite::Checker;

    #[test]
    fn integrity_matches_paper_sp02() {
        let mut ab = Alphabet::new();
        let mut defs = Definitions::new();
        let spec = integrity(&mut ab, &mut defs, "SP02", "rec.reqSw", "send.rptSw");
        let req = ab.lookup("rec.reqSw").unwrap();
        let rpt = ab.lookup("send.rptSw").unwrap();
        let good = Process::prefix_chain([req, rpt, req, rpt], Process::Stop);
        let bad = Process::prefix_chain([req, rpt, rpt], Process::Stop);
        let c = Checker::new();
        assert!(c.trace_refinement(&spec, &good, &defs).unwrap().is_pass());
        assert!(!c.trace_refinement(&spec, &bad, &defs).unwrap().is_pass());
    }

    #[test]
    fn confidentiality_rejects_leak() {
        let mut ab = Alphabet::new();
        let mut defs = Definitions::new();
        let spec = confidentiality(&mut ab, &mut defs, "CONF", &["send.rptSw"], &["leak.key"]);
        let rpt = ab.lookup("send.rptSw").unwrap();
        let leak = ab.lookup("leak.key").unwrap();
        let good = Process::prefix_chain([rpt, rpt], Process::Stop);
        let bad = Process::prefix_chain([rpt, leak], Process::Stop);
        let c = Checker::new();
        assert!(c.trace_refinement(&spec, &good, &defs).unwrap().is_pass());
        let v = c.trace_refinement(&spec, &bad, &defs).unwrap();
        assert!(!v.is_pass());
    }

    #[test]
    fn authentication_requires_credential_first() {
        let mut ab = Alphabet::new();
        let mut defs = Definitions::new();
        let spec = authentication(
            &mut ab,
            &mut defs,
            "AUTH",
            &["auth.ok", "apply.update", "send.rptSw"],
            &["auth.ok"],
            &["apply.update"],
        );
        let auth = ab.lookup("auth.ok").unwrap();
        let apply = ab.lookup("apply.update").unwrap();
        let rpt = ab.lookup("send.rptSw").unwrap();
        let good = Process::prefix_chain([rpt, auth, apply], Process::Stop);
        let bad = Process::prefix_chain([apply], Process::Stop);
        let c = Checker::new();
        assert!(c.trace_refinement(&spec, &good, &defs).unwrap().is_pass());
        assert!(!c.trace_refinement(&spec, &bad, &defs).unwrap().is_pass());
    }

    #[test]
    fn integrity_with_noise_allows_other_channels() {
        let mut ab = Alphabet::new();
        let mut defs = Definitions::new();
        let spec = integrity_with_noise(
            &mut ab,
            &mut defs,
            "SP02N",
            "rec.reqSw",
            "send.rptSw",
            &["other.ping"],
        );
        let req = ab.lookup("rec.reqSw").unwrap();
        let rpt = ab.lookup("send.rptSw").unwrap();
        let ping = ab.lookup("other.ping").unwrap();
        let noisy = Process::prefix_chain([ping, req, ping, rpt], Process::Stop);
        assert!(Checker::new()
            .trace_refinement(&spec, &noisy, &defs)
            .unwrap()
            .is_pass());
    }
}
