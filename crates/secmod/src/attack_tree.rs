//! Attack trees as series-parallel graphs, with the paper's sequence
//! semantics and the translation to CSP processes.
//!
//! §IV-E defines the action sequences of an SP graph recursively:
//!
//! ```text
//! (a)        = { ⟨a⟩ }
//! (G1 ∥ G2)  = { s ∈ s1 ||| s2 | s1 ∈ (G1), s2 ∈ (G2) }   (interleavings)
//! (G1 · G2)  = { s1 ⌢ s2 | s1 ∈ (G1), s2 ∈ (G2) }          (concatenation)
//! ({G1,…,Gn}) = ⋃ (Gi)                                      (alternatives)
//! ```
//!
//! [`AttackTree::sequences`] implements exactly this function;
//! [`AttackTree::to_process`] produces a CSP process whose *complete* traces
//! (those ending in `✓`) are exactly those sequences — the semantic
//! equivalence result of the paper's reference [17].

use std::collections::BTreeSet;

use csp::{Alphabet, Definitions, Process};
use serde::{Deserialize, Serialize};

/// An attack tree / series-parallel graph over named attacker actions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttackTree {
    /// A single attacker action.
    Leaf(String),
    /// Sequential composition `G1 · G2 · …` — every part, in order.
    Seq(Vec<AttackTree>),
    /// Parallel composition `G1 ∥ G2 ∥ …` — every part, interleaved.
    Par(Vec<AttackTree>),
    /// Alternatives `{G1, …, Gn}` — any one part (an OR node).
    Choice(Vec<AttackTree>),
}

impl AttackTree {
    /// Convenience constructor for a leaf.
    pub fn leaf(action: &str) -> AttackTree {
        AttackTree::Leaf(action.to_owned())
    }

    /// All attacker actions mentioned in the tree, deduplicated.
    pub fn actions(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_actions(&mut out);
        out
    }

    fn collect_actions(&self, out: &mut BTreeSet<String>) {
        match self {
            AttackTree::Leaf(a) => {
                out.insert(a.clone());
            }
            AttackTree::Seq(children)
            | AttackTree::Par(children)
            | AttackTree::Choice(children) => {
                for c in children {
                    c.collect_actions(out);
                }
            }
        }
    }

    /// The paper's `(·)` semantics: the set of action sequences realising
    /// the attack.
    pub fn sequences(&self) -> BTreeSet<Vec<String>> {
        match self {
            AttackTree::Leaf(a) => [vec![a.clone()]].into_iter().collect(),
            AttackTree::Seq(children) => {
                let mut acc: BTreeSet<Vec<String>> = [Vec::new()].into_iter().collect();
                for c in children {
                    let mut next = BTreeSet::new();
                    for prefix in &acc {
                        for suffix in c.sequences() {
                            let mut s = prefix.clone();
                            s.extend(suffix);
                            next.insert(s);
                        }
                    }
                    acc = next;
                }
                acc
            }
            AttackTree::Par(children) => {
                let mut acc: BTreeSet<Vec<String>> = [Vec::new()].into_iter().collect();
                for c in children {
                    let mut next = BTreeSet::new();
                    for left in &acc {
                        for right in c.sequences() {
                            for merged in interleavings(left, &right) {
                                next.insert(merged);
                            }
                        }
                    }
                    acc = next;
                }
                acc
            }
            AttackTree::Choice(children) => {
                children.iter().flat_map(AttackTree::sequences).collect()
            }
        }
    }

    /// Translate to a CSP process: leaves become event prefixes, `Seq`
    /// becomes `;`, `Par` becomes `|||` and `Choice` becomes external
    /// choice. The process terminates (`✓`) exactly after a complete attack.
    pub fn to_process(&self, alphabet: &mut Alphabet) -> Process {
        match self {
            AttackTree::Leaf(a) => Process::prefix(alphabet.intern(a), Process::Skip),
            AttackTree::Seq(children) => {
                let parts: Vec<Process> = children.iter().map(|c| c.to_process(alphabet)).collect();
                let mut iter = parts.into_iter().rev();
                match iter.next() {
                    None => Process::Skip,
                    Some(last) => iter.fold(last, |acc, p| Process::seq(p, acc)),
                }
            }
            AttackTree::Par(children) => {
                Process::interleave_all(children.iter().map(|c| c.to_process(alphabet)).collect())
            }
            AttackTree::Choice(children) => Process::external_choice_all(
                children.iter().map(|c| c.to_process(alphabet)).collect(),
            ),
        }
    }

    /// A monitor process for composing with a system model: performs the
    /// attack (synchronising on its action events) and then signals
    /// `success_event`. Used to ask "can this attack complete?" as a trace
    /// refinement query.
    pub fn to_monitor(
        &self,
        alphabet: &mut Alphabet,
        defs: &mut Definitions,
        success_event: &str,
    ) -> Process {
        let success = alphabet.intern(success_event);
        let attack = self.to_process(alphabet);
        let done = defs.add("ATTACK_DONE", Process::prefix(success, Process::Stop));
        Process::seq(attack, Process::var(done))
    }
}

/// All interleavings of two sequences (`s1 ||| s2` on traces).
fn interleavings(a: &[String], b: &[String]) -> Vec<Vec<String>> {
    if a.is_empty() {
        return vec![b.to_vec()];
    }
    if b.is_empty() {
        return vec![a.to_vec()];
    }
    let mut out = Vec::new();
    for rest in interleavings(&a[1..], b) {
        let mut s = vec![a[0].clone()];
        s.extend(rest);
        out.push(s);
    }
    for rest in interleavings(a, &b[1..]) {
        let mut s = vec![b[0].clone()];
        s.extend(rest);
        out.push(s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp::{Lts, TraceEvent};

    fn seqs(t: &AttackTree) -> BTreeSet<Vec<String>> {
        t.sequences()
    }

    fn s(items: &[&str]) -> Vec<String> {
        items.iter().map(std::string::ToString::to_string).collect()
    }

    #[test]
    fn leaf_semantics() {
        assert_eq!(
            seqs(&AttackTree::leaf("spoof")),
            [s(&["spoof"])].into_iter().collect()
        );
    }

    #[test]
    fn seq_concatenates() {
        let t = AttackTree::Seq(vec![AttackTree::leaf("a"), AttackTree::leaf("b")]);
        assert_eq!(seqs(&t), [s(&["a", "b"])].into_iter().collect());
    }

    #[test]
    fn par_interleaves() {
        let t = AttackTree::Par(vec![AttackTree::leaf("a"), AttackTree::leaf("b")]);
        assert_eq!(
            seqs(&t),
            [s(&["a", "b"]), s(&["b", "a"])].into_iter().collect()
        );
    }

    #[test]
    fn choice_unions() {
        let t = AttackTree::Choice(vec![AttackTree::leaf("a"), AttackTree::leaf("b")]);
        assert_eq!(seqs(&t), [s(&["a"]), s(&["b"])].into_iter().collect());
    }

    #[test]
    fn nested_tree_semantics() {
        // (a · (b ∥ c)) has sequences abc and acb.
        let t = AttackTree::Seq(vec![
            AttackTree::leaf("a"),
            AttackTree::Par(vec![AttackTree::leaf("b"), AttackTree::leaf("c")]),
        ]);
        assert_eq!(
            seqs(&t),
            [s(&["a", "b", "c"]), s(&["a", "c", "b"])]
                .into_iter()
                .collect()
        );
    }

    /// The semantic-equivalence theorem: the complete traces of the CSP
    /// process equal the SP-graph sequences.
    fn assert_process_matches_semantics(tree: &AttackTree) {
        let mut ab = Alphabet::new();
        let p = tree.to_process(&mut ab);
        let defs = Definitions::new();
        let lts = Lts::build(p, &defs, 100_000).unwrap();
        let traces = csp::traces::traces_upto(&lts, 32);
        let complete: BTreeSet<Vec<String>> = traces
            .iter()
            .filter(|t| t.is_terminated())
            .map(|t| {
                t.events()
                    .iter()
                    .filter_map(|e| match e {
                        TraceEvent::Event(id) => Some(ab.name(*id).to_owned()),
                        TraceEvent::Tick => None,
                    })
                    .collect()
            })
            .collect();
        assert_eq!(complete, tree.sequences(), "for tree {tree:?}");
    }

    #[test]
    fn process_translation_is_semantically_equivalent() {
        assert_process_matches_semantics(&AttackTree::leaf("a"));
        assert_process_matches_semantics(&AttackTree::Seq(vec![
            AttackTree::leaf("a"),
            AttackTree::leaf("b"),
        ]));
        assert_process_matches_semantics(&AttackTree::Par(vec![
            AttackTree::leaf("a"),
            AttackTree::leaf("b"),
            AttackTree::leaf("c"),
        ]));
        assert_process_matches_semantics(&AttackTree::Choice(vec![
            AttackTree::Seq(vec![AttackTree::leaf("probe"), AttackTree::leaf("spoof")]),
            AttackTree::Par(vec![AttackTree::leaf("jam"), AttackTree::leaf("replay")]),
        ]));
    }

    #[test]
    fn actions_are_collected() {
        let t = AttackTree::Seq(vec![
            AttackTree::leaf("probe"),
            AttackTree::Choice(vec![AttackTree::leaf("spoof"), AttackTree::leaf("probe")]),
        ]);
        assert_eq!(
            t.actions(),
            ["probe", "spoof"]
                .iter()
                .map(std::string::ToString::to_string)
                .collect()
        );
    }

    #[test]
    fn monitor_signals_success_only_after_attack() {
        let mut ab = Alphabet::new();
        let mut defs = Definitions::new();
        let t = AttackTree::Seq(vec![AttackTree::leaf("probe"), AttackTree::leaf("spoof")]);
        let monitor = t.to_monitor(&mut ab, &mut defs, "attack_success");
        let lts = Lts::build(monitor, &defs, 10_000).unwrap();
        let probe = ab.lookup("probe").unwrap();
        let spoof = ab.lookup("spoof").unwrap();
        let win = ab.lookup("attack_success").unwrap();
        assert!(csp::traces::has_trace(&lts, &[probe, spoof, win]));
        assert!(!csp::traces::has_trace(&lts, &[win]));
        assert!(!csp::traces::has_trace(&lts, &[probe, win]));
    }
}
