//! Dolev-Yao intruder process generation.
//!
//! The intruder sits on a *tapped hop*: honest senders transmit on the
//! `heard` channel and honest receivers listen on the `delivered` channel.
//! The intruder is the only process bridging the two, which gives it the
//! full Dolev-Yao capability set:
//!
//! * **overhear** — every `heard.m` extends its knowledge;
//! * **drop** — it is never obliged to deliver;
//! * **delay / reorder / replay** — it may deliver anything it knows, any
//!   number of times, in any order;
//! * **forge** — initial knowledge (and anything learnt) can be delivered
//!   without ever having been sent.
//!
//! Knowledge is a subset of the finite message space, so the generated
//! process is a finite machine with one state per reachable knowledge set —
//! exactly how FDR-facing CSP intruders are written by hand.

use std::collections::HashMap;

use csp::{Alphabet, DefId, Definitions, Process};

/// A generated Dolev-Yao intruder (see module docs).
#[derive(Debug, Clone)]
pub struct Intruder {
    process: Process,
    heard_events: Vec<csp::EventId>,
    delivered_events: Vec<csp::EventId>,
}

impl Intruder {
    /// Start building an intruder; `name` prefixes its definition names.
    pub fn builder(name: &str) -> IntruderBuilder {
        IntruderBuilder {
            name: name.to_owned(),
            messages: Vec::new(),
            heard_channel: "heard".to_owned(),
            delivered_channel: "delivered".to_owned(),
            initial_knowledge: Vec::new(),
            lossy: false,
        }
    }

    /// The intruder process (compose it in parallel, synchronising on
    /// [`Intruder::heard_events`] with senders and
    /// [`Intruder::delivered_events`] with receivers).
    pub fn process(&self) -> &Process {
        &self.process
    }

    /// Events the intruder overhears.
    pub fn heard_events(&self) -> &[csp::EventId] {
        &self.heard_events
    }

    /// Events the intruder may deliver.
    pub fn delivered_events(&self) -> &[csp::EventId] {
        &self.delivered_events
    }
}

/// Configures an [`Intruder`].
#[derive(Debug, Clone)]
pub struct IntruderBuilder {
    name: String,
    messages: Vec<String>,
    heard_channel: String,
    delivered_channel: String,
    initial_knowledge: Vec<String>,
    lossy: bool,
}

impl IntruderBuilder {
    /// Add a message to the (finite) message space.
    pub fn message(mut self, m: &str) -> IntruderBuilder {
        self.messages.push(m.to_owned());
        self
    }

    /// Add several messages.
    pub fn messages<'a, I: IntoIterator<Item = &'a str>>(mut self, ms: I) -> IntruderBuilder {
        self.messages.extend(ms.into_iter().map(str::to_owned));
        self
    }

    /// Set the tapped channel pair: senders transmit on `heard`, receivers
    /// listen on `delivered`.
    pub fn tap(mut self, heard: &str, delivered: &str) -> IntruderBuilder {
        self.heard_channel = heard.to_owned();
        self.delivered_channel = delivered.to_owned();
        self
    }

    /// Give the intruder initial knowledge of `m` (it can forge it from the
    /// start).
    pub fn knows(mut self, m: &str) -> IntruderBuilder {
        self.initial_knowledge.push(m.to_owned());
        self
    }

    /// Make the intruder *lossy*: after overhearing a message it decides
    /// internally whether to keep it. A kept message can be delivered (and
    /// replayed); a dropped one is gone — which makes denial-of-service
    /// observable as a refusal in the stable-failures model.
    pub fn lossy(mut self, lossy: bool) -> IntruderBuilder {
        self.lossy = lossy;
        self
    }

    /// Generate the intruder process.
    ///
    /// # Panics
    ///
    /// Panics if the message space is larger than 16 (the knowledge lattice
    /// would have more than 65 536 states; restrict the message space
    /// instead).
    pub fn build(self, alphabet: &mut Alphabet, defs: &mut Definitions) -> Intruder {
        assert!(
            self.messages.len() <= 16,
            "intruder message space too large ({} messages)",
            self.messages.len()
        );
        let heard: Vec<csp::EventId> = self
            .messages
            .iter()
            .map(|m| alphabet.intern(&format!("{}.{m}", self.heard_channel)))
            .collect();
        let delivered: Vec<csp::EventId> = self
            .messages
            .iter()
            .map(|m| alphabet.intern(&format!("{}.{m}", self.delivered_channel)))
            .collect();

        let mut initial: u32 = 0;
        for (i, m) in self.messages.iter().enumerate() {
            if self.initial_knowledge.iter().any(|k| k == m) {
                initial |= 1 << i;
            }
        }

        // One definition per knowledge set, created on demand.
        let mut ids: HashMap<u32, DefId> = HashMap::new();
        let mut worklist = vec![initial];
        while let Some(knowledge) = worklist.pop() {
            if ids.contains_key(&knowledge) {
                continue;
            }
            let id = defs.declare(&format!("{}_{knowledge:04x}", self.name));
            ids.insert(knowledge, id);
            for i in 0..self.messages.len() {
                worklist.push(knowledge | (1 << i));
            }
        }
        for (&knowledge, &id) in &ids {
            let mut branches = Vec::new();
            for i in 0..self.messages.len() {
                // Overhear: learn the message (or, when lossy, maybe drop it).
                let learned = ids[&(knowledge | (1 << i))];
                let continuation = if self.lossy {
                    Process::internal_choice(Process::var(learned), Process::var(id))
                } else {
                    Process::var(learned)
                };
                branches.push(Process::prefix(heard[i], continuation));
            }
            for (i, &event) in delivered.iter().enumerate() {
                // Deliver / replay / forge anything known.
                if knowledge & (1 << i) != 0 {
                    branches.push(Process::prefix(event, Process::var(id)));
                }
            }
            defs.define(id, Process::external_choice_all(branches));
        }

        Intruder {
            process: Process::var(ids[&initial]),
            heard_events: heard,
            delivered_events: delivered,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp::{EventSet, Lts};

    fn setup() -> (Alphabet, Definitions, Intruder) {
        let mut ab = Alphabet::new();
        let mut defs = Definitions::new();
        let intruder = Intruder::builder("EVE")
            .messages(["reqSw", "rptSw"])
            .tap("net", "dlv")
            .build(&mut ab, &mut defs);
        (ab, defs, intruder)
    }

    #[test]
    fn intruder_cannot_forge_unknown_messages() {
        let (ab, defs, intruder) = setup();
        let lts = Lts::build(intruder.process().clone(), &defs, 10_000).unwrap();
        let dlv = ab.lookup("dlv.reqSw").unwrap();
        // Without having heard anything, no delivery is possible.
        assert!(!csp::traces::has_trace(&lts, &[dlv]));
    }

    #[test]
    fn intruder_replays_after_overhearing() {
        let (ab, defs, intruder) = setup();
        let lts = Lts::build(intruder.process().clone(), &defs, 10_000).unwrap();
        let net = ab.lookup("net.reqSw").unwrap();
        let dlv = ab.lookup("dlv.reqSw").unwrap();
        assert!(csp::traces::has_trace(&lts, &[net, dlv]));
        // Replay: deliver twice from one overheard message.
        assert!(csp::traces::has_trace(&lts, &[net, dlv, dlv]));
    }

    #[test]
    fn knowledge_is_monotone() {
        let (ab, defs, intruder) = setup();
        let lts = Lts::build(intruder.process().clone(), &defs, 10_000).unwrap();
        let net_req = ab.lookup("net.reqSw").unwrap();
        let net_rpt = ab.lookup("net.rptSw").unwrap();
        let dlv_req = ab.lookup("dlv.reqSw").unwrap();
        let dlv_rpt = ab.lookup("dlv.rptSw").unwrap();
        assert!(csp::traces::has_trace(
            &lts,
            &[net_req, net_rpt, dlv_rpt, dlv_req]
        ));
        assert!(!csp::traces::has_trace(&lts, &[net_req, dlv_rpt]));
    }

    #[test]
    fn initial_knowledge_enables_forgery() {
        let mut ab = Alphabet::new();
        let mut defs = Definitions::new();
        let intruder = Intruder::builder("EVE")
            .message("reqApp")
            .knows("reqApp")
            .tap("net", "dlv")
            .build(&mut ab, &mut defs);
        let lts = Lts::build(intruder.process().clone(), &defs, 1_000).unwrap();
        let dlv = ab.lookup("dlv.reqApp").unwrap();
        assert!(csp::traces::has_trace(&lts, &[dlv]));
    }

    #[test]
    fn intruder_state_space_is_the_knowledge_lattice() {
        let (_, defs, intruder) = setup();
        let lts = Lts::build(intruder.process().clone(), &defs, 10_000).unwrap();
        // 2 messages → 4 knowledge sets.
        assert_eq!(lts.state_count(), 4);
    }

    #[test]
    fn lossy_intruder_can_commit_to_dropping() {
        let mut ab = Alphabet::new();
        let mut defs = Definitions::new();
        let intruder = Intruder::builder("EVE")
            .message("reqSw")
            .tap("net", "dlv")
            .lossy(true)
            .build(&mut ab, &mut defs);
        let lts = Lts::build(intruder.process().clone(), &defs, 1_000).unwrap();
        let net = ab.lookup("net.reqSw").unwrap();
        let dlv = ab.lookup("dlv.reqSw").unwrap();
        // After hearing, there must exist a resolved state refusing delivery.
        let norm = fdrlite::NormalisedLts::build(&lts, 1_000).unwrap();
        let after = norm.after(norm.initial(), net).unwrap();
        assert!(norm.acceptances(after).any(|a| !a.contains(dlv)));
        // But delivery is still possible on the other branch.
        assert!(csp::traces::has_trace(&lts, &[net, dlv]));
    }

    #[test]
    fn dropping_is_default_behaviour() {
        // A sender synchronising on `net.*` only: the composed system can
        // always proceed even if nothing is ever delivered.
        let (ab, defs, intruder) = setup();
        let net = ab.lookup("net.reqSw").unwrap();
        let sender = Process::prefix(net, Process::prefix(net, Process::Stop));
        let system =
            Process::parallel(EventSet::singleton(net), sender, intruder.process().clone());
        let lts = Lts::build(system, &defs, 10_000).unwrap();
        assert!(csp::traces::has_trace(&lts, &[net, net]));
    }
}
