//! `secmod` — security modelling for CSP-based checking of automotive ECUs.
//!
//! Implements §IV-E of the paper:
//!
//! * [`Intruder`] — a Dolev-Yao network intruder generated as a CSP process:
//!   it overhears everything on a channel, accumulates knowledge, and can
//!   drop, replay, delay and forge messages within its knowledge. Composed
//!   in parallel with component models it turns a functional model into an
//!   attack analysis (Ryan & Schneider's approach, reference 30 in the paper).
//! * [`AttackTree`] — attack trees as series-parallel (SP) graphs with the
//!   paper's sequence semantics `(·)`, and their translation to semantically
//!   equivalent CSP processes (the result the paper builds on, its reference 17).
//! * [`properties`] — named-event wrappers over the `fdrlite` specification
//!   templates: integrity (request–response), confidentiality (no leak),
//!   authentication precedence.
//!
//! # Example: the intruder can break what the bare system satisfies
//!
//! ```
//! use csp::{Alphabet, Definitions, Process};
//! use fdrlite::Checker;
//! use secmod::Intruder;
//!
//! let mut ab = Alphabet::new();
//! let mut defs = Definitions::new();
//! // A sender that transmits `hello` once over the tapped hop.
//! let heard = ab.intern("net.hello");
//! let sender = Process::prefix(heard, Process::Stop);
//!
//! // The intruder relays net.* to dlv.* but may also replay.
//! let intruder = Intruder::builder("EVE")
//!     .message("hello")
//!     .tap("net", "dlv")
//!     .build(&mut ab, &mut defs);
//!
//! let delivered = ab.lookup("dlv.hello").unwrap();
//! let system = Process::parallel(
//!     csp::EventSet::singleton(heard),
//!     sender,
//!     intruder.process().clone(),
//! );
//! // SPEC: at most one delivery. The intruder's replay capability breaks it.
//! let spec = Process::external_choice(
//!     Process::prefix(heard, Process::prefix(delivered, Process::Stop)),
//!     Process::prefix(heard, Process::Stop),
//! );
//! let verdict = Checker::new().trace_refinement(&spec, &system, &defs)?;
//! assert!(!verdict.is_pass());
//! # Ok::<(), fdrlite::CheckError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attack_tree;
mod intruder;
pub mod properties;

pub use attack_tree::AttackTree;
pub use intruder::{Intruder, IntruderBuilder};
