//! `faults` — deterministic CAN fault injection with model conformance.
//!
//! The paper validates its CSP models against implementations running in
//! CANoe (§IV-B) and derives attacker capabilities from the Dolev-Yao
//! intruder (§IV-E). This crate closes the remaining loop: it *executes*
//! those attacker capabilities — and ordinary channel faults — against the
//! [`canoe_sim`] bus, deterministically, and then checks that the observed
//! simulation trace is still a trace of the formal model.
//!
//! * [`FaultPlan`] — a declarative, plain-text fault plan (`[plan]`,
//!   `[[fault]]`, `[conformance]`, `[[map]]` sections) parsed with
//!   [`diag`] diagnostics (`SIM3xx` codes);
//! * [`FaultEngine`] — a seeded [`canoe_sim::Interceptor`] composing drop,
//!   corruption, delay/jitter, duplication, replay, spoofing and bus-off
//!   faults; same plan + same seed ⇒ byte-identical trace;
//! * [`apply_plan`] — installs the engine on a [`canoe_sim::Simulation`]
//!   and schedules any `node_crash` outages;
//! * [`conformance`] — lifts the simulated trace to CSP events via the
//!   plan's `[[map]]` rules and checks `SPEC ⊑T ⟨trace⟩` with [`fdrlite`];
//! * [`batch`] — the high-throughput batch mode of the same check: merges
//!   a whole corpus of lifted traces into a hypertrace prefix trie and
//!   checks it in one walk of the spec's normal form, with per-trace
//!   verdicts verbatim-identical to the per-trace loop;
//! * [`replay`] — serialises an [`fdrlite`] counterexample to JSON and
//!   re-drives it through the simulator to reproduce the violation;
//! * [`storage`] — seeded storage faults ([`StorageFaultEngine`]: torn
//!   writes, truncation, bit flips, stale versions, dropped writes)
//!   against the persistent model store's write path, validating that
//!   corruption degrades to a recompile, never a wrong verdict.
//!
//! # Example
//!
//! ```
//! use faults::{FaultEngine, FaultPlan};
//!
//! let plan = FaultPlan::parse(
//!     r#"
//! [plan]
//! name = "drop-every-second-report"
//! seed = 7
//!
//! [[fault]]
//! name = "lossy-link"
//! kind = "drop"
//! match_id = 512
//! every_nth = 2
//! "#,
//! )
//! .expect("plan parses");
//! assert_eq!(plan.faults.len(), 1);
//! let _engine = FaultEngine::from_plan(&plan);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod codes;
pub mod conformance;
mod engine;
mod plan;
pub mod replay;
pub mod storage;

pub use engine::{apply_plan, FaultEngine};
pub use plan::{
    lint_plan, ConformanceSpec, FaultKind, FaultPlan, FaultSpec, MapOn, MapRule, Trigger,
};
pub use storage::{apply_storage_fault, StorageFaultEngine, StorageFaultKind, ALL_STORAGE_FAULTS};
