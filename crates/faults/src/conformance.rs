//! Trace conformance: is the simulated run still a behaviour of the model?
//!
//! The paper's validation argument (§IV-B) rests on the extracted CSP model
//! and the CANoe implementation having the same traces. Under fault
//! injection that correspondence is exactly what an attacker perturbs, so
//! this module closes the loop mechanically:
//!
//! 1. [`lift_trace`] maps the simulation trace to CSP event names using the
//!    plan's `[[map]]` rules (first match wins, unmatched entries drop);
//! 2. the lifted trace becomes the linear process `⟨e₁, e₂, …⟩ → STOP`;
//! 3. [`fdrlite`] checks `SPEC ⊑T ⟨trace⟩`.
//!
//! A conformant run is a trace of the model. A lifted event the model's
//! alphabet does not even name is reported as
//! [`ConformanceVerdict::UnknownEvent`] without running the checker — the
//! run performed something the model cannot express, which is the strongest
//! possible nonconformance.

use canoe_sim::{TraceEntry, TraceEvent};
use csp::Process;
use cspm::LoadedScript;
use fdrlite::{CheckError, CheckOptions, Checker, Counterexample, ModelStore, Verdict};
use std::fmt;

use crate::plan::{ConformanceSpec, MapOn, MapRule};

/// The result of a conformance check.
#[derive(Debug, Clone, PartialEq)]
pub struct ConformanceReport {
    /// The specification process checked against.
    pub spec: String,
    /// The lifted CSP trace (event names, in order).
    pub events: Vec<String>,
    /// The verdict.
    pub verdict: ConformanceVerdict,
}

/// How a conformance check came out.
#[derive(Debug, Clone, PartialEq)]
pub enum ConformanceVerdict {
    /// The lifted trace is a trace of the specification.
    Conformant,
    /// The lifted trace contains an event the model does not name at all.
    UnknownEvent {
        /// The offending event name.
        event: String,
        /// Its position in the lifted trace.
        index: usize,
    },
    /// The specification refuses the lifted trace; the counterexample is
    /// the refused prefix.
    Refuted(Box<Counterexample>),
    /// The refinement check exhausted its resource budget.
    Inconclusive(fdrlite::Inconclusive),
}

impl ConformanceVerdict {
    /// Whether the trace conforms.
    pub fn is_conformant(&self) -> bool {
        matches!(self, ConformanceVerdict::Conformant)
    }
}

/// Errors that prevent a conformance check from running at all.
#[derive(Debug)]
pub enum ConformanceError {
    /// The named specification process is not defined in the script.
    UnknownSpec(String),
    /// The underlying refinement check failed.
    Check(CheckError),
}

impl fmt::Display for ConformanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConformanceError::UnknownSpec(name) => {
                write!(
                    f,
                    "specification process `{name}` is not defined in the model"
                )
            }
            ConformanceError::Check(e) => write!(f, "refinement check failed: {e}"),
        }
    }
}

impl std::error::Error for ConformanceError {}

impl From<CheckError> for ConformanceError {
    fn from(e: CheckError) -> Self {
        ConformanceError::Check(e)
    }
}

/// Lift a simulation trace to CSP event names using `rules` (first match
/// wins; entries no rule matches are dropped).
pub fn lift_trace(trace: &[TraceEntry], rules: &[MapRule]) -> Vec<String> {
    let mut events = Vec::new();
    for entry in trace {
        let (on, node, message) = match &entry.event {
            TraceEvent::Transmit { node, message, .. } => {
                (MapOn::Transmit, Some(node.as_str()), message.as_str())
            }
            TraceEvent::Receive { node, message, .. } => {
                (MapOn::Receive, Some(node.as_str()), message.as_str())
            }
            TraceEvent::Injected { message, .. } => (MapOn::Inject, None, message.as_str()),
            _ => continue,
        };
        for rule in rules {
            if rule.on != on {
                continue;
            }
            if let Some(want) = &rule.node {
                if node != Some(want.as_str()) {
                    continue;
                }
            }
            if let Some(want) = &rule.message {
                if want != message {
                    continue;
                }
            }
            if let Some(event) = rule.emit(message) {
                events.push(event);
            }
            break;
        }
    }
    events
}

/// Check a simulation trace against the plan's conformance section: lift it
/// with the `[[map]]` rules, then check `spec ⊑T ⟨trace⟩`.
pub fn check_conformance(
    loaded: &LoadedScript,
    conf: &ConformanceSpec,
    trace: &[TraceEntry],
    checker: &Checker,
) -> Result<ConformanceReport, ConformanceError> {
    check_conformance_with(loaded, conf, trace, checker, &ModelStore::new())
}

/// Like [`check_conformance`], compiling through a shared [`ModelStore`].
///
/// A fault campaign checks many traces against one specification; with a
/// shared store the spec compiles and normalises once, and every further
/// trace only pays for its own (linear) trace process.
pub fn check_conformance_with(
    loaded: &LoadedScript,
    conf: &ConformanceSpec,
    trace: &[TraceEntry],
    checker: &Checker,
    store: &ModelStore,
) -> Result<ConformanceReport, ConformanceError> {
    let events = lift_trace(trace, &conf.rules);
    check_lifted_with(loaded, &conf.spec, &events, checker, store)
}

/// Check an already-lifted event sequence against a specification process.
pub fn check_lifted(
    loaded: &LoadedScript,
    spec_name: &str,
    events: &[String],
    checker: &Checker,
) -> Result<ConformanceReport, ConformanceError> {
    check_lifted_with(loaded, spec_name, events, checker, &ModelStore::new())
}

/// Like [`check_lifted`], compiling through a shared [`ModelStore`].
pub fn check_lifted_with(
    loaded: &LoadedScript,
    spec_name: &str,
    events: &[String],
    checker: &Checker,
    store: &ModelStore,
) -> Result<ConformanceReport, ConformanceError> {
    let spec = loaded
        .process(spec_name)
        .ok_or_else(|| ConformanceError::UnknownSpec(spec_name.to_string()))?;

    let ids = match loaded.event_ids(events.iter().map(String::as_str)) {
        Ok(ids) => ids,
        Err((index, event)) => {
            return Ok(ConformanceReport {
                spec: spec_name.to_string(),
                events: events.to_vec(),
                verdict: ConformanceVerdict::UnknownEvent {
                    event: event.to_string(),
                    index,
                },
            });
        }
    };

    let trace_process = Process::prefix_chain(ids, Process::Stop);
    let (verdict, _) = store.trace_refinement(
        checker,
        spec,
        &trace_process,
        loaded.definitions(),
        1,
        &CheckOptions::UNBOUNDED,
    )?;
    Ok(ConformanceReport {
        spec: spec_name.to_string(),
        events: events.to_vec(),
        verdict: match verdict {
            Verdict::Pass => ConformanceVerdict::Conformant,
            Verdict::Fail(cex) => ConformanceVerdict::Refuted(Box::new(cex)),
            Verdict::Inconclusive(inc) => ConformanceVerdict::Inconclusive(inc),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlan;

    fn entry(event: TraceEvent) -> TraceEntry {
        TraceEntry { time_us: 0, event }
    }

    fn rules() -> Vec<MapRule> {
        let plan = FaultPlan::parse(
            "[plan]\nname = \"t\"\n[conformance]\nspec = \"SPEC\"\n\
             [[map]]\non = \"receive\"\nnode = \"ECU\"\nevent_prefix = \"rec\"\n\
             [[map]]\non = \"transmit\"\nnode = \"ECU\"\nevent_prefix = \"send\"\n",
        )
        .unwrap();
        plan.conformance.unwrap().rules
    }

    #[test]
    fn lift_applies_first_matching_rule_and_drops_the_rest() {
        let trace = vec![
            entry(TraceEvent::Transmit {
                node: "VMG".into(),
                message: "reqSw".into(),
                id: 256,
                payload: [0; 8],
            }),
            entry(TraceEvent::Receive {
                node: "ECU".into(),
                message: "reqSw".into(),
                id: 256,
                payload: [0; 8],
            }),
            entry(TraceEvent::Transmit {
                node: "ECU".into(),
                message: "rptSw".into(),
                id: 512,
                payload: [0; 8],
            }),
            entry(TraceEvent::Log {
                node: "ECU".into(),
                text: "noise".into(),
            }),
        ];
        assert_eq!(lift_trace(&trace, &rules()), ["rec.reqSw", "send.rptSw"]);
    }

    fn loaded(script: &str) -> LoadedScript {
        cspm::Script::parse(script).unwrap().load().unwrap()
    }

    const MODEL: &str = "
datatype M = req | rpt
channel rec, send : M
SPEC = rec.req -> send.rpt -> SPEC
";

    #[test]
    fn conformant_trace_passes() {
        let loaded = loaded(MODEL);
        let events = vec!["rec.req".to_string(), "send.rpt".to_string()];
        let report = check_lifted(&loaded, "SPEC", &events, &Checker::new()).unwrap();
        assert!(report.verdict.is_conformant(), "{report:?}");
    }

    #[test]
    fn nonconformant_trace_is_refuted_with_counterexample() {
        let loaded = loaded(MODEL);
        let events = vec![
            "rec.req".to_string(),
            "send.rpt".to_string(),
            "send.rpt".to_string(),
        ];
        let report = check_lifted(&loaded, "SPEC", &events, &Checker::new()).unwrap();
        match report.verdict {
            ConformanceVerdict::Refuted(cex) => {
                assert_eq!(cex.trace().len(), 2, "violation after the refused prefix");
            }
            other => panic!("expected refutation, got {other:?}"),
        }
    }

    #[test]
    fn unknown_event_short_circuits() {
        let loaded = loaded(MODEL);
        let events = vec!["rec.req".to_string(), "mystery.7".to_string()];
        let report = check_lifted(&loaded, "SPEC", &events, &Checker::new()).unwrap();
        assert_eq!(
            report.verdict,
            ConformanceVerdict::UnknownEvent {
                event: "mystery.7".to_string(),
                index: 1
            }
        );
    }

    #[test]
    fn shared_store_reuses_the_spec_across_traces() {
        let loaded = loaded(MODEL);
        let checker = Checker::new();
        let store = ModelStore::new();
        let traces: [&[&str]; 3] = [
            &["rec.req"],
            &["rec.req", "send.rpt"],
            &["rec.req", "send.rpt", "send.rpt"],
        ];
        let mut verdicts = Vec::new();
        for events in traces {
            let events: Vec<String> = events.iter().map(ToString::to_string).collect();
            let fresh = check_lifted(&loaded, "SPEC", &events, &checker).unwrap();
            let shared = check_lifted_with(&loaded, "SPEC", &events, &checker, &store).unwrap();
            assert_eq!(fresh.verdict, shared.verdict);
            verdicts.push(shared.verdict);
        }
        assert!(verdicts[0].is_conformant() && verdicts[1].is_conformant());
        assert!(!verdicts[2].is_conformant());
        // The spec compiled and normalised once; the two later traces hit
        // its cached normal form.
        assert_eq!(store.hits(), 2, "misses {}", store.misses());
    }

    #[test]
    fn unknown_spec_is_an_error() {
        let loaded = loaded(MODEL);
        let err = check_lifted(&loaded, "NOPE", &[], &Checker::new()).unwrap_err();
        assert!(matches!(err, ConformanceError::UnknownSpec(_)));
    }
}
