//! Stable `SIM3xx` diagnostic codes for fault-plan analysis.
//!
//! The `SIM` namespace covers the fault-injection subsystem: plan parsing
//! and plan ↔ `.dbc` cross-validation. Like every other code namespace (see
//! `lint::codes`), codes are never renumbered once published in
//! `docs/LINTS.md`; retired codes are not reused.

use diag::Code;

/// `SIM300` — the fault plan failed to parse.
pub const PLAN_PARSE_ERROR: Code = Code("SIM300");
/// `SIM301` — a plan references a frame id absent from the `.dbc`.
pub const UNKNOWN_FRAME_ID: Code = Code("SIM301");
/// `SIM302` — two bus-off faults have overlapping time windows.
pub const BUS_OFF_OVERLAP: Code = Code("SIM302");
/// `SIM303` — a trigger probability is outside `[0, 1]`.
pub const PROBABILITY_RANGE: Code = Code("SIM303");
/// `SIM304` — a time window is empty (`start >= end`), so the fault is inert.
pub const EMPTY_WINDOW: Code = Code("SIM304");
/// `SIM305` — a node-crash fault names a node absent from the `.dbc`.
pub const UNKNOWN_NODE: Code = Code("SIM305");
/// `SIM306` — a corruption byte offset is beyond the 8-byte CAN payload.
pub const CORRUPT_BYTE_RANGE: Code = Code("SIM306");

/// `SIM310` — a trace-corpus JSONL line failed to parse and was skipped.
pub const CORPUS_LINE_MALFORMED: Code = Code("SIM310");
/// `SIM311` — a corpus trace performs an event the model does not name.
pub const CORPUS_UNKNOWN_EVENT: Code = Code("SIM311");
/// `SIM312` — a trace corpus contains no traces at all.
pub const CORPUS_EMPTY: Code = Code("SIM312");
