//! The fault-injection engine: a seeded [`Interceptor`] executing a
//! [`FaultPlan`] against every frame on the simulated bus.

use canoe_sim::{Delivery, FaultRecord, Frame, Interceptor, SimError, Simulation};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::plan::{FaultKind, FaultPlan, FaultSpec};

/// Per-fault runtime state.
#[derive(Debug, Clone)]
struct FaultState {
    spec: FaultSpec,
    /// Matching frames seen so far (drives `every_nth`).
    seen: u64,
    /// Times the fault has fired (drives `max_fires`).
    fires: u64,
    /// The last matching frame, for `replay`.
    recorded: Option<Frame>,
}

impl FaultState {
    /// Whether the trigger fires for `frame` at `time_us`. The probability
    /// draw happens last so that deterministic conditions never consume
    /// random numbers — a plan with `probability` unset consumes none.
    fn triggers(&mut self, frame: &Frame, time_us: u64, rng: &mut SmallRng) -> bool {
        let t = &self.spec.trigger;
        if let Some((from, until)) = t.window {
            if time_us < from || time_us >= until {
                return false;
            }
        }
        if let Some(id) = t.match_id {
            if frame.id != id {
                return false;
            }
        }
        self.seen += 1;
        if let Some(n) = t.every_nth {
            if n == 0 || !self.seen.is_multiple_of(n) {
                return false;
            }
        }
        if let Some(max) = t.max_fires {
            if self.fires >= max {
                return false;
            }
        }
        if let Some(p) = t.probability {
            if !rng.gen_bool(p.clamp(0.0, 1.0)) {
                return false;
            }
        }
        true
    }
}

/// A deterministic, seeded fault-injection interceptor.
///
/// Faults apply to each intercepted frame in plan order; every activation is
/// tagged into the simulation trace as a [`canoe_sim::TraceEvent::Fault`]
/// record carrying the fault's name. All randomness (probabilistic triggers,
/// delay jitter) comes from one [`SmallRng`] seeded by the simulation — same
/// plan, same seed, same CAPL programs ⇒ byte-identical trace.
///
/// `node_crash` faults are *not* executed here (a crash is not a per-frame
/// transformation); [`apply_plan`] turns them into scheduled outages.
#[derive(Debug)]
pub struct FaultEngine {
    states: Vec<FaultState>,
    rng: SmallRng,
    log: Vec<FaultRecord>,
}

impl FaultEngine {
    /// Build an engine from a plan. Node-crash faults are skipped (see
    /// [`apply_plan`]); everything else becomes per-frame state.
    pub fn from_plan(plan: &FaultPlan) -> FaultEngine {
        let states = plan
            .faults
            .iter()
            .filter(|f| !matches!(f.kind, FaultKind::NodeCrash { .. }))
            .map(|spec| FaultState {
                spec: spec.clone(),
                seen: 0,
                fires: 0,
                recorded: None,
            })
            .collect();
        FaultEngine {
            states,
            rng: SmallRng::seed_from_u64(plan.seed.unwrap_or(0)),
            log: Vec::new(),
        }
    }

    fn record(&mut self, fault: &str, action: String, id: u32) {
        self.log.push(FaultRecord {
            fault: fault.to_string(),
            action,
            id,
        });
    }
}

impl Interceptor for FaultEngine {
    fn on_frame(&mut self, frame: &Frame, time_us: u64) -> Vec<Frame> {
        // The simulation always calls `on_frame_timed`; this fallback keeps
        // the trait contract for direct callers but loses delays.
        self.on_frame_timed(frame, time_us)
            .into_iter()
            .map(|d| d.frame)
            .collect()
    }

    fn on_frame_timed(&mut self, frame: &Frame, time_us: u64) -> Vec<Delivery> {
        // `original` is the in-flight frame (transformed in place);
        // `extras` are additional deliveries (duplicates, replays, spoofs).
        let mut original = Some(Delivery::immediate(frame.clone()));
        let mut extras: Vec<Delivery> = Vec::new();

        for i in 0..self.states.len() {
            // Split the borrow: the state is moved out and back so the RNG
            // and log can be borrowed mutably alongside it.
            let mut state = self.states[i].clone();

            // Replay faults record every matching frame, fired or not, so a
            // later trigger replays the most recent observation.
            if matches!(state.spec.kind, FaultKind::Replay { .. }) {
                let id_ok = state.spec.trigger.match_id.is_none_or(|id| id == frame.id);
                if id_ok {
                    state.recorded = Some(frame.clone());
                }
            }

            if !state.triggers(frame, time_us, &mut self.rng) {
                self.states[i] = state;
                continue;
            }
            state.fires += 1;

            let name = state.spec.name.clone();
            match &state.spec.kind {
                FaultKind::Drop => {
                    if original.take().is_some() {
                        self.record(&name, "dropped".to_string(), frame.id);
                    }
                }
                FaultKind::BusOff => {
                    let squelched = usize::from(original.is_some()) + extras.len();
                    if squelched > 0 {
                        original = None;
                        extras.clear();
                        self.record(
                            &name,
                            format!("bus off: squelched {squelched} delivery(s)"),
                            frame.id,
                        );
                    }
                }
                FaultKind::Corrupt { byte, xor } => {
                    if let Some(o) = original.as_mut() {
                        if *byte < 8 {
                            o.frame.payload[*byte] ^= xor;
                            self.record(
                                &name,
                                format!("corrupted byte {byte} (xor {xor:#04x})"),
                                frame.id,
                            );
                        }
                    }
                }
                FaultKind::Delay {
                    delay_us,
                    jitter_us,
                } => {
                    if let Some(o) = original.as_mut() {
                        let jitter = if *jitter_us > 0 {
                            self.rng.gen_range(0..jitter_us + 1)
                        } else {
                            0
                        };
                        o.delay_us += delay_us + jitter;
                        self.record(
                            &name,
                            format!("delayed by {} us", delay_us + jitter),
                            frame.id,
                        );
                    }
                }
                FaultKind::Duplicate { copies } => {
                    if let Some(o) = original.as_ref() {
                        for _ in 0..*copies {
                            extras.push(o.clone());
                        }
                        self.record(&name, format!("duplicated x{copies}"), frame.id);
                    }
                }
                FaultKind::Replay { delay_us } => {
                    if let Some(rec) = state.recorded.clone() {
                        let id = rec.id;
                        extras.push(Delivery {
                            frame: rec,
                            delay_us: *delay_us,
                            from_external: true,
                        });
                        self.record(&name, format!("replayed after {delay_us} us"), id);
                    }
                }
                FaultKind::Spoof { id, payload, dlc } => {
                    extras.push(Delivery {
                        frame: Frame {
                            id: *id,
                            dlc: (*dlc).min(8),
                            payload: *payload,
                        },
                        delay_us: 0,
                        from_external: true,
                    });
                    self.record(&name, format!("spoofed frame {id} (0x{id:X})"), *id);
                }
                FaultKind::NodeCrash { .. } => {} // handled by apply_plan
            }
            self.states[i] = state;
        }

        original.into_iter().chain(extras).collect()
    }

    fn set_seed(&mut self, seed: u64) {
        self.rng = SmallRng::seed_from_u64(seed);
    }

    fn drain_fault_log(&mut self) -> Vec<FaultRecord> {
        std::mem::take(&mut self.log)
    }
}

/// Install a plan on a simulation: seed it, mount the [`FaultEngine`] and
/// schedule every `node_crash` fault as a node outage.
///
/// The seed precedence is `seed_override` (e.g. `autocsp simulate --seed`),
/// then the plan's `[plan] seed`, then the simulation's default. Errors
/// surface only from outage scheduling (unknown node names).
pub fn apply_plan(
    sim: &mut Simulation,
    plan: &FaultPlan,
    seed_override: Option<u64>,
) -> Result<(), SimError> {
    if let Some(seed) = seed_override.or(plan.seed) {
        sim.set_seed(seed);
    }
    for fault in &plan.faults {
        if let FaultKind::NodeCrash {
            node,
            from_us,
            until_us,
        } = &fault.kind
        {
            sim.schedule_outage(node, *from_us, *until_us)?;
        }
    }
    sim.set_interceptor(Box::new(FaultEngine::from_plan(plan)));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlan;

    fn plan(body: &str) -> FaultPlan {
        FaultPlan::parse(&format!("[plan]\nname = \"t\"\n{body}")).expect("plan parses")
    }

    fn frame(id: u32) -> Frame {
        Frame::new(id, 8)
    }

    #[test]
    fn drop_removes_the_original() {
        let p = plan("[[fault]]\nname = \"d\"\nkind = \"drop\"\nmatch_id = 5\n");
        let mut e = FaultEngine::from_plan(&p);
        assert!(e.on_frame_timed(&frame(5), 0).is_empty());
        assert_eq!(e.on_frame_timed(&frame(6), 0).len(), 1);
        let log = e.drain_fault_log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].fault, "d");
        assert_eq!(log[0].action, "dropped");
    }

    #[test]
    fn every_nth_counts_matching_frames_only() {
        let p = plan("[[fault]]\nname = \"d\"\nkind = \"drop\"\nmatch_id = 5\nevery_nth = 2\n");
        let mut e = FaultEngine::from_plan(&p);
        assert_eq!(e.on_frame_timed(&frame(5), 0).len(), 1); // 1st match: kept
        assert_eq!(e.on_frame_timed(&frame(9), 0).len(), 1); // non-match
        assert!(e.on_frame_timed(&frame(5), 0).is_empty()); // 2nd match: dropped
        assert_eq!(e.on_frame_timed(&frame(5), 0).len(), 1); // 3rd match: kept
    }

    #[test]
    fn corrupt_flips_the_requested_byte() {
        let p = plan("[[fault]]\nname = \"c\"\nkind = \"corrupt\"\nbyte = 2\nxor = 0x0F\n");
        let mut e = FaultEngine::from_plan(&p);
        let mut f = frame(1);
        f.payload[2] = 0xF0;
        let out = e.on_frame_timed(&f, 0);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].frame.payload[2], 0xFF);
        assert_eq!(out[0].delay_us, 0);
    }

    #[test]
    fn delay_with_jitter_is_deterministic_per_seed() {
        let p = plan(
            "seed = 9\n[[fault]]\nname = \"j\"\nkind = \"delay\"\ndelay_us = 100\njitter_us = 50\n",
        );
        let run = |p: &FaultPlan| {
            let mut e = FaultEngine::from_plan(p);
            (0..10)
                .map(|i| e.on_frame_timed(&frame(i), 0)[0].delay_us)
                .collect::<Vec<_>>()
        };
        let a = run(&p);
        let b = run(&p);
        assert_eq!(a, b, "same seed must give identical jitter");
        assert!(a.iter().all(|&d| (100..=150).contains(&d)), "{a:?}");
    }

    #[test]
    fn duplicate_adds_copies() {
        let p = plan("[[fault]]\nname = \"2x\"\nkind = \"duplicate\"\ncopies = 2\n");
        let mut e = FaultEngine::from_plan(&p);
        let out = e.on_frame_timed(&frame(7), 0);
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|d| d.frame.id == 7 && !d.from_external));
    }

    #[test]
    fn replay_redelivers_the_recorded_frame_externally() {
        let p = plan(
            "[[fault]]\nname = \"r\"\nkind = \"replay\"\nmatch_id = 257\n\
             every_nth = 2\ndelay_us = 500\nmax_fires = 1\n",
        );
        let mut e = FaultEngine::from_plan(&p);
        let mut first = frame(257);
        first.payload[0] = 0xAA;
        assert_eq!(e.on_frame_timed(&first, 0).len(), 1); // recorded, not fired
        let mut second = frame(257);
        second.payload[0] = 0xBB;
        let out = e.on_frame_timed(&second, 10);
        assert_eq!(out.len(), 2);
        assert!(!out[0].from_external);
        assert!(out[1].from_external);
        assert_eq!(out[1].frame.payload[0], 0xBB, "replays the latest match");
        assert_eq!(out[1].delay_us, 500);
        // max_fires = 1: the third frame passes untouched.
        assert_eq!(e.on_frame_timed(&frame(257), 20).len(), 1);
    }

    #[test]
    fn spoof_forges_an_external_frame() {
        let p = plan(
            "[[fault]]\nname = \"s\"\nkind = \"spoof\"\nid = 99\npayload = [1, 2]\nevery_nth = 2\n",
        );
        let mut e = FaultEngine::from_plan(&p);
        assert_eq!(e.on_frame_timed(&frame(1), 0).len(), 1);
        let out = e.on_frame_timed(&frame(1), 0);
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].frame.id, 99);
        assert_eq!(out[1].frame.payload[1], 2);
        assert!(out[1].from_external);
    }

    #[test]
    fn bus_off_window_squelches_everything() {
        let p = plan(
            "[[fault]]\nname = \"2x\"\nkind = \"duplicate\"\ncopies = 1\n\
             [[fault]]\nname = \"off\"\nkind = \"bus_off\"\nwindow = [100, 200]\n",
        );
        let mut e = FaultEngine::from_plan(&p);
        assert_eq!(e.on_frame_timed(&frame(1), 50).len(), 2); // before window
        assert!(e.on_frame_timed(&frame(1), 150).is_empty()); // inside
        assert_eq!(e.on_frame_timed(&frame(1), 200).len(), 2); // after (exclusive)
    }

    #[test]
    fn set_seed_overrides_the_plan_seed() {
        let p = plan("seed = 1\n[[fault]]\nname = \"p\"\nkind = \"drop\"\nprobability = 0.5\n");
        let run = |seed: Option<u64>| {
            let mut e = FaultEngine::from_plan(&p);
            if let Some(s) = seed {
                e.set_seed(s);
            }
            (0..64)
                .map(|i| !e.on_frame_timed(&frame(i), 0).is_empty())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(Some(2)), run(Some(2)));
        assert_ne!(
            run(Some(2)),
            run(Some(3)),
            "different seeds should pick different frames"
        );
    }

    #[test]
    fn zero_active_faults_pass_everything_unchanged() {
        let p = plan("");
        let mut e = FaultEngine::from_plan(&p);
        let f = frame(42);
        let out = e.on_frame_timed(&f, 123);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].frame, f);
        assert_eq!(out[0].delay_us, 0);
        assert!(!out[0].from_external);
        assert!(e.drain_fault_log().is_empty());
    }
}
