//! High-throughput batch conformance: thousands of traces, one spec walk.
//!
//! The per-trace loop in [`crate::conformance`] pays the full product
//! machinery for every observed trace, even though a fault campaign's
//! traces overwhelmingly share prefixes (same plan, same stimulus, faults
//! diverge late). This module is the streaming batch engine on top of
//! [`fdrlite::hypertrace`]:
//!
//! 1. the specification is normalised **once**, through the shared
//!    [`ModelStore`] (so a warm store serves it from cache);
//! 2. every ingested trace is lifted to event ids and merged into a
//!    hypertrace prefix trie ([`BatchRun::push`] — bounded memory: the
//!    run holds the trie and one verdict slot per trace, never the corpus
//!    text);
//! 3. [`BatchRun::finish`] checks the whole trie in one deterministic DAG
//!    walk, parallelised by sharding subtrees, and recovers per-trace
//!    verdicts from the trie leaves.
//!
//! Verdicts are **verbatim identical** to running
//! [`crate::conformance::check_lifted_with`] on each trace — including
//! counterexample traces and first-unknown-event reporting — at any thread
//! count and for any ingest order (a property test pins this).
//!
//! Corpus files use JSON Lines: one trace per line, either a bare array of
//! event names or an object with an optional `id` and an `events` array.
//! [`parse_corpus`] reports malformed lines as `SIM310` warnings with
//! line/column spans and skips them; [`codes::CORPUS_UNKNOWN_EVENT`]
//! (`SIM311`) and [`codes::CORPUS_EMPTY`] (`SIM312`) cover the other
//! corpus-hygiene findings.

use std::fmt;
use std::time::{Duration, Instant};

use canoe_sim::TraceEntry;
use cspm::LoadedScript;
use diag::json;
use diag::{Diagnostic, Span};
use fdrlite::{hypertrace, Checker, ModelStore, NormalisedLts, Verdict};
use std::sync::Arc;

use crate::codes;
use crate::conformance::{lift_trace, ConformanceError, ConformanceVerdict};
use crate::plan::MapRule;

// ---------------------------------------------------------------------------
// Streaming batch run
// ---------------------------------------------------------------------------

/// A streaming batch-conformance run against one specification process.
///
/// Create with [`BatchRun::new`] (normalises the spec once through the
/// store), [`BatchRun::push`] each lifted trace as it arrives, then
/// [`BatchRun::finish`] for the verdicts. Memory is bounded by the trie —
/// traces sharing prefixes share nodes — plus one verdict slot per trace.
pub struct BatchRun<'a> {
    loaded: &'a LoadedScript,
    spec: String,
    norm: Arc<NormalisedLts>,
    trie: hypertrace::TraceTrie,
    /// One slot per ingested trace; pre-resolved for unknown-event traces
    /// (they never enter the trie), `None` until the walk for the rest.
    resolved: Vec<Option<ConformanceVerdict>>,
    ingest_wall: Duration,
    store_hits: u64,
    store_misses: u64,
}

impl<'a> BatchRun<'a> {
    /// Start a batch run: resolve `spec_name` and normalise it through
    /// `store` (a warm store serves the normal form from cache).
    ///
    /// # Errors
    ///
    /// [`ConformanceError::UnknownSpec`] when the script does not define
    /// `spec_name`; [`ConformanceError::Check`] when normalisation exceeds
    /// the checker's hard bounds.
    pub fn new(
        loaded: &'a LoadedScript,
        spec_name: &str,
        checker: &Checker,
        store: &ModelStore,
    ) -> Result<BatchRun<'a>, ConformanceError> {
        let spec = loaded
            .process(spec_name)
            .ok_or_else(|| ConformanceError::UnknownSpec(spec_name.to_string()))?;
        let hits = store.hits();
        let misses = store.misses();
        let norm = store.normalised(checker, spec, loaded.definitions())?;
        Ok(BatchRun {
            loaded,
            spec: spec_name.to_string(),
            norm,
            trie: hypertrace::TraceTrie::new(),
            resolved: Vec::new(),
            ingest_wall: Duration::ZERO,
            store_hits: store.hits() - hits,
            store_misses: store.misses() - misses,
        })
    }

    /// Ingest one lifted trace; returns its index (ingest order).
    ///
    /// A trace performing an event the model does not name is resolved to
    /// [`ConformanceVerdict::UnknownEvent`] immediately — first unknown
    /// wins, exactly as the per-trace loop reports it — and does not enter
    /// the trie.
    pub fn push(&mut self, events: &[String]) -> usize {
        let start = Instant::now();
        let index = self.resolved.len();
        match self.loaded.event_ids(events.iter().map(String::as_str)) {
            Ok(ids) => {
                self.trie.insert(&ids, index as u32);
                self.resolved.push(None);
            }
            Err((at, event)) => {
                self.resolved.push(Some(ConformanceVerdict::UnknownEvent {
                    event: event.to_string(),
                    index: at,
                }));
            }
        }
        self.ingest_wall += start.elapsed();
        index
    }

    /// Lift a raw simulation trace through `rules` and ingest it; returns
    /// the trace index and the lifted event names.
    pub fn push_entries(
        &mut self,
        trace: &[TraceEntry],
        rules: &[MapRule],
    ) -> (usize, Vec<String>) {
        let events = lift_trace(trace, rules);
        let index = self.push(&events);
        (index, events)
    }

    /// Number of traces ingested so far.
    pub fn len(&self) -> usize {
        self.resolved.len()
    }

    /// Whether no trace has been ingested yet.
    pub fn is_empty(&self) -> bool {
        self.resolved.is_empty()
    }

    /// Check the whole hypertrace in one DAG walk (sharded over `threads`
    /// workers) and recover per-trace verdicts, in ingest order.
    pub fn finish(self, threads: usize) -> BatchReport {
        let start = Instant::now();
        let walked = hypertrace::check(&self.norm, &self.trie, threads.max(1));
        let check_wall = start.elapsed();

        let mut verdicts: Vec<ConformanceVerdict> = self
            .resolved
            .into_iter()
            .map(|slot| slot.unwrap_or(ConformanceVerdict::Conformant))
            .collect();
        for (tag, verdict) in walked {
            verdicts[tag as usize] = match verdict {
                Verdict::Pass => ConformanceVerdict::Conformant,
                Verdict::Fail(cex) => ConformanceVerdict::Refuted(Box::new(cex)),
                // The walk is bounded by the trie; no budget can trip. Kept
                // total so a future budgeted walk stays representable.
                Verdict::Inconclusive(inc) => ConformanceVerdict::Inconclusive(inc),
            };
        }

        let mut conformant = 0u64;
        let mut refuted = 0u64;
        let mut unknown_event = 0u64;
        for v in &verdicts {
            match v {
                ConformanceVerdict::Conformant => conformant += 1,
                ConformanceVerdict::Refuted(_) => refuted += 1,
                ConformanceVerdict::UnknownEvent { .. } => unknown_event += 1,
                ConformanceVerdict::Inconclusive(_) => {}
            }
        }
        let stats = BatchStats {
            threads: threads.max(1),
            traces: verdicts.len() as u64,
            conformant,
            refuted,
            unknown_event,
            total_events: self.trie.total_events(),
            trie_nodes: self.trie.node_count() as u64,
            dedup_ratio: self.trie.dedup_ratio(),
            norm_nodes: self.norm.node_count() as u64,
            store_hits: self.store_hits,
            store_misses: self.store_misses,
            ingest_wall: self.ingest_wall,
            check_wall,
        };
        BatchReport {
            spec: self.spec,
            verdicts,
            stats,
        }
    }
}

/// The outcome of a [`BatchRun`]: per-trace verdicts in ingest order plus
/// run-level statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// The specification process checked against.
    pub spec: String,
    /// One verdict per ingested trace, in ingest order.
    pub verdicts: Vec<ConformanceVerdict>,
    /// Dedup/throughput counters for `--stats` and the bench harness.
    pub stats: BatchStats,
}

impl BatchReport {
    /// Whether every trace conformed.
    pub fn all_conformant(&self) -> bool {
        self.verdicts.iter().all(ConformanceVerdict::is_conformant)
    }
}

/// Counters and timings from one batch-conformance run, printable for
/// humans (`autocsp conform --stats`) and serialisable as JSON for the
/// benchmark harness — the [`fdrlite::CheckStats`] idiom for the batch
/// pipeline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchStats {
    /// Worker threads used for the trie walk.
    pub threads: usize,
    /// Traces ingested.
    pub traces: u64,
    /// Traces that are traces of the specification.
    pub conformant: u64,
    /// Traces the specification refuses.
    pub refuted: u64,
    /// Traces performing an event the model does not name.
    pub unknown_event: u64,
    /// Sum of ingested trace lengths (events before deduplication).
    pub total_events: u64,
    /// Trie nodes, including the root (`trie_nodes - 1` distinct prefixes).
    pub trie_nodes: u64,
    /// Ingested events per distinct trie edge (≥ 1; higher = more sharing).
    pub dedup_ratio: f64,
    /// Nodes of the spec's normal form.
    pub norm_nodes: u64,
    /// Compiled artifacts served from the model store while normalising.
    pub store_hits: u64,
    /// Compiled artifacts the model store had to build fresh.
    pub store_misses: u64,
    /// Wall-clock time spent lifting/interning/merging traces.
    pub ingest_wall: Duration,
    /// Wall-clock time of the trie walk (including verdict recovery).
    pub check_wall: Duration,
}

impl BatchStats {
    /// End-to-end throughput: traces per second of ingest + walk wall time
    /// (spec normalisation is a one-off and excluded).
    pub fn traces_per_sec(&self) -> f64 {
        let secs = (self.ingest_wall + self.check_wall).as_secs_f64();
        if secs > 0.0 {
            self.traces as f64 / secs
        } else {
            0.0
        }
    }

    /// Render as a single JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"threads\":{},\"traces\":{},\"conformant\":{},\"refuted\":{},\
             \"unknown_event\":{},\"total_events\":{},\"trie_nodes\":{},\
             \"dedup_ratio\":{:.3},\"norm_nodes\":{},\"store_hits\":{},\
             \"store_misses\":{},\"ingest_us\":{},\"check_us\":{},\
             \"traces_per_sec\":{:.1}}}",
            self.threads,
            self.traces,
            self.conformant,
            self.refuted,
            self.unknown_event,
            self.total_events,
            self.trie_nodes,
            self.dedup_ratio,
            self.norm_nodes,
            self.store_hits,
            self.store_misses,
            self.ingest_wall.as_micros(),
            self.check_wall.as_micros(),
            self.traces_per_sec(),
        )
    }
}

impl fmt::Display for BatchStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} trace(s) ({:.0}/s), {} event(s) deduped into {} trie node(s) \
             (×{:.2} sharing), norm {} node(s), wall {:.3} ms (ingest {:.3} + walk {:.3}), \
             store {}/{} hit, {} thread(s)",
            self.traces,
            self.traces_per_sec(),
            self.total_events,
            self.trie_nodes,
            self.dedup_ratio,
            self.norm_nodes,
            (self.ingest_wall + self.check_wall).as_secs_f64() * 1e3,
            self.ingest_wall.as_secs_f64() * 1e3,
            self.check_wall.as_secs_f64() * 1e3,
            self.store_hits,
            self.store_hits + self.store_misses,
            self.threads,
        )
    }
}

// ---------------------------------------------------------------------------
// JSONL corpus ingest
// ---------------------------------------------------------------------------

/// One parsed corpus line: an optional caller-facing id plus the lifted
/// event names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusLine {
    /// The object form's `id` field, when present.
    pub id: Option<String>,
    /// The trace's event names, in order.
    pub events: Vec<String>,
}

/// Parse one JSONL corpus line: `["e1","e2"]` or
/// `{"id":"…","events":["e1","e2"]}` (unknown object keys are ignored).
///
/// # Errors
///
/// `(column, message)` of the first syntax or shape problem (1-based).
pub fn parse_trace_line(line: &str) -> Result<CorpusLine, (u32, String)> {
    let value = json::parse(line).map_err(|e| (e.col, e.message))?;
    match value {
        json::Value::Array(items) => Ok(CorpusLine {
            id: None,
            events: event_names(items)?,
        }),
        json::Value::Object(fields) => {
            let mut id = None;
            let mut events = None;
            for (key, value) in fields {
                match (key.as_str(), value) {
                    ("id", json::Value::String(s)) => id = Some(s),
                    ("id", _) => return Err((1, "`id` must be a string".into())),
                    ("events", json::Value::Array(items)) => {
                        events = Some(event_names(items)?);
                    }
                    ("events", _) => {
                        return Err((1, "`events` must be an array of strings".into()));
                    }
                    _ => {} // forward compatibility: ignore unknown keys
                }
            }
            match events {
                Some(events) => Ok(CorpusLine { id, events }),
                None => Err((1, "object form needs an `events` array".into())),
            }
        }
        _ => Err((
            1,
            "expected a JSON array of event names or an object with an `events` array".into(),
        )),
    }
}

fn event_names(items: Vec<json::Value>) -> Result<Vec<String>, (u32, String)> {
    items
        .into_iter()
        .enumerate()
        .map(|(i, v)| match v {
            json::Value::String(s) => Ok(s),
            _ => Err((1, format!("event #{i} is not a string"))),
        })
        .collect()
}

/// Parse a whole JSONL corpus. Blank lines are skipped; a malformed line
/// is reported as a `SIM310` warning (with its line/column span) and
/// skipped, so one bad line does not sink a five-thousand-trace corpus.
///
/// Returns `(line_number, trace)` pairs in file order plus the
/// diagnostics.
pub fn parse_corpus(source: &str) -> (Vec<(u32, CorpusLine)>, Vec<Diagnostic>) {
    let mut traces = Vec::new();
    let mut diagnostics = Vec::new();
    for (i, line) in source.lines().enumerate() {
        let line_no = (i + 1) as u32;
        if line.trim().is_empty() {
            continue;
        }
        match parse_trace_line(line) {
            Ok(trace) => traces.push((line_no, trace)),
            Err((col, message)) => diagnostics.push(
                Diagnostic::warning(
                    codes::CORPUS_LINE_MALFORMED,
                    Span::point(line_no, col),
                    format!("malformed trace line: {message}"),
                )
                .with_note(
                    "the line is skipped; expected [\"e1\",\"e2\"] or \
                     {\"id\":\"…\",\"events\":[\"e1\",\"e2\"]}",
                ),
            ),
        }
    }
    (traces, diagnostics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance::check_lifted_with;

    fn loaded(script: &str) -> LoadedScript {
        cspm::Script::parse(script).unwrap().load().unwrap()
    }

    const MODEL: &str = "
datatype M = req | rpt
channel rec, send : M
SPEC = rec.req -> send.rpt -> SPEC
";

    fn corpus() -> Vec<Vec<String>> {
        let raw: &[&[&str]] = &[
            &[],
            &["rec.req"],
            &["rec.req", "send.rpt"],
            &["rec.req", "send.rpt", "rec.req"],
            &["rec.req", "send.rpt", "send.rpt"],
            &["send.rpt"],
            &["rec.req", "mystery.7"],
            &["mystery.7", "send.rpt"],
        ];
        raw.iter()
            .map(|t| t.iter().map(ToString::to_string).collect())
            .collect()
    }

    #[test]
    fn batch_matches_the_sequential_loop_verbatim() {
        let loaded = loaded(MODEL);
        let checker = Checker::new();
        for threads in [1, 8] {
            let store = ModelStore::new();
            let mut run = BatchRun::new(&loaded, "SPEC", &checker, &store).unwrap();
            for trace in corpus() {
                run.push(&trace);
            }
            let report = run.finish(threads);
            let sequential = ModelStore::new();
            for (i, trace) in corpus().iter().enumerate() {
                let expected = check_lifted_with(&loaded, "SPEC", trace, &checker, &sequential)
                    .unwrap()
                    .verdict;
                assert_eq!(
                    report.verdicts[i], expected,
                    "trace #{i}, {threads} thread(s)"
                );
            }
        }
    }

    #[test]
    fn stats_count_verdicts_and_sharing() {
        let loaded = loaded(MODEL);
        let checker = Checker::new();
        let store = ModelStore::new();
        let mut run = BatchRun::new(&loaded, "SPEC", &checker, &store).unwrap();
        for trace in corpus() {
            run.push(&trace);
        }
        let report = run.finish(1);
        let s = &report.stats;
        assert_eq!(s.traces, 8);
        // SPEC is cyclic, so ⟨req, rpt, req⟩ conforms too.
        assert_eq!(s.conformant, 4);
        assert_eq!(s.refuted, 2);
        assert_eq!(s.unknown_event, 2);
        assert!(s.dedup_ratio > 1.0, "shared ⟨rec.req, send.rpt⟩ prefix");
        assert!(s.norm_nodes >= 2);
        let json = s.to_json();
        for key in [
            "\"traces\":8",
            "\"conformant\":4",
            "\"refuted\":2",
            "\"unknown_event\":2",
            "\"dedup_ratio\":",
            "\"ingest_us\":",
            "\"check_us\":",
            "\"traces_per_sec\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let text = s.to_string();
        assert!(text.contains("8 trace(s)"), "{text}");
    }

    #[test]
    fn spec_normalises_once_and_warm_stores_hit() {
        let loaded = loaded(MODEL);
        let checker = Checker::new();
        let store = ModelStore::new();
        let first = BatchRun::new(&loaded, "SPEC", &checker, &store).unwrap();
        assert_eq!(first.store_hits, 0);
        assert!(first.store_misses > 0);
        let second = BatchRun::new(&loaded, "SPEC", &checker, &store).unwrap();
        assert!(
            second.store_hits > 0,
            "warm store must serve the normal form"
        );
        assert_eq!(second.store_misses, 0);
    }

    #[test]
    fn unknown_spec_is_an_error() {
        let loaded = loaded(MODEL);
        let Err(err) = BatchRun::new(&loaded, "NOPE", &Checker::new(), &ModelStore::new()) else {
            panic!("unknown spec must not start a run")
        };
        assert!(matches!(err, ConformanceError::UnknownSpec(_)));
    }

    #[test]
    fn jsonl_lines_parse_in_both_shapes() {
        assert_eq!(
            parse_trace_line(r#"["rec.req","send.rpt"]"#).unwrap(),
            CorpusLine {
                id: None,
                events: vec!["rec.req".into(), "send.rpt".into()],
            }
        );
        assert_eq!(
            parse_trace_line(r#"{"id":"run-1","events":["rec.req"],"meta":{"n":1}}"#).unwrap(),
            CorpusLine {
                id: Some("run-1".into()),
                events: vec!["rec.req".into()],
            }
        );
        assert_eq!(
            parse_trace_line(r#"{"events":[]}"#).unwrap().events,
            Vec::<String>::new()
        );
        assert_eq!(
            parse_trace_line(r#"["escé\n"]"#).unwrap().events,
            vec!["escé\n".to_string()]
        );
    }

    #[test]
    fn jsonl_rejects_malformed_lines_with_columns() {
        for (line, expect) in [
            ("", "expected a JSON value"),
            ("[1]", "not a string"),
            ("\"just-a-string\"", "expected a JSON array"),
            ("{\"id\":\"x\"}", "needs an `events` array"),
            ("[\"a\",]", "expected a JSON value"),
            ("[\"a\" \"b\"]", "expected `,` or `]`"),
            ("[\"unterminated]", "unterminated string"),
        ] {
            let (col, message) = parse_trace_line(line).unwrap_err();
            assert!(message.contains(expect), "`{line}`: {message}");
            assert!(col >= 1);
        }
    }

    #[test]
    fn corpus_parse_skips_bad_lines_with_sim310() {
        let source = "[\"rec.req\"]\n\nnot json\n{\"events\":[\"send.rpt\"]}\n";
        let (traces, diagnostics) = parse_corpus(source);
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].0, 1);
        assert_eq!(traces[1].0, 4);
        assert_eq!(diagnostics.len(), 1);
        assert_eq!(diagnostics[0].code, codes::CORPUS_LINE_MALFORMED);
        assert_eq!(diagnostics[0].span.line, 3);
    }
}
