//! Deterministic storage-fault injection for the persistent model store.
//!
//! [`fdrlite::PersistentCache`] exposes a [`StorageFaultHook`] that sees
//! every encoded cache entry immediately before it is written. This module
//! provides the seeded implementation of that hook: a [`StorageFaultEngine`]
//! that corrupts a deterministic subset of writes with torn writes,
//! truncation, bit flips, stale format versions and dropped writes — the
//! storage analogue of the bus-level [`crate::FaultEngine`].
//!
//! The contract under test is the cache's degradation guarantee: a
//! corrupted entry must never surface as a wrong compiled model or a wrong
//! verdict. It must either be rejected on load (checksum / version /
//! structure) and quarantined with an `STO4xx` diagnostic, or never land on
//! disk at all. Same seed + same write sequence ⇒ the same faults, so a CI
//! failure replays exactly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use fdrlite::StorageFaultHook;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// FNV-1a offset basis (the cache's trailing-checksum algorithm).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// The ways a cache write can go wrong on its way to disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageFaultKind {
    /// Crash before the rename: the write never lands (hook returns
    /// `false`).
    DropWrite,
    /// Torn write: only a prefix of the entry reaches disk.
    TornWrite,
    /// Truncation: the trailing bytes — including the checksum — are lost.
    Truncate,
    /// A single bit flip somewhere in the entry body.
    BitFlip,
    /// The header claims an unknown format version. The trailing checksum
    /// is re-computed so that *only* the version check can reject the
    /// entry — this exercises the `STO402` path rather than `STO401`.
    StaleVersion,
}

/// Every storage fault kind, in a fixed order (used by the fuzz tests to
/// sweep the full matrix).
pub const ALL_STORAGE_FAULTS: [StorageFaultKind; 5] = [
    StorageFaultKind::DropWrite,
    StorageFaultKind::TornWrite,
    StorageFaultKind::Truncate,
    StorageFaultKind::BitFlip,
    StorageFaultKind::StaleVersion,
];

/// A seeded [`StorageFaultHook`]: corrupts every `every_nth` write with a
/// fault kind drawn deterministically from the seed.
///
/// With `every_nth == 1` every write is faulted; with `every_nth == 3`
/// writes 3, 6, 9, … are. All counters and the per-write fault log are
/// observable afterwards, so a test can assert both that faults were
/// actually injected and that the cache degraded cleanly.
pub struct StorageFaultEngine {
    kinds: Vec<StorageFaultKind>,
    every_nth: u64,
    rng: Mutex<SmallRng>,
    seen: AtomicU64,
    injected: AtomicU64,
    log: Mutex<Vec<(String, StorageFaultKind)>>,
}

impl std::fmt::Debug for StorageFaultEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StorageFaultEngine")
            .field("kinds", &self.kinds)
            .field("every_nth", &self.every_nth)
            .field("seen", &self.seen.load(Ordering::Relaxed))
            .field("injected", &self.injected.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl StorageFaultEngine {
    /// An engine that faults every `every_nth` write, cycling kinds drawn
    /// from `kinds` with the seeded generator. Empty `kinds` falls back to
    /// the full [`ALL_STORAGE_FAULTS`] matrix; `every_nth == 0` is treated
    /// as 1.
    pub fn new(seed: u64, kinds: &[StorageFaultKind], every_nth: u64) -> StorageFaultEngine {
        let kinds = if kinds.is_empty() {
            ALL_STORAGE_FAULTS.to_vec()
        } else {
            kinds.to_vec()
        };
        StorageFaultEngine {
            kinds,
            every_nth: every_nth.max(1),
            rng: Mutex::new(SmallRng::seed_from_u64(seed)),
            seen: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            log: Mutex::new(Vec::new()),
        }
    }

    /// An engine that faults *every* write with the full fault matrix.
    pub fn all(seed: u64) -> StorageFaultEngine {
        StorageFaultEngine::new(seed, &[], 1)
    }

    /// Writes observed so far (faulted or not).
    pub fn writes_seen(&self) -> u64 {
        self.seen.load(Ordering::Relaxed)
    }

    /// Faults actually injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// The `(entry name, fault kind)` log, in write order.
    pub fn log(&self) -> Vec<(String, StorageFaultKind)> {
        self.log.lock().expect("fault log poisoned").clone()
    }

    fn record(&self, name: &str, kind: StorageFaultKind) {
        self.injected.fetch_add(1, Ordering::Relaxed);
        self.log
            .lock()
            .expect("fault log poisoned")
            .push((name.to_string(), kind));
    }
}

/// Apply `kind` to an encoded cache entry in place. Returns `false` when
/// the write should be suppressed entirely (`DropWrite`, or a torn write
/// that tore before the first byte).
///
/// Exposed so the fuzz tests can drive each mutation directly against
/// bytes already on disk, not only through the write hook.
pub fn apply_storage_fault(
    kind: StorageFaultKind,
    bytes: &mut Vec<u8>,
    rng: &mut SmallRng,
) -> bool {
    match kind {
        StorageFaultKind::DropWrite => false,
        StorageFaultKind::TornWrite => {
            let cut = rng.gen_range(0..bytes.len().max(1));
            bytes.truncate(cut);
            !bytes.is_empty()
        }
        StorageFaultKind::Truncate => {
            let max_lost = bytes.len().clamp(1, 8);
            let lost = rng.gen_range(1..max_lost + 1);
            bytes.truncate(bytes.len().saturating_sub(lost));
            !bytes.is_empty()
        }
        StorageFaultKind::BitFlip => {
            if bytes.is_empty() {
                return false;
            }
            let at = rng.gen_range(0..bytes.len());
            let bit = rng.gen_range(0..8u8);
            bytes[at] ^= 1 << bit;
            true
        }
        StorageFaultKind::StaleVersion => {
            // Entry layout: 8-byte magic, 4-byte LE version, body,
            // 8-byte LE FNV-1a checksum over everything before it.
            if bytes.len() < 21 {
                return false;
            }
            let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4-byte slice"));
            let bumped = version.wrapping_add(1 + rng.gen_range(0..1000));
            bytes[8..12].copy_from_slice(&bumped.to_le_bytes());
            // Re-fix the checksum so only the version check can fire.
            let body_end = bytes.len() - 8;
            let sum = fnv1a64(&bytes[..body_end]);
            bytes[body_end..].copy_from_slice(&sum.to_le_bytes());
            true
        }
    }
}

/// A deterministic transient-failure plan for supervised job runs
/// (`autocsp run`, `fdrlite::supervisor`): a seeded selection of jobs
/// whose first attempts fail with a *retryable* error.
///
/// Selection hashes the job *name* (not its position), so inserting or
/// reordering manifest jobs does not reshuffle which ones fail — and the
/// same plan produces the same retries in a disturbed and an undisturbed
/// run, which is what lets the supervision CI matrix diff their verdicts
/// byte for byte.
#[derive(Debug)]
pub struct TransientJobFaults {
    seed: u64,
    transient_attempts: u32,
    every_nth: u64,
    injected: AtomicU64,
}

impl TransientJobFaults {
    /// A plan that makes every `every_nth`-th job (by seeded name hash)
    /// fail transiently on its first `transient_attempts` attempts.
    /// `every_nth == 0` selects no jobs.
    pub fn new(seed: u64, transient_attempts: u32, every_nth: u64) -> TransientJobFaults {
        TransientJobFaults {
            seed,
            transient_attempts,
            every_nth,
            injected: AtomicU64::new(0),
        }
    }

    /// Whether this plan selects the job at all.
    pub fn selects(&self, job_name: &str) -> bool {
        if self.every_nth == 0 {
            return false;
        }
        let mut keyed = self.seed.to_le_bytes().to_vec();
        keyed.extend_from_slice(job_name.as_bytes());
        fnv1a64(&keyed).is_multiple_of(self.every_nth)
    }

    /// Whether attempt `attempt` (1-based) of `job_name` should fail
    /// transiently. Records the injection when it does.
    pub fn should_fail(&self, job_name: &str, attempt: u32) -> bool {
        let fail = self.selects(job_name) && attempt <= self.transient_attempts;
        if fail {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        fail
    }

    /// Transient failures injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
}

impl StorageFaultHook for StorageFaultEngine {
    fn corrupt(&self, name: &str, bytes: &mut Vec<u8>) -> bool {
        let n = self.seen.fetch_add(1, Ordering::Relaxed) + 1;
        if !n.is_multiple_of(self.every_nth) {
            return true;
        }
        let mut rng = self.rng.lock().expect("fault rng poisoned");
        let kind = self.kinds[rng.gen_range(0..self.kinds.len())];
        self.record(name, kind);
        apply_storage_fault(kind, bytes, &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn sample_entry() -> Vec<u8> {
        // magic + version + body + trailing FNV-1a checksum, like a real
        // cache entry.
        let mut e = Vec::new();
        e.extend_from_slice(b"FDRLTST\x01");
        e.extend_from_slice(&1u32.to_le_bytes());
        e.extend_from_slice(&[0xab; 64]);
        let sum = fnv1a64(&e);
        e.extend_from_slice(&sum.to_le_bytes());
        e
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let run = |seed: u64| {
            let eng = StorageFaultEngine::all(seed);
            for i in 0..32 {
                let mut bytes = sample_entry();
                let _ = eng.corrupt(&format!("e{i}"), &mut bytes);
            }
            eng.log()
        };
        assert_eq!(run(11), run(11), "same seed must fault identically");
        assert_ne!(run(11), run(12), "different seeds should diverge");
    }

    #[test]
    fn every_nth_gates_injection() {
        let eng = StorageFaultEngine::new(5, &[StorageFaultKind::BitFlip], 4);
        for i in 0..12 {
            let mut bytes = sample_entry();
            let _ = eng.corrupt(&format!("e{i}"), &mut bytes);
        }
        assert_eq!(eng.writes_seen(), 12);
        assert_eq!(eng.injected(), 3, "writes 4, 8, 12 fault");
    }

    #[test]
    fn stale_version_keeps_checksum_valid() {
        let mut bytes = sample_entry();
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(apply_storage_fault(
            StorageFaultKind::StaleVersion,
            &mut bytes,
            &mut rng
        ));
        let body_end = bytes.len() - 8;
        let sum = u64::from_le_bytes(bytes[body_end..].try_into().unwrap());
        assert_eq!(
            sum,
            fnv1a64(&bytes[..body_end]),
            "stale-version fault must leave a valid checksum"
        );
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        assert_ne!(version, 1, "version must actually change");
    }

    #[test]
    fn torn_and_truncated_entries_shrink() {
        let mut rng = SmallRng::seed_from_u64(9);
        let original = sample_entry();
        let mut torn = original.clone();
        let _ = apply_storage_fault(StorageFaultKind::TornWrite, &mut torn, &mut rng);
        assert!(torn.len() < original.len());
        let mut cut = original.clone();
        assert!(apply_storage_fault(
            StorageFaultKind::Truncate,
            &mut cut,
            &mut rng
        ));
        assert!(cut.len() < original.len() && !cut.is_empty());
    }

    #[test]
    fn transient_job_plan_is_deterministic_and_attempt_bounded() {
        let plan = TransientJobFaults::new(99, 2, 3);
        let other = TransientJobFaults::new(99, 2, 3);
        let names: Vec<String> = (0..30).map(|i| format!("job-{i}")).collect();
        let selected: Vec<&String> = names.iter().filter(|n| plan.selects(n)).collect();
        assert!(!selected.is_empty(), "a 30-job manifest must select some");
        assert!(selected.len() < names.len(), "…but not all");
        for name in &names {
            assert_eq!(
                plan.selects(name),
                other.selects(name),
                "same seed, same plan"
            );
        }
        let victim = selected[0];
        assert!(plan.should_fail(victim, 1));
        assert!(plan.should_fail(victim, 2));
        assert!(!plan.should_fail(victim, 3), "attempt 3 succeeds");
        assert_eq!(plan.injected(), 2);
        assert_eq!(TransientJobFaults::new(99, 2, 0).injected(), 0);
        assert!(!TransientJobFaults::new(99, 2, 0).should_fail(victim, 1));
    }

    #[test]
    fn faulted_cache_degrades_to_miss_never_a_wrong_artifact() {
        // Every write faulted with the full matrix: the cache must keep
        // answering (as misses or quarantined hits) and never panic.
        let dir = std::env::temp_dir().join(format!("faults-storage-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = Arc::new(fdrlite::PersistentCache::open(&dir).expect("cache opens"));
        let engine = Arc::new(StorageFaultEngine::all(1234));
        cache.set_fault_hook(engine.clone() as Arc<dyn StorageFaultHook>);

        let store = fdrlite::ModelStore::new();
        store.set_persist(fdrlite::PersistConfig {
            cache: cache.clone(),
            checkpoint_every: None,
            resume: fdrlite::ResumePolicy::Off,
        });
        let checker = fdrlite::Checker::new();
        let defs = csp::Definitions::new();
        let a = csp::Process::prefix(
            csp::EventId::from_index(0),
            csp::Process::prefix(csp::EventId::from_index(1), csp::Process::Stop),
        );
        let (verdict, _) = store
            .trace_refinement(
                &checker,
                &a,
                &a,
                &defs,
                1,
                &fdrlite::CheckOptions::UNBOUNDED,
            )
            .expect("check runs");
        assert!(verdict.is_pass(), "P ⊑T P holds regardless of cache faults");
        assert!(engine.injected() > 0, "faults must actually fire");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
