//! Counterexample replay: from an [`fdrlite`] witness back into the bus.
//!
//! A refinement counterexample is a claim about the *model*. Replay closes
//! the loop in the other direction from conformance checking: it re-drives
//! the counterexample's stimulus events through the [`canoe_sim`] simulator
//! (as injected frames) and checks that the implementation really produces
//! the forbidden responses — turning a formal witness into a concrete bus
//! recording, the paper's "failure trace fed back to designers" (Fig. 1).
//!
//! The on-disk format is a small JSON object, written by
//! [`counterexample_to_json`] and read by [`ReplayFile::parse`]:
//!
//! ```json
//! {
//!   "assertion": "SP02 [T= ROGUE",
//!   "kind": "trace-violation",
//!   "events": ["rec.reqSw", "send.rptSw", "send.rptSw"]
//! }
//! ```
//!
//! `events` is the full violating sequence — the witness trace plus, for
//! trace violations, the offending event itself.

use candb::Database;
use canoe_sim::{Frame, SimError, Simulation, TraceEvent};
use csp::Alphabet;
use diag::json_string;
use fdrlite::{Counterexample, FailureKind};
use std::fmt;

/// A counterexample as serialised to / parsed from JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayFile {
    /// The assertion the counterexample refutes (display text).
    pub assertion: String,
    /// The failure kind tag (`trace-violation`, `deadlock`, …).
    pub kind: String,
    /// The violating event sequence, in order.
    pub events: Vec<String>,
}

/// The machine tag for a failure kind.
fn kind_tag(kind: &FailureKind) -> &'static str {
    match kind {
        FailureKind::TraceViolation { .. } => "trace-violation",
        FailureKind::RefusalViolation { .. } => "refusal-violation",
        FailureKind::Deadlock => "deadlock",
        FailureKind::Divergence => "divergence",
        FailureKind::Nondeterminism { .. } => "nondeterminism",
    }
}

/// Serialise a counterexample for later replay. The `events` array is the
/// witness trace; for trace violations the offending event is appended so
/// the array is the complete forbidden sequence.
pub fn counterexample_to_json(
    assertion: &str,
    cex: &Counterexample,
    alphabet: &Alphabet,
) -> String {
    let mut names: Vec<String> = cex
        .trace()
        .events()
        .iter()
        .filter_map(|ev| ev.event())
        .map(|id| alphabet.name(id).to_string())
        .collect();
    if let FailureKind::TraceViolation { event: Some(e) } = cex.kind() {
        names.push(alphabet.name(*e).to_string());
    }
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"assertion\": {},\n", json_string(assertion)));
    out.push_str(&format!(
        "  \"kind\": {},\n",
        json_string(kind_tag(cex.kind()))
    ));
    out.push_str("  \"events\": [");
    for (i, name) in names.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&json_string(name));
    }
    out.push_str("]\n}\n");
    out
}

/// Errors from parsing or replaying a counterexample file.
#[derive(Debug)]
pub enum ReplayError {
    /// The JSON file does not parse or misses a required field.
    Json(String),
    /// A stimulus event names a message the database does not know.
    UnknownMessage(String),
    /// The simulation failed while replaying.
    Sim(SimError),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Json(msg) => write!(f, "counterexample file: {msg}"),
            ReplayError::UnknownMessage(name) => {
                write!(f, "event message `{name}` is not in the CAN database")
            }
            ReplayError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<SimError> for ReplayError {
    fn from(e: SimError) -> Self {
        ReplayError::Sim(e)
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON reader (we control the writer; only the shapes above occur)
// ---------------------------------------------------------------------------

struct JsonReader<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

impl<'a> JsonReader<'a> {
    fn new(src: &'a str) -> Self {
        JsonReader {
            chars: src.chars().peekable(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some(' ' | '\t' | '\n' | '\r' | ',')) {
            self.chars.next();
        }
    }

    fn expect(&mut self, c: char) -> Result<(), ReplayError> {
        self.skip_ws();
        match self.chars.next() {
            Some(got) if got == c => Ok(()),
            Some(got) => Err(ReplayError::Json(format!("expected `{c}`, found `{got}`"))),
            None => Err(ReplayError::Json(format!(
                "expected `{c}`, found end of input"
            ))),
        }
    }

    fn peek_is(&mut self, c: char) -> bool {
        self.skip_ws();
        self.chars.peek() == Some(&c)
    }

    fn string(&mut self) -> Result<String, ReplayError> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.chars.next() {
                Some('"') => return Ok(out),
                Some('\\') => match self.chars.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d =
                                self.chars.next().and_then(|c| c.to_digit(16)).ok_or_else(
                                    || ReplayError::Json("bad \\u escape".to_string()),
                                )?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    other => {
                        return Err(ReplayError::Json(format!("bad escape `\\{other:?}`")));
                    }
                },
                Some(c) => out.push(c),
                None => return Err(ReplayError::Json("unterminated string".to_string())),
            }
        }
    }

    fn string_array(&mut self) -> Result<Vec<String>, ReplayError> {
        self.expect('[')?;
        let mut out = Vec::new();
        loop {
            if self.peek_is(']') {
                self.chars.next();
                return Ok(out);
            }
            out.push(self.string()?);
        }
    }
}

impl ReplayFile {
    /// Parse a counterexample JSON file.
    pub fn parse(src: &str) -> Result<ReplayFile, ReplayError> {
        let mut r = JsonReader::new(src);
        r.expect('{')?;
        let mut assertion = None;
        let mut kind = None;
        let mut events = None;
        loop {
            if r.peek_is('}') {
                break;
            }
            let key = r.string()?;
            r.expect(':')?;
            match key.as_str() {
                "assertion" => assertion = Some(r.string()?),
                "kind" => kind = Some(r.string()?),
                "events" => events = Some(r.string_array()?),
                other => {
                    return Err(ReplayError::Json(format!("unknown field `{other}`")));
                }
            }
        }
        Ok(ReplayFile {
            assertion: assertion
                .ok_or_else(|| ReplayError::Json("missing `assertion`".to_string()))?,
            kind: kind.ok_or_else(|| ReplayError::Json("missing `kind`".to_string()))?,
            events: events.ok_or_else(|| ReplayError::Json("missing `events`".to_string()))?,
        })
    }
}

// ---------------------------------------------------------------------------
// Replay execution
// ---------------------------------------------------------------------------

/// How counterexample events map onto the simulated bus.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// The node under test — its transmissions are the observations.
    pub node: String,
    /// Event channels injected as frames (the stimuli the model's
    /// environment — or intruder — delivers to the node under test).
    pub stimulus_prefixes: Vec<String>,
    /// Event channels expected back as transmissions of `node`.
    pub expect_prefixes: Vec<String>,
    /// Bus-idle time between injected stimuli, in microseconds.
    pub gap_us: u64,
}

impl ReplayConfig {
    /// A sensible default: stimuli on `rec`, observations on `send`, 10 ms
    /// apart — matching the translator's channel conventions.
    pub fn for_node(node: &str) -> ReplayConfig {
        ReplayConfig {
            node: node.to_string(),
            stimulus_prefixes: vec!["rec".to_string()],
            expect_prefixes: vec!["send".to_string()],
            gap_us: 10_000,
        }
    }
}

/// What a replay run produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// Message names injected as stimuli, in order.
    pub injected: Vec<String>,
    /// Message names the counterexample expects the node to transmit.
    pub expected: Vec<String>,
    /// Message names the node actually transmitted, in order.
    pub observed: Vec<String>,
    /// Whether `expected` occurs within `observed` as an ordered
    /// subsequence — i.e. the formal violation reproduced on the bus.
    pub reproduced: bool,
}

impl ReplayOutcome {
    /// Whether the replay could decide anything at all. A counterexample
    /// whose events map onto no expected response channel injects stimuli
    /// but observes nothing: `reproduced` is then vacuously true, and the
    /// run is inconclusive rather than a reproduction. Callers (the
    /// `autocsp replay` exit-code contract) report such runs as
    /// INCONCLUSIVE, exit code 3 — the same code budget-exhausted checks
    /// use.
    pub fn is_conclusive(&self) -> bool {
        !self.expected.is_empty()
    }
}

/// Re-drive a counterexample's events through a prepared simulation.
///
/// The simulation should contain the node under test (and only the nodes
/// whose behaviour the counterexample exercises — a full network would race
/// its own traffic against the injected stimuli). Stimulus events become
/// injected frames spaced `gap_us` apart; after a settling run, the node's
/// transmissions are compared against the expected responses.
pub fn replay(
    sim: &mut Simulation,
    db: &Database,
    events: &[String],
    config: &ReplayConfig,
) -> Result<ReplayOutcome, ReplayError> {
    let mut injected = Vec::new();
    let mut expected = Vec::new();

    for event in events {
        let Some((channel, message)) = event.split_once('.') else {
            continue; // channel-only events carry no frame
        };
        if config.stimulus_prefixes.iter().any(|p| p == channel) {
            let msg = db
                .message_by_name(message)
                .ok_or_else(|| ReplayError::UnknownMessage(message.to_string()))?;
            sim.inject_frame(Frame::new(msg.id, msg.dlc));
            injected.push(message.to_string());
            sim.run_for(config.gap_us)?;
        } else if config.expect_prefixes.iter().any(|p| p == channel) {
            expected.push(message.to_string());
        }
    }
    // Settle: let any response queued by the last stimulus drain.
    sim.run_for(config.gap_us.saturating_mul(4).max(1))?;

    let observed: Vec<String> = sim
        .trace()
        .iter()
        .filter_map(|e| match &e.event {
            TraceEvent::Transmit { node, message, .. } if *node == config.node => {
                Some(message.clone())
            }
            _ => None,
        })
        .collect();

    let reproduced = is_subsequence(&expected, &observed);
    Ok(ReplayOutcome {
        injected,
        expected,
        observed,
        reproduced,
    })
}

/// Whether `needle` occurs in `haystack` as an ordered subsequence.
fn is_subsequence(needle: &[String], haystack: &[String]) -> bool {
    let mut it = haystack.iter();
    needle.iter().all(|want| it.any(|got| got == want))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips() {
        let file = ReplayFile {
            assertion: "SP02 [T= ROGUE".to_string(),
            kind: "trace-violation".to_string(),
            events: vec!["rec.reqSw".to_string(), "send.rptSw".to_string()],
        };
        let json = format!(
            "{{\n  \"assertion\": {},\n  \"kind\": {},\n  \"events\": [{}, {}]\n}}\n",
            json_string(&file.assertion),
            json_string(&file.kind),
            json_string(&file.events[0]),
            json_string(&file.events[1]),
        );
        assert_eq!(ReplayFile::parse(&json).unwrap(), file);
    }

    #[test]
    fn counterexample_serialises_with_offending_event() {
        use csp::{Definitions, Process};
        use fdrlite::{Checker, Verdict};

        let mut ab = Alphabet::new();
        let req = ab.intern("rec.reqSw");
        let rpt = ab.intern("send.rptSw");
        let mut defs = Definitions::new();
        let spec = defs.add(
            "SPEC",
            Process::prefix(req, Process::prefix(rpt, Process::Stop)),
        );
        let rogue = Process::prefix_chain([req, rpt, rpt], Process::Stop);
        let verdict = Checker::new()
            .trace_refinement(&Process::var(spec), &rogue, &defs)
            .unwrap();
        let Verdict::Fail(cex) = verdict else {
            panic!("expected failure");
        };
        let json = counterexample_to_json("SPEC [T= ROGUE", &cex, &ab);
        let parsed = ReplayFile::parse(&json).unwrap();
        assert_eq!(parsed.kind, "trace-violation");
        assert_eq!(parsed.events, ["rec.reqSw", "send.rptSw", "send.rptSw"]);
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(ReplayFile::parse("{\"assertion\": \"x\"}").is_err());
        assert!(ReplayFile::parse("not json").is_err());
        assert!(
            ReplayFile::parse("{\"assertion\": \"x\", \"kind\": \"k\", \"events\": [\"a\"")
                .is_err()
        );
    }

    #[test]
    fn subsequence_check_is_ordered() {
        let s = |v: &[&str]| v.iter().map(|s| (*s).to_string()).collect::<Vec<_>>();
        assert!(is_subsequence(&s(&["a", "b"]), &s(&["x", "a", "y", "b"])));
        assert!(!is_subsequence(&s(&["b", "a"]), &s(&["a", "b"])));
        assert!(is_subsequence(&s(&[]), &s(&["a"])));
    }

    #[test]
    fn replay_reproduces_an_unsolicited_report() {
        let dbc = "BU_: VMG ECU\nBO_ 256 reqSw: 8 VMG\n SG_ a : 0|8@1+ (1,0) [0|255] \"\" ECU\nBO_ 512 rptSw: 8 ECU\n SG_ b : 0|8@1+ (1,0) [0|255] \"\" VMG\n";
        // A buggy ECU that answers every request twice.
        let ecu = "variables { message rptSw r; } on message reqSw { output(r); output(r); }";
        let db = candb::parse(dbc).unwrap();
        let mut sim = Simulation::new(Some(db.clone()));
        sim.add_node("ECU", capl::parse(ecu).unwrap()).unwrap();

        let events = vec![
            "rec.reqSw".to_string(),
            "send.rptSw".to_string(),
            "send.rptSw".to_string(),
        ];
        let outcome = replay(&mut sim, &db, &events, &ReplayConfig::for_node("ECU")).unwrap();
        assert_eq!(outcome.injected, ["reqSw"]);
        assert_eq!(outcome.expected, ["rptSw", "rptSw"]);
        assert!(outcome.reproduced, "{outcome:?}");
    }

    #[test]
    fn replay_fails_to_reproduce_on_a_correct_node() {
        let dbc = "BU_: VMG ECU\nBO_ 256 reqSw: 8 VMG\n SG_ a : 0|8@1+ (1,0) [0|255] \"\" ECU\nBO_ 512 rptSw: 8 ECU\n SG_ b : 0|8@1+ (1,0) [0|255] \"\" VMG\n";
        let ecu = "variables { message rptSw r; } on message reqSw { output(r); }";
        let db = candb::parse(dbc).unwrap();
        let mut sim = Simulation::new(Some(db.clone()));
        sim.add_node("ECU", capl::parse(ecu).unwrap()).unwrap();

        let events = vec![
            "rec.reqSw".to_string(),
            "send.rptSw".to_string(),
            "send.rptSw".to_string(),
        ];
        let outcome = replay(&mut sim, &db, &events, &ReplayConfig::for_node("ECU")).unwrap();
        assert!(!outcome.reproduced, "{outcome:?}");
        assert_eq!(outcome.observed, ["rptSw"]);
    }

    #[test]
    fn unknown_stimulus_message_errors() {
        let db = candb::parse("BU_: ECU\nBO_ 256 reqSw: 8 ECU\n").unwrap();
        let mut sim = Simulation::new(Some(db.clone()));
        let events = vec!["rec.mystery".to_string()];
        let err = replay(&mut sim, &db, &events, &ReplayConfig::for_node("ECU")).unwrap_err();
        assert!(matches!(err, ReplayError::UnknownMessage(_)));
    }
}
