//! Fault plans: the declarative input of the fault-injection subsystem.
//!
//! A plan is a plain-text file in a small TOML subset — sections, `key =
//! value` pairs, integers (decimal or `0x…`), floats, quoted strings,
//! booleans and flat integer lists. Only the constructs used by fault plans
//! are supported; anything else is reported as a `SIM300` parse diagnostic
//! with a precise source span.
//!
//! ```text
//! [plan]
//! name = "x1373-replay"
//! seed = 1
//!
//! [[fault]]
//! name = "replay-reqApp"
//! kind = "replay"
//! match_id = 257
//! max_fires = 1
//! delay_us = 30000
//!
//! [conformance]
//! spec = "UPDATE"
//!
//! [[map]]
//! on = "receive"
//! node = "ECU"
//! event_prefix = "rec"
//! ```
//!
//! Semantic validation ([`lint_plan`]) reports `SIM301`–`SIM306` findings,
//! cross-checking frame identifiers and node names against an optional
//! [`candb::Database`].

use candb::Database;
use diag::{Diagnostic, Span};

/// A parsed fault plan.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Plan name (from `[plan] name`), used in reports.
    pub name: String,
    /// Default seed (`[plan] seed`); `autocsp simulate --seed` overrides it.
    pub seed: Option<u64>,
    /// The faults, applied to each frame in declaration order.
    pub faults: Vec<FaultSpec>,
    /// Optional conformance section: spec process plus trace-lift rules.
    pub conformance: Option<ConformanceSpec>,
}

/// One declared fault: a transformation gated by a trigger.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Name used to tag [`canoe_sim::TraceEvent::Fault`] records.
    pub name: String,
    /// What the fault does when its trigger fires.
    pub kind: FaultKind,
    /// When the fault fires.
    pub trigger: Trigger,
    /// 1-based source line of the `[[fault]]` header (for diagnostics).
    pub line: u32,
}

/// The transformation a fault applies.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Remove the frame from the bus.
    Drop,
    /// XOR one payload byte with a mask.
    Corrupt {
        /// Payload byte offset (0–7).
        byte: usize,
        /// XOR mask applied to that byte.
        xor: u8,
    },
    /// Postpone delivery by a fixed delay plus seeded jitter.
    Delay {
        /// Fixed delay in microseconds.
        delay_us: u64,
        /// Upper bound (inclusive) of uniformly drawn extra jitter.
        jitter_us: u64,
    },
    /// Deliver additional copies of the frame.
    Duplicate {
        /// How many extra copies to deliver.
        copies: u32,
    },
    /// Re-deliver the most recently matching frame (recorded by the same
    /// fault) as an external frame.
    Replay {
        /// Delay before the replayed copy arrives, in microseconds.
        delay_us: u64,
    },
    /// Forge an external frame with a fixed identifier and payload.
    Spoof {
        /// CAN identifier of the forged frame.
        id: u32,
        /// Payload bytes of the forged frame.
        payload: [u8; 8],
        /// Data length code of the forged frame.
        dlc: usize,
    },
    /// Suppress *all* bus traffic while the trigger matches (transient
    /// bus-off window).
    BusOff,
    /// Take a node offline for a time window; handled at simulation level
    /// via [`canoe_sim::Simulation::schedule_outage`].
    NodeCrash {
        /// Name of the node to crash.
        node: String,
        /// Crash time (µs, inclusive).
        from_us: u64,
        /// Restart time (µs, exclusive).
        until_us: u64,
    },
}

impl FaultKind {
    /// The `kind = "…"` keyword for this fault kind.
    pub fn keyword(&self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Corrupt { .. } => "corrupt",
            FaultKind::Delay { .. } => "delay",
            FaultKind::Duplicate { .. } => "duplicate",
            FaultKind::Replay { .. } => "replay",
            FaultKind::Spoof { .. } => "spoof",
            FaultKind::BusOff => "bus_off",
            FaultKind::NodeCrash { .. } => "node_crash",
        }
    }
}

/// When a fault fires. All set conditions must hold; the probability draw
/// (if any) happens last, so the deterministic conditions never consume
/// random numbers.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trigger {
    /// Only fire while `window.0 <= time_us < window.1`.
    pub window: Option<(u64, u64)>,
    /// Only fire on frames with this CAN identifier.
    pub match_id: Option<u32>,
    /// Fire on every `n`-th matching frame (1 = every one).
    pub every_nth: Option<u64>,
    /// Fire with this probability (seeded, deterministic per run).
    pub probability: Option<f64>,
    /// Stop firing after this many activations.
    pub max_fires: Option<u64>,
}

/// How simulation trace entries map to CSP events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapOn {
    /// [`canoe_sim::TraceEvent::Transmit`] entries.
    Transmit,
    /// [`canoe_sim::TraceEvent::Receive`] entries.
    Receive,
    /// [`canoe_sim::TraceEvent::Injected`] entries.
    Inject,
}

/// One trace-lift rule from a `[[map]]` section. The first matching rule
/// wins; entries no rule matches are dropped from the lifted trace.
#[derive(Debug, Clone, PartialEq)]
pub struct MapRule {
    /// Which trace entries the rule applies to.
    pub on: MapOn,
    /// Only entries involving this node (transmitting or receiving).
    pub node: Option<String>,
    /// Only entries carrying this message (by database name).
    pub message: Option<String>,
    /// Explicit CSP event name to emit.
    pub event: Option<String>,
    /// Emit `<prefix>.<message>` (the common channel-style lift).
    pub event_prefix: Option<String>,
}

impl MapRule {
    /// The CSP event this rule emits for message `message`, if any.
    pub fn emit(&self, message: &str) -> Option<String> {
        if let Some(event) = &self.event {
            return Some(event.clone());
        }
        self.event_prefix
            .as_ref()
            .map(|prefix| format!("{prefix}.{message}"))
    }
}

/// The `[conformance]` section: which spec process to check the lifted
/// trace against, and the lift rules.
#[derive(Debug, Clone, PartialEq)]
pub struct ConformanceSpec {
    /// Name of the specification process in the CSPm script.
    pub spec: String,
    /// Trace-lift rules, tried in order.
    pub rules: Vec<MapRule>,
}

use crate::codes::{
    BUS_OFF_OVERLAP as SIM302, CORRUPT_BYTE_RANGE as SIM306, EMPTY_WINDOW as SIM304,
    PLAN_PARSE_ERROR as SIM300, PROBABILITY_RANGE as SIM303, UNKNOWN_FRAME_ID as SIM301,
    UNKNOWN_NODE as SIM305,
};

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// A parsed `key = value` right-hand side.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Int(i64),
    Float(f64),
    Str(String),
    IntList(Vec<i64>),
    Bool(bool),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::IntList(_) => "integer list",
            Value::Bool(_) => "boolean",
        }
    }
}

/// One `key = value` line with its source position.
#[derive(Debug, Clone)]
struct Entry {
    key: String,
    value: Value,
    span: Span,
}

/// A `[name]` or `[[name]]` section with its entries.
#[derive(Debug, Clone)]
struct Section {
    name: String,
    span: Span,
    entries: Vec<Entry>,
}

fn parse_err(span: Span, message: impl Into<String>) -> Diagnostic {
    Diagnostic::error(SIM300, span, message)
}

/// Split the source into sections; syntax errors are collected, not fatal
/// per-line, so several mistakes surface in one pass.
fn parse_sections(src: &str) -> Result<Vec<Section>, Vec<Diagnostic>> {
    let mut sections: Vec<Section> = Vec::new();
    let mut errors: Vec<Diagnostic> = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let lineno = u32::try_from(idx + 1).unwrap_or(u32::MAX);
        let line = match raw.find('#') {
            // A '#' inside a quoted string must survive; only strip comments
            // on lines that are not string-valued or where '#' precedes any
            // quote.
            Some(pos) if !raw[..pos].contains('"') => &raw[..pos],
            _ => raw,
        };
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let col = u32::try_from(line.len() - line.trim_start().len() + 1).unwrap_or(1);
        if let Some(rest) = trimmed.strip_prefix("[[") {
            let Some(name) = rest.strip_suffix("]]") else {
                errors.push(parse_err(
                    Span::new(lineno, col, trimmed.chars().count() as u32),
                    "unterminated `[[…]]` section header",
                ));
                continue;
            };
            sections.push(Section {
                name: name.trim().to_string(),
                span: Span::new(lineno, col, trimmed.chars().count() as u32),
                entries: Vec::new(),
            });
        } else if let Some(rest) = trimmed.strip_prefix('[') {
            let Some(name) = rest.strip_suffix(']') else {
                errors.push(parse_err(
                    Span::new(lineno, col, trimmed.chars().count() as u32),
                    "unterminated `[…]` section header",
                ));
                continue;
            };
            sections.push(Section {
                name: name.trim().to_string(),
                span: Span::new(lineno, col, trimmed.chars().count() as u32),
                entries: Vec::new(),
            });
        } else if let Some(eq) = trimmed.find('=') {
            let key = trimmed[..eq].trim();
            let value_text = trimmed[eq + 1..].trim();
            let span = Span::new(lineno, col, key.chars().count().max(1) as u32);
            if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                errors.push(parse_err(span, format!("invalid key `{key}`")));
                continue;
            }
            let value = match parse_value(value_text, lineno, col + eq as u32 + 1) {
                Ok(v) => v,
                Err(d) => {
                    errors.push(d);
                    continue;
                }
            };
            match sections.last_mut() {
                Some(section) => section.entries.push(Entry {
                    key: key.to_string(),
                    value,
                    span,
                }),
                None => errors.push(parse_err(
                    span,
                    format!("`{key}` appears before any section header"),
                )),
            }
        } else {
            errors.push(parse_err(
                Span::new(lineno, col, trimmed.chars().count() as u32),
                format!("expected `[section]` or `key = value`, found `{trimmed}`"),
            ));
        }
    }
    if errors.is_empty() {
        Ok(sections)
    } else {
        Err(errors)
    }
}

fn parse_value(text: &str, line: u32, col: u32) -> Result<Value, Diagnostic> {
    let span = Span::new(line, col, text.chars().count().max(1) as u32);
    if text.is_empty() {
        return Err(parse_err(span, "missing value after `=`"));
    }
    if let Some(rest) = text.strip_prefix('"') {
        let Some(inner) = rest.strip_suffix('"') else {
            return Err(parse_err(span, "unterminated string"));
        };
        if inner.contains('"') {
            return Err(parse_err(span, "embedded quotes are not supported"));
        }
        return Ok(Value::Str(inner.to_string()));
    }
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(rest) = text.strip_prefix('[') {
        let Some(inner) = rest.strip_suffix(']') else {
            return Err(parse_err(span, "unterminated list"));
        };
        let mut items = Vec::new();
        for part in inner.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            items.push(parse_int(part).ok_or_else(|| {
                parse_err(span, format!("`{part}` is not an integer list element"))
            })?);
        }
        return Ok(Value::IntList(items));
    }
    if let Some(v) = parse_int(text) {
        return Ok(Value::Int(v));
    }
    if let Ok(v) = text.parse::<f64>() {
        return Ok(Value::Float(v));
    }
    Err(parse_err(
        span,
        format!("`{text}` is not a number, string, boolean or list"),
    ))
}

fn parse_int(text: &str) -> Option<i64> {
    let cleaned = text.replace('_', "");
    if let Some(hex) = cleaned
        .strip_prefix("0x")
        .or_else(|| cleaned.strip_prefix("0X"))
    {
        i64::from_str_radix(hex, 16).ok()
    } else {
        cleaned.parse::<i64>().ok()
    }
}

// ---------------------------------------------------------------------------
// Section interpretation
// ---------------------------------------------------------------------------

/// Typed accessors over a section's entries, accumulating diagnostics.
struct Fields<'a> {
    section: &'a Section,
    errors: Vec<Diagnostic>,
    used: Vec<bool>,
}

impl<'a> Fields<'a> {
    fn new(section: &'a Section) -> Self {
        Fields {
            section,
            errors: Vec::new(),
            used: vec![false; section.entries.len()],
        }
    }

    fn find(&mut self, key: &str) -> Option<&'a Entry> {
        for (i, entry) in self.section.entries.iter().enumerate() {
            if entry.key == key {
                self.used[i] = true;
                return Some(entry);
            }
        }
        None
    }

    fn str(&mut self, key: &str) -> Option<String> {
        let entry = self.find(key)?;
        match &entry.value {
            Value::Str(s) => Some(s.clone()),
            other => {
                self.errors.push(parse_err(
                    entry.span,
                    format!("`{key}` must be a string, found {}", other.type_name()),
                ));
                None
            }
        }
    }

    fn u64(&mut self, key: &str) -> Option<u64> {
        let entry = self.find(key)?;
        match entry.value {
            Value::Int(v) if v >= 0 => Some(v as u64),
            Value::Int(_) => {
                self.errors.push(parse_err(
                    entry.span,
                    format!("`{key}` must be non-negative"),
                ));
                None
            }
            ref other => {
                self.errors.push(parse_err(
                    entry.span,
                    format!("`{key}` must be an integer, found {}", other.type_name()),
                ));
                None
            }
        }
    }

    fn f64(&mut self, key: &str) -> Option<f64> {
        let entry = self.find(key)?;
        match entry.value {
            Value::Float(v) => Some(v),
            Value::Int(v) => Some(v as f64),
            ref other => {
                self.errors.push(parse_err(
                    entry.span,
                    format!("`{key}` must be a number, found {}", other.type_name()),
                ));
                None
            }
        }
    }

    fn window(&mut self, key: &str) -> Option<(u64, u64)> {
        let entry = self.find(key)?;
        match &entry.value {
            Value::IntList(items) if items.len() == 2 && items[0] >= 0 && items[1] >= 0 => {
                Some((items[0] as u64, items[1] as u64))
            }
            _ => {
                self.errors.push(parse_err(
                    entry.span,
                    format!("`{key}` must be a two-element list of non-negative integers, e.g. `[0, 50000]`"),
                ));
                None
            }
        }
    }

    fn payload(&mut self, key: &str) -> Option<[u8; 8]> {
        let entry = self.find(key)?;
        match &entry.value {
            Value::IntList(items)
                if items.len() <= 8 && items.iter().all(|&b| (0..=255).contains(&b)) =>
            {
                let mut payload = [0u8; 8];
                for (i, &b) in items.iter().enumerate() {
                    payload[i] = b as u8;
                }
                Some(payload)
            }
            _ => {
                self.errors.push(parse_err(
                    entry.span,
                    format!("`{key}` must be a list of at most 8 bytes (0–255)"),
                ));
                None
            }
        }
    }

    fn require_str(&mut self, key: &str) -> Option<String> {
        let got = self.str(key);
        if got.is_none()
            && !self
                .errors
                .iter()
                .any(|d| d.message.contains(&format!("`{key}`")))
        {
            self.errors.push(parse_err(
                self.section.span,
                format!("`[{}]` section is missing `{key}`", self.section.name),
            ));
        }
        got
    }

    fn finish(mut self) -> Vec<Diagnostic> {
        for (i, entry) in self.section.entries.iter().enumerate() {
            if !self.used[i] {
                self.errors.push(parse_err(
                    entry.span,
                    format!(
                        "unknown key `{}` in `[{}]` section",
                        entry.key, self.section.name
                    ),
                ));
            }
        }
        self.errors
    }
}

impl FaultPlan {
    /// Parse a fault plan. All problems are reported together as `SIM300`
    /// diagnostics (render them with [`diag::Diagnostic::render`] against
    /// the plan source).
    pub fn parse(src: &str) -> Result<FaultPlan, Vec<Diagnostic>> {
        let sections = parse_sections(src)?;
        let mut errors: Vec<Diagnostic> = Vec::new();
        let mut plan = FaultPlan {
            name: String::new(),
            seed: None,
            faults: Vec::new(),
            conformance: None,
        };
        let mut saw_plan = false;
        let mut rules: Vec<MapRule> = Vec::new();
        let mut conformance_spec: Option<String> = None;

        for section in &sections {
            match section.name.as_str() {
                "plan" => {
                    saw_plan = true;
                    let mut f = Fields::new(section);
                    if let Some(name) = f.require_str("name") {
                        plan.name = name;
                    }
                    plan.seed = f.u64("seed");
                    errors.extend(f.finish());
                }
                "fault" => match parse_fault(section) {
                    Ok(spec) => plan.faults.push(spec),
                    Err(errs) => errors.extend(errs),
                },
                "conformance" => {
                    let mut f = Fields::new(section);
                    conformance_spec = f.require_str("spec");
                    errors.extend(f.finish());
                }
                "map" => match parse_map(section) {
                    Ok(rule) => rules.push(rule),
                    Err(errs) => errors.extend(errs),
                },
                other => errors.push(parse_err(
                    section.span,
                    format!(
                        "unknown section `[{other}]` (expected plan, fault, conformance or map)"
                    ),
                )),
            }
        }

        if !saw_plan {
            errors.push(parse_err(
                Span::unknown(),
                "fault plan is missing its `[plan]` section",
            ));
        }
        if let Some(spec) = conformance_spec {
            plan.conformance = Some(ConformanceSpec { spec, rules });
        } else if !rules.is_empty() {
            errors.push(parse_err(
                Span::unknown(),
                "`[[map]]` rules given without a `[conformance]` section",
            ));
        }

        if errors.is_empty() {
            Ok(plan)
        } else {
            Err(errors)
        }
    }
}

fn parse_fault(section: &Section) -> Result<FaultSpec, Vec<Diagnostic>> {
    let mut f = Fields::new(section);
    let name = f.require_str("name").unwrap_or_default();
    let kind_word = f.require_str("kind").unwrap_or_default();

    let trigger = Trigger {
        window: f.window("window"),
        match_id: f.u64("match_id").map(|v| v as u32),
        every_nth: f.u64("every_nth"),
        probability: f.f64("probability"),
        max_fires: f.u64("max_fires"),
    };

    let kind = match kind_word.as_str() {
        "drop" => Some(FaultKind::Drop),
        "corrupt" => Some(FaultKind::Corrupt {
            byte: f.u64("byte").unwrap_or(0) as usize,
            xor: (f.u64("xor").unwrap_or(0xFF) & 0xFF) as u8,
        }),
        "delay" => Some(FaultKind::Delay {
            delay_us: f.u64("delay_us").unwrap_or(0),
            jitter_us: f.u64("jitter_us").unwrap_or(0),
        }),
        "duplicate" => Some(FaultKind::Duplicate {
            copies: f.u64("copies").unwrap_or(1) as u32,
        }),
        "replay" => Some(FaultKind::Replay {
            delay_us: f.u64("delay_us").unwrap_or(0),
        }),
        "spoof" => {
            let id = f.u64("id");
            let payload = f.payload("payload").unwrap_or([0u8; 8]);
            let dlc = f.u64("dlc").unwrap_or(8) as usize;
            match id {
                Some(id) => Some(FaultKind::Spoof {
                    id: id as u32,
                    payload,
                    dlc: dlc.min(8),
                }),
                None => {
                    f.errors.push(parse_err(
                        section.span,
                        "`kind = \"spoof\"` requires an `id`",
                    ));
                    None
                }
            }
        }
        "bus_off" => Some(FaultKind::BusOff),
        "node_crash" => {
            let node = f.str("node");
            let window = f.window("window");
            match (node, window) {
                (Some(node), Some((from_us, until_us))) => Some(FaultKind::NodeCrash {
                    node,
                    from_us,
                    until_us,
                }),
                _ => {
                    f.errors.push(parse_err(
                        section.span,
                        "`kind = \"node_crash\"` requires `node` and `window = [from_us, until_us]`",
                    ));
                    None
                }
            }
        }
        "" => None,
        other => {
            f.errors.push(parse_err(
                section.span,
                format!(
                    "unknown fault kind `{other}` (expected drop, corrupt, delay, duplicate, replay, spoof, bus_off or node_crash)"
                ),
            ));
            None
        }
    };

    let line = section.span.line;
    let errors = f.finish();
    match (kind, errors.is_empty()) {
        (Some(kind), true) => Ok(FaultSpec {
            name,
            kind,
            trigger,
            line,
        }),
        (_, _) if !errors.is_empty() => Err(errors),
        _ => Err(vec![parse_err(
            section.span,
            "`[[fault]]` section is missing a valid `kind`",
        )]),
    }
}

fn parse_map(section: &Section) -> Result<MapRule, Vec<Diagnostic>> {
    let mut f = Fields::new(section);
    let on_word = f.require_str("on").unwrap_or_default();
    let on = match on_word.as_str() {
        "transmit" => Some(MapOn::Transmit),
        "receive" => Some(MapOn::Receive),
        "inject" => Some(MapOn::Inject),
        "" => None,
        other => {
            f.errors.push(parse_err(
                section.span,
                format!("unknown map trigger `{other}` (expected transmit, receive or inject)"),
            ));
            None
        }
    };
    let rule = MapRule {
        on: on.unwrap_or(MapOn::Transmit),
        node: f.str("node"),
        message: f.str("message"),
        event: f.str("event"),
        event_prefix: f.str("event_prefix"),
    };
    if rule.event.is_none() && rule.event_prefix.is_none() {
        f.errors.push(parse_err(
            section.span,
            "`[[map]]` rule needs `event` or `event_prefix`",
        ));
    }
    let errors = f.finish();
    if errors.is_empty() {
        Ok(rule)
    } else {
        Err(errors)
    }
}

// ---------------------------------------------------------------------------
// Semantic lints (SIM301–SIM306)
// ---------------------------------------------------------------------------

/// Validate a parsed plan, optionally cross-checking against a CAN
/// database. Returns findings; an empty vector means the plan is clean.
pub fn lint_plan(plan: &FaultPlan, db: Option<&Database>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut bus_off_windows: Vec<(&FaultSpec, (u64, u64))> = Vec::new();

    for fault in &plan.faults {
        let span = Span::point(fault.line, 1);

        if let Some(p) = fault.trigger.probability {
            if !(0.0..=1.0).contains(&p) {
                out.push(
                    Diagnostic::error(
                        SIM303,
                        span,
                        format!("fault `{}` has probability {p}, outside [0, 1]", fault.name),
                    )
                    .with_note("probabilities are per-matching-frame firing chances"),
                );
            }
        }

        if let Some((from, until)) = fault.trigger.window {
            if from >= until {
                out.push(Diagnostic::warning(
                    SIM304,
                    span,
                    format!(
                        "fault `{}` has an empty trigger window [{from}, {until}) and can never fire",
                        fault.name
                    ),
                ));
            }
        }

        if let Some(db) = db {
            if let Some(id) = fault.trigger.match_id {
                if db.message_by_id(id).is_none() {
                    out.push(
                        Diagnostic::error(
                            SIM301,
                            span,
                            format!(
                                "fault `{}` matches frame id {id} (0x{id:X}), which is not in the database",
                                fault.name
                            ),
                        )
                        .with_note("known ids come from the `.dbc` passed to the simulator"),
                    );
                }
            }
        }

        match &fault.kind {
            FaultKind::Corrupt { byte, .. } if *byte > 7 => {
                out.push(Diagnostic::error(
                    SIM306,
                    span,
                    format!(
                        "fault `{}` corrupts byte {byte}, beyond the 8-byte CAN payload (0–7)",
                        fault.name
                    ),
                ));
            }
            FaultKind::Spoof { id, .. } => {
                if let Some(db) = db {
                    if db.message_by_id(*id).is_none() {
                        out.push(
                            Diagnostic::error(
                                SIM301,
                                span,
                                format!(
                                    "fault `{}` spoofs frame id {id} (0x{id:X}), which is not in the database",
                                    fault.name
                                ),
                            )
                            .with_note("receivers only handle messages declared in the `.dbc`"),
                        );
                    }
                }
            }
            FaultKind::NodeCrash {
                node,
                from_us,
                until_us,
            } => {
                if from_us >= until_us {
                    out.push(Diagnostic::warning(
                        SIM304,
                        span,
                        format!(
                            "fault `{}` has an empty outage window [{from_us}, {until_us}) and does nothing",
                            fault.name
                        ),
                    ));
                }
                if let Some(db) = db {
                    if !db.nodes.is_empty() && !db.nodes.iter().any(|n| n == node) {
                        out.push(
                            Diagnostic::error(
                                SIM305,
                                span,
                                format!(
                                    "fault `{}` crashes node `{node}`, which is not in the database",
                                    fault.name
                                ),
                            )
                            .with_note(format!("known nodes: {}", db.nodes.join(", "))),
                        );
                    }
                }
            }
            FaultKind::BusOff => {
                if let Some(window) = fault.trigger.window {
                    bus_off_windows.push((fault, window));
                }
            }
            _ => {}
        }
    }

    for (i, (a, (a_from, a_until))) in bus_off_windows.iter().enumerate() {
        for (b, (b_from, b_until)) in bus_off_windows.iter().skip(i + 1) {
            if a_from < b_until && b_from < a_until {
                out.push(
                    Diagnostic::warning(
                        SIM302,
                        Span::point(b.line, 1),
                        format!(
                            "bus-off faults `{}` and `{}` have overlapping windows",
                            a.name, b.name
                        ),
                    )
                    .with_note("overlapping bus-off windows are redundant; merge them"),
                );
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL_PLAN: &str = r#"
# A kitchen-sink plan exercising every construct.
[plan]
name = "kitchen-sink"
seed = 42

[[fault]]
name = "lossy"
kind = "drop"
match_id = 0x200
every_nth = 2
probability = 0.5
max_fires = 10

[[fault]]
name = "flip"
kind = "corrupt"
byte = 3
xor = 0x80
window = [1000, 50000]

[[fault]]
name = "slow"
kind = "delay"
delay_us = 2000
jitter_us = 500

[[fault]]
name = "echo"
kind = "duplicate"
copies = 2

[[fault]]
name = "ghost"
kind = "replay"
match_id = 257
delay_us = 30000
max_fires = 1

[[fault]]
name = "forge"
kind = "spoof"
id = 256
payload = [1, 2, 3]
dlc = 8
every_nth = 5

[[fault]]
name = "quiet"
kind = "bus_off"
window = [60000, 70000]

[[fault]]
name = "offline"
kind = "node_crash"
node = "ECU"
window = [30000, 70000]

[conformance]
spec = "UPDATE"

[[map]]
on = "receive"
node = "ECU"
event_prefix = "rec"

[[map]]
on = "transmit"
node = "ECU"
message = "rptSw"
event = "send.rptSw"
"#;

    #[test]
    fn full_plan_parses() {
        let plan = FaultPlan::parse(FULL_PLAN).expect("parses");
        assert_eq!(plan.name, "kitchen-sink");
        assert_eq!(plan.seed, Some(42));
        assert_eq!(plan.faults.len(), 8);
        assert_eq!(plan.faults[0].kind, FaultKind::Drop);
        assert_eq!(plan.faults[0].trigger.match_id, Some(0x200));
        assert_eq!(plan.faults[0].trigger.probability, Some(0.5));
        assert_eq!(
            plan.faults[1].kind,
            FaultKind::Corrupt { byte: 3, xor: 0x80 }
        );
        assert_eq!(plan.faults[1].trigger.window, Some((1000, 50000)));
        assert_eq!(
            plan.faults[5].kind,
            FaultKind::Spoof {
                id: 256,
                payload: [1, 2, 3, 0, 0, 0, 0, 0],
                dlc: 8
            }
        );
        let conf = plan.conformance.expect("conformance section");
        assert_eq!(conf.spec, "UPDATE");
        assert_eq!(conf.rules.len(), 2);
        assert_eq!(conf.rules[0].emit("reqSw").as_deref(), Some("rec.reqSw"));
        assert_eq!(conf.rules[1].emit("rptSw").as_deref(), Some("send.rptSw"));
    }

    #[test]
    fn parse_errors_carry_sim300_and_positions() {
        let src = "[plan]\nname = \"x\"\n[[fault]]\nname = \"f\"\nkind = \"warp\"\n";
        let errs = FaultPlan::parse(src).unwrap_err();
        assert!(errs.iter().all(|d| d.code == SIM300));
        assert!(errs.iter().any(|d| d.message.contains("warp")));
        assert!(errs.iter().any(|d| d.span.line == 3));
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let src = "[plan]\nname = \"x\"\nbogus = 1\n";
        let errs = FaultPlan::parse(src).unwrap_err();
        assert!(errs
            .iter()
            .any(|d| d.message.contains("unknown key `bogus`")));
    }

    #[test]
    fn missing_plan_section_is_rejected() {
        let errs = FaultPlan::parse("[[fault]]\nname = \"f\"\nkind = \"drop\"\n").unwrap_err();
        assert!(errs.iter().any(|d| d.message.contains("[plan]")));
    }

    #[test]
    fn map_without_conformance_is_rejected() {
        let src = "[plan]\nname = \"x\"\n[[map]]\non = \"transmit\"\nevent_prefix = \"send\"\n";
        let errs = FaultPlan::parse(src).unwrap_err();
        assert!(errs
            .iter()
            .any(|d| d.message.contains("without a `[conformance]`")));
    }

    fn db() -> Database {
        candb::parse(
            "BU_: VMG ECU\nBO_ 256 reqSw: 8 VMG\n SG_ a : 0|8@1+ (1,0) [0|255] \"\" ECU\nBO_ 512 rptSw: 8 ECU\n SG_ b : 0|8@1+ (1,0) [0|255] \"\" VMG\n",
        )
        .expect("dbc parses")
    }

    #[test]
    fn lint_flags_unknown_frame_id() {
        let plan = FaultPlan::parse(
            "[plan]\nname = \"x\"\n[[fault]]\nname = \"f\"\nkind = \"drop\"\nmatch_id = 999\n",
        )
        .unwrap();
        let findings = lint_plan(&plan, Some(&db()));
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].code, SIM301);
        assert_eq!(findings[0].span.line, 3);
    }

    #[test]
    fn lint_flags_overlapping_bus_off_windows() {
        let plan = FaultPlan::parse(
            "[plan]\nname = \"x\"\n\
             [[fault]]\nname = \"a\"\nkind = \"bus_off\"\nwindow = [0, 100]\n\
             [[fault]]\nname = \"b\"\nkind = \"bus_off\"\nwindow = [50, 150]\n",
        )
        .unwrap();
        let findings = lint_plan(&plan, None);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].code, SIM302);
    }

    #[test]
    fn lint_flags_probability_out_of_range() {
        let plan = FaultPlan::parse(
            "[plan]\nname = \"x\"\n[[fault]]\nname = \"f\"\nkind = \"drop\"\nprobability = 1.5\n",
        )
        .unwrap();
        let findings = lint_plan(&plan, None);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].code, SIM303);
    }

    #[test]
    fn lint_flags_empty_window_unknown_node_and_bad_byte() {
        let plan = FaultPlan::parse(
            "[plan]\nname = \"x\"\n\
             [[fault]]\nname = \"w\"\nkind = \"drop\"\nwindow = [500, 500]\n\
             [[fault]]\nname = \"n\"\nkind = \"node_crash\"\nnode = \"GHOST\"\nwindow = [0, 10]\n\
             [[fault]]\nname = \"c\"\nkind = \"corrupt\"\nbyte = 9\n",
        )
        .unwrap();
        let findings = lint_plan(&plan, Some(&db()));
        let codes: Vec<&str> = findings.iter().map(|d| d.code.0).collect();
        assert!(codes.contains(&"SIM304"), "{codes:?}");
        assert!(codes.contains(&"SIM305"), "{codes:?}");
        assert!(codes.contains(&"SIM306"), "{codes:?}");
    }

    #[test]
    fn clean_plan_lints_clean() {
        let plan = FaultPlan::parse(FULL_PLAN).unwrap();
        // match_id 0x200 == 512 (rptSw); replay matches 257 which is NOT in
        // this tiny db, so lint against None db only.
        assert!(lint_plan(&plan, None).is_empty());
    }
}
