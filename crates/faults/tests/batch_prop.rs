//! Property-based equivalence of the batch hypertrace engine and the
//! per-trace sequential loop: for random corpora over a branching, cyclic
//! specification the batch verdicts must match
//! [`faults::conformance::check_lifted_with`] **verbatim** — including
//! counterexample traces and first-unknown-event reporting — at 1 and 8
//! threads, and the per-trace verdict must never depend on ingest order.

use faults::batch::BatchRun;
use faults::conformance::check_lifted_with;
use fdrlite::{Checker, ModelStore};
use proptest::prelude::*;

/// Branching and cyclic on purpose: the trie walk must handle loops back
/// into earlier normal-form nodes and refusals at every depth.
const MODEL: &str = "
datatype M = req | rpt | upd
channel rec, send : M
SPEC = rec.req -> (send.rpt -> SPEC [] send.upd -> STOP)
";

/// Pool the random traces draw from: conformant steps, alphabet events the
/// spec refuses, and one name the model does not declare at all.
const EVENTS: &[&str] = &["rec.req", "send.rpt", "send.upd", "rec.upd", "ghost.evt"];

fn load() -> cspm::LoadedScript {
    cspm::Script::parse(MODEL)
        .expect("model parses")
        .load()
        .expect("model loads")
}

fn arb_trace() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(
        (0usize..EVENTS.len()).prop_map(|i| EVENTS[i].to_string()),
        0..8,
    )
}

/// A corpus whose traces carry their original index, shuffled into an
/// arbitrary ingest order (seeded Fisher–Yates; the vendored proptest has
/// no `prop_shuffle`).
fn arb_shuffled_corpus() -> impl Strategy<Value = Vec<(usize, Vec<String>)>> {
    (proptest::collection::vec(arb_trace(), 0..24), any::<u64>()).prop_map(|(corpus, seed)| {
        let mut tagged: Vec<_> = corpus.into_iter().enumerate().collect();
        let mut state = seed | 1;
        for i in (1..tagged.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            tagged.swap(i, j);
        }
        tagged
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn batch_verdicts_match_the_sequential_loop_verbatim(
        corpus in proptest::collection::vec(arb_trace(), 0..24),
    ) {
        let loaded = load();
        let checker = Checker::new();
        let sequential = ModelStore::new();
        let expected: Vec<_> = corpus
            .iter()
            .map(|trace| {
                check_lifted_with(&loaded, "SPEC", trace, &checker, &sequential)
                    .expect("spec resolves")
                    .verdict
            })
            .collect();
        for threads in [1usize, 8] {
            let store = ModelStore::new();
            let mut run = BatchRun::new(&loaded, "SPEC", &checker, &store)
                .expect("spec resolves");
            for trace in &corpus {
                run.push(trace);
            }
            let report = run.finish(threads);
            prop_assert_eq!(&report.verdicts, &expected);
        }
    }

    #[test]
    fn ingest_order_never_changes_a_per_trace_verdict(
        shuffled in arb_shuffled_corpus(),
    ) {
        let loaded = load();
        let checker = Checker::new();
        let sequential = ModelStore::new();
        let store = ModelStore::new();
        let mut run = BatchRun::new(&loaded, "SPEC", &checker, &store)
            .expect("spec resolves");
        for (_, trace) in &shuffled {
            run.push(trace);
        }
        let report = run.finish(8);
        for (slot, (_original_index, trace)) in shuffled.iter().enumerate() {
            let expected = check_lifted_with(&loaded, "SPEC", trace, &checker, &sequential)
                .expect("spec resolves")
                .verdict;
            prop_assert_eq!(&report.verdicts[slot], &expected);
        }
    }
}
