//! A hand-rolled JSON value parser shared across the toolchain.
//!
//! The vendored `serde` is an API stand-in with no deserializer, and the
//! places that read JSON — trace corpora (`faults::batch`), the checking
//! service's wire frames (`crates/service`) and the CLI's machine-output
//! tests — only need values, not a data-model mapping. This module is the
//! inbound counterpart of [`crate::json_string`]: full value grammar
//! (null, bools, numbers, strings with escapes, arrays, objects).

use std::fmt;

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`; integral values up to
    /// 2⁵³ round-trip exactly).
    Number(f64),
    /// A string, escapes already decoded.
    String(String),
    /// An array, in source order.
    Array(Vec<Value>),
    /// An object as a key–value list, in source order (duplicate keys are
    /// preserved; callers decide the policy).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The string payload, if this is a [`Value::String`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a [`Value::Number`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a `u64`, if this is an integral
    /// [`Value::Number`] in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if this is a [`Value::Array`].
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The first value under `key`, if this is a [`Value::Object`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// A parse failure: 1-based byte column plus a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// 1-based byte offset of the failure.
    pub col: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "column {}: {}", self.col, self.message)
    }
}

/// Parse exactly one JSON value (plus surrounding whitespace).
///
/// # Errors
///
/// [`JsonError`] with the first syntax error (1-based column).
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.error("trailing characters after the JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            col: (self.pos + 1) as u32,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.error("dangling escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: require \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(cp)
                            } else {
                                char::from_u32(unit)
                            };
                            out.push(c.ok_or_else(|| self.error("invalid unicode escape"))?);
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(self.error("unescaped control character in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is &str, so
                    // boundaries are valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).expect("input was a str");
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut unit = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.error("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.error("invalid hex digit in \\u escape"))?;
            unit = unit * 16 + digit;
            self.pos += 1;
        }
        Ok(unit)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| JsonError {
                col: (start + 1) as u32,
                message: format!("invalid number `{text}`"),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_parse_and_accessors_work() {
        let v = parse(r#"{"id":"t-1","n":42,"ok":true,"xs":[1,"two",null]}"#).unwrap();
        assert_eq!(v.get("id").and_then(Value::as_str), Some("t-1"));
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(42));
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(
            v.get("xs").and_then(Value::as_array).map(<[Value]>::len),
            Some(3)
        );
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn escapes_and_surrogates_decode() {
        let v = parse(r#""a\n\"b\" é 😀""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\"b\" é 😀"));
    }

    #[test]
    fn errors_carry_columns() {
        let e = parse("[1,,2]").unwrap_err();
        assert_eq!(e.col, 4);
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1] trailing").is_err());
        assert!(parse("1e999999").unwrap().as_f64().unwrap().is_infinite());
    }

    #[test]
    fn non_integral_numbers_are_not_u64() {
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
    }
}
