//! `diag` — the shared diagnostics currency of the `auto-csp` toolchain.
//!
//! Every stage of the paper's Fig. 1 pipeline (CAPL frontend, CAN database
//! cross-checks, CSPm structural analysis) reports problems as the same
//! [`Diagnostic`] type: a stable [`Code`], a [`Severity`], a source [`Span`]
//! and a message, optionally with notes. One currency means the CLI, the
//! translator pipeline and the test suite can render, count, gate and
//! serialise diagnostics uniformly.
//!
//! Code namespaces are allocated per stage:
//!
//! | prefix    | stage                                            |
//! |-----------|--------------------------------------------------|
//! | `CAPL0xx` | CAPL program analysis                            |
//! | `DBC1xx`  | CAN database hygiene and CAPL ↔ `.dbc` checks    |
//! | `CSP2xx`  | CSPm structural analysis (pre-LTS)               |
//! | `SIM3xx`  | fault-plan validation and plan ↔ `.dbc` checks   |
//! | `STO4xx`  | on-disk model-cache integrity (`fdrlite::persist`) |
//! | `ANA3xx`  | semantic model analysis (`autocsp analyze`, see [`ana`]) |
//! | `SUP5xx`  | supervised job runtime (`fdrlite::supervisor`, `autocsp run`) |
//! | `SRV6xx`  | checking service orchestration (`crates/service`, `autocsp serve`) |
//!
//! Rendering follows the familiar compiler shape:
//!
//! ```text
//! error[CAPL002]: `ghost` is not declared
//!   --> app.can:3:5
//!    |
//!  3 |   ghost = 1;
//!    |   ^^^^^
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

use std::fmt;

/// How severe a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory only; never gates.
    Info,
    /// A likely mistake; gates under `--deny-warnings`.
    Warning,
    /// A definite defect; always gates.
    Error,
}

impl Severity {
    /// Lower-case label used in rendered output and JSON.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A stable diagnostic code, e.g. `CAPL002` or `CSP201`.
///
/// Codes are part of the tool's public interface: once published in
/// `docs/LINTS.md` they are never renumbered, only retired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Code(pub &'static str);

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

/// A half-open source region: 1-based line and column plus a length in
/// characters on that line.
///
/// Positions flow from the per-language frontends (which each have their own
/// position types); a zero line means "no usable position" and suppresses
/// the source excerpt when rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based line number (0 = unknown).
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
    /// Length of the region in characters (minimum 1 when rendering).
    pub len: u32,
}

impl Span {
    /// A span at `line:col` covering `len` characters.
    pub fn new(line: u32, col: u32, len: u32) -> Span {
        Span { line, col, len }
    }

    /// A zero-length marker span at `line:col`.
    pub fn point(line: u32, col: u32) -> Span {
        Span { line, col, len: 1 }
    }

    /// The unknown span (no excerpt is rendered).
    pub fn unknown() -> Span {
        Span::default()
    }

    /// Whether this span carries a usable position.
    pub fn is_known(&self) -> bool {
        self.line > 0
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// One reported problem.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code identifying the rule that fired.
    pub code: Code,
    /// How severe the problem is.
    pub severity: Severity,
    /// Where it was detected (best effort).
    pub span: Span,
    /// Human-readable description.
    pub message: String,
    /// Supplementary notes rendered beneath the excerpt.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// An error-severity diagnostic.
    pub fn error(code: Code, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Error,
            span,
            message: message.into(),
            notes: Vec::new(),
        }
    }

    /// A warning-severity diagnostic.
    pub fn warning(code: Code, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(code, span, message)
        }
    }

    /// An info-severity diagnostic.
    pub fn info(code: Code, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Info,
            ..Diagnostic::error(code, span, message)
        }
    }

    /// Attach a note (builder style).
    #[must_use]
    pub fn with_note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }

    /// Render this diagnostic against the file it refers to.
    ///
    /// `file` is the display name, `source` the full text (used for the
    /// excerpt; pass `""` to skip excerpts).
    pub fn render(&self, file: &str, source: &str) -> String {
        let mut out = format!("{}[{}]: {}\n", self.severity, self.code, self.message);
        if self.span.is_known() {
            let gutter = digits(self.span.line);
            out.push_str(&format!(
                "{:width$}--> {}:{}\n",
                "",
                file,
                self.span,
                width = gutter + 1
            ));
            if let Some(text) = source.lines().nth(self.span.line as usize - 1) {
                let line = self.span.line;
                out.push_str(&format!("{:width$} |\n", "", width = gutter));
                out.push_str(&format!("{line:>gutter$} | {text}\n"));
                let col = (self.span.col.max(1) - 1) as usize;
                // Column offsets count characters; pad accordingly so the
                // caret lands correctly even with multi-byte source.
                let pad: String = text
                    .chars()
                    .take(col)
                    .map(|c| if c == '\t' { '\t' } else { ' ' })
                    .collect();
                let carets = "^".repeat(self.span.len.max(1) as usize);
                out.push_str(&format!("{:width$} | {pad}{carets}\n", "", width = gutter));
            }
        } else {
            out.push_str(&format!(" --> {file}\n"));
        }
        for note in &self.notes {
            out.push_str(&format!("  note: {note}\n"));
        }
        out
    }

    /// This diagnostic as a JSON object (fully escaped, no trailing newline).
    pub fn to_json(&self, file: &str) -> String {
        let mut notes = String::from("[");
        for (i, n) in self.notes.iter().enumerate() {
            if i > 0 {
                notes.push(',');
            }
            notes.push_str(&json_string(n));
        }
        notes.push(']');
        format!(
            "{{\"code\":{},\"severity\":{},\"file\":{},\"line\":{},\"col\":{},\"len\":{},\"message\":{},\"notes\":{}}}",
            json_string(self.code.0),
            json_string(self.severity.label()),
            json_string(file),
            self.span.line,
            self.span.col,
            self.span.len,
            json_string(&self.message),
            notes
        )
    }
}

fn digits(mut n: u32) -> usize {
    let mut d = 1;
    while n >= 10 {
        n /= 10;
        d += 1;
    }
    d
}

/// Escape `s` as a JSON string literal (with surrounding quotes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Stable codes of the `ANA3xx` family: semantic model analysis.
///
/// Emitted by the semantic analyzer (`cspm::analyze`, surfaced as
/// `autocsp analyze` and as gating hooks in `check`/`lint`). Unlike the
/// syntactic `CSP2xx` lints these are computed on the *elaborated* model —
/// interprocedural alphabet inference sees through renaming and hiding,
/// and the graph findings are read off the compiled LTS itself — so every
/// finding states a semantic certainty ("this event can never happen
/// here", "this assertion is guaranteed to fail"), never a heuristic.
///
/// The constants live here (rather than in `lint`) because the analyzer
/// sits below the lint crate in the dependency order; `lint::codes`
/// re-exports them into the catalogue.
pub mod ana {
    use crate::Code;

    /// A process could not be analysed (compile error or budget hit); the
    /// semantic findings for it are incomplete, not absent.
    pub const ANALYSIS_SKIPPED: Code = Code("ANA300");
    /// An event in a synchronisation set that only one operand can ever
    /// perform: the interface blocks it forever.
    pub const SYNC_ONE_SIDED: Code = Code("ANA301");
    /// An event in a synchronisation set that neither operand can ever
    /// perform.
    pub const SYNC_DEAD_EVENT: Code = Code("ANA302");
    /// An event that is hidden but never performable by the hidden
    /// process.
    pub const HIDE_DEAD_EVENT: Code = Code("ANA303");
    /// A definition semantically unreachable from every assertion, even
    /// through renaming and hiding.
    pub const UNREACHABLE_DEFINITION: Code = Code("ANA304");
    /// A process under a divergence-sensitive assertion can diverge: the
    /// assertion is guaranteed to fail.
    pub const DIVERGENT_PROCESS: Code = Code("ANA305");
    /// A process under a deadlock-freedom assertion reaches a guaranteed
    /// deadlock sink: the assertion is guaranteed to fail.
    pub const DEADLOCK_SINK: Code = Code("ANA306");
    /// The predicted state-space bound for an assertion exceeds the
    /// configured exploration budget: the check is expected to come back
    /// inconclusive.
    pub const PREDICTED_OVER_BUDGET: Code = Code("ANA307");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_for_gating() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn render_includes_code_excerpt_and_caret() {
        let d = Diagnostic::error(
            Code("CAPL002"),
            Span::new(2, 3, 5),
            "`ghost` is not declared",
        );
        let shown = d.render("app.can", "on start {\n  ghost = 1;\n}\n");
        assert!(
            shown.contains("error[CAPL002]: `ghost` is not declared"),
            "{shown}"
        );
        assert!(shown.contains("--> app.can:2:3"), "{shown}");
        assert!(shown.contains("2 |   ghost = 1;"), "{shown}");
        assert!(shown.contains("|   ^^^^^"), "{shown}");
    }

    #[test]
    fn render_without_position_skips_excerpt() {
        let d = Diagnostic::warning(Code("CSP201"), Span::unknown(), "dead sync");
        let shown = d.render("model.csp", "P = STOP\n");
        assert!(shown.contains("warning[CSP201]: dead sync"));
        assert!(!shown.contains('^'));
    }

    #[test]
    fn notes_are_rendered() {
        let d = Diagnostic::warning(Code("CAPL010"), Span::point(1, 1), "timer never fires")
            .with_note("set it with setTimer(t, ms)");
        assert!(d
            .render("a.can", "x")
            .contains("note: set it with setTimer"));
    }

    #[test]
    fn json_is_escaped() {
        let d = Diagnostic::error(
            Code("DBC101"),
            Span::new(1, 2, 3),
            "unknown \"message\"\\name",
        );
        let json = d.to_json("net.dbc");
        assert!(json.contains(r#""code":"DBC101""#), "{json}");
        assert!(json.contains(r#""severity":"error""#), "{json}");
        assert!(json.contains(r#""unknown \"message\"\\name""#), "{json}");
        assert!(json.contains(r#""line":1"#), "{json}");
    }

    #[test]
    fn multibyte_source_keeps_caret_alignment() {
        let d = Diagnostic::error(Code("CAPL002"), Span::new(1, 5, 2), "bad");
        let shown = d.render("a.can", "héllo wörld");
        // The caret line must not panic and must contain carets.
        assert!(shown.contains("^^"), "{shown}");
    }
}
