//! Property-based round-trip: for randomly generated CAPL programs,
//! `parse(print(ast)) == ast` (up to source positions, compared via
//! re-printing).

use capl::ast::*;
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    // Avoid keywords and type names.
    "[a-z][a-zA-Z0-9_]{0,6}".prop_filter("keyword", |s| {
        ![
            "on",
            "if",
            "else",
            "while",
            "for",
            "switch",
            "case",
            "default",
            "return",
            "break",
            "continue",
            "int",
            "long",
            "byte",
            "word",
            "dword",
            "char",
            "float",
            "double",
            "message",
            "msTimer",
            "timer",
            "void",
            "this",
            "includes",
            "variables",
            "output",
            "start",
        ]
        .contains(&s.as_str())
    })
}

fn scalar_type() -> impl Strategy<Value = Type> {
    prop_oneof![
        Just(Type::Int),
        Just(Type::Long),
        Just(Type::Byte),
        Just(Type::Word),
        Just(Type::Dword),
        Just(Type::Char),
    ]
}

fn arb_expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (0i64..1000).prop_map(Expr::Int),
        ident().prop_map(Expr::Ident),
        Just(Expr::This),
        "[ -~&&[^\"\\\\%']]{0,8}".prop_map(Expr::Str),
    ];
    leaf.prop_recursive(depth, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), arb_binop()).prop_map(|(l, r, op)| Expr::Binary {
                op,
                lhs: Box::new(l),
                rhs: Box::new(r),
            }),
            (inner.clone(), ident()).prop_map(|(o, m)| Expr::Member {
                object: Box::new(o),
                member: m,
            }),
            (ident(), proptest::collection::vec(inner.clone(), 0..3))
                .prop_map(|(name, args)| Expr::Call { name, args }),
            (ident(), inner.clone()).prop_map(|(v, idx)| Expr::Index {
                array: Box::new(Expr::Ident(v)),
                index: Box::new(idx),
            }),
            (inner.clone(), arb_unop()).prop_map(|(e, op)| Expr::Unary {
                op,
                expr: Box::new(e),
            }),
        ]
    })
    .boxed()
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Eq),
        Just(BinOp::Lt),
        Just(BinOp::And),
        Just(BinOp::BitOr),
        Just(BinOp::Shl),
    ]
}

fn arb_unop() -> impl Strategy<Value = UnOp> {
    prop_oneof![Just(UnOp::Neg), Just(UnOp::Not), Just(UnOp::BitNot)]
}

fn arb_stmt(depth: u32) -> BoxedStrategy<Stmt> {
    let leaf = prop_oneof![
        (ident(), arb_expr(2)).prop_map(|(v, e)| Stmt::Expr(Expr::Assign {
            target: Box::new(Expr::Ident(v)),
            value: Box::new(e),
        })),
        arb_expr(2).prop_map(|e| match e {
            // Bare non-call expressions are printed as statements fine, but
            // keep them call-like for realism.
            Expr::Call { .. } => Stmt::Expr(e),
            other => Stmt::Expr(Expr::Assign {
                target: Box::new(Expr::Ident("x".to_owned())),
                value: Box::new(other),
            }),
        }),
        Just(Stmt::Break),
        Just(Stmt::Continue),
        proptest::option::of(arb_expr(1)).prop_map(Stmt::Return),
        (scalar_type(), ident(), proptest::option::of(arb_expr(1))).prop_map(|(ty, name, init)| {
            Stmt::VarDecl(VarDecl {
                ty,
                name,
                array: None,
                init,
                pos: capl::Pos::default(),
            })
        }),
    ];
    leaf.prop_recursive(depth, 12, 2, |inner| {
        let blk = proptest::collection::vec(inner.clone(), 0..3).prop_map(|stmts| Block { stmts });
        prop_oneof![
            (arb_expr(1), blk.clone(), proptest::option::of(blk.clone()))
                .prop_map(|(cond, then, els)| Stmt::If { cond, then, els }),
            (arb_expr(1), blk.clone()).prop_map(|(cond, body)| Stmt::While { cond, body }),
            blk.prop_map(Stmt::Block),
        ]
    })
    .boxed()
}

fn arb_program() -> impl Strategy<Value = Program> {
    (
        proptest::collection::vec(
            (scalar_type(), ident(), proptest::option::of(arb_expr(1))),
            0..4,
        ),
        proptest::collection::vec(arb_stmt(2), 0..4),
        proptest::collection::vec(arb_stmt(2), 0..4),
    )
        .prop_map(|(vars, start_body, msg_body)| Program {
            includes: vec![],
            variables: vars
                .into_iter()
                .map(|(ty, name, init)| VarDecl {
                    ty,
                    name,
                    array: None,
                    init,
                    pos: capl::Pos::default(),
                })
                .collect(),
            handlers: vec![
                EventHandler {
                    event: EventKind::Start,
                    body: Block { stmts: start_body },
                    pos: capl::Pos::default(),
                },
                EventHandler {
                    event: EventKind::Message(MsgRef::Name("reqSw".to_owned())),
                    body: Block { stmts: msg_body },
                    pos: capl::Pos::default(),
                },
            ],
            functions: vec![],
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn print_parse_roundtrip(program in arb_program()) {
        let printed = capl::pretty::program(&program);
        let reparsed = capl::parse(&printed)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n{printed}"));
        let reprinted = capl::pretty::program(&reparsed);
        prop_assert_eq!(printed, reprinted);
    }
}
