//! C-style lexer for CAPL.

use crate::error::{CaplError, Pos};

/// A lexical token kind.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal (decimal or `0x…`).
    Int(i64),
    /// Floating literal.
    Float(f64),
    /// Character literal.
    Char(char),
    /// String literal.
    Str(String),
    /// `#include` directive token (the lexer keeps it distinct).
    HashInclude,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `=`
    Assign,
    /// `+=`
    PlusAssign,
    /// `-=`
    MinusAssign,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Not,
    /// `~`
    Tilde,
    /// `&`
    Amp,
    /// `|`
    Bar,
    /// `^`
    Caret,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `++`
    PlusPlus,
    /// `--`
    MinusMinus,
    /// `:`
    Colon,
    /// `?` (unused, reserved)
    Question,
    /// End of input.
    Eof,
}

/// A token with position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind.
    pub kind: TokenKind,
    /// Start position.
    pub pos: Pos,
}

struct Cursor<'a> {
    src: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.i).copied()
    }
    fn peek2(&self) -> Option<u8> {
        self.src.get(self.i + 1).copied()
    }
    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.i += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
    fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            col: self.col,
        }
    }
}

/// Tokenise CAPL source.
///
/// # Errors
///
/// [`CaplError::Lex`] on malformed literals, unterminated comments/strings or
/// unexpected characters.
pub fn lex(source: &str) -> Result<Vec<Token>, CaplError> {
    let mut cur = Cursor {
        src: source.as_bytes(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    loop {
        // Whitespace and comments.
        loop {
            match (cur.peek(), cur.peek2()) {
                (Some(c), _) if (c as char).is_whitespace() => {
                    cur.bump();
                }
                (Some(b'/'), Some(b'/')) => {
                    while let Some(c) = cur.peek() {
                        if c == b'\n' {
                            break;
                        }
                        cur.bump();
                    }
                }
                (Some(b'/'), Some(b'*')) => {
                    let start = cur.pos();
                    cur.bump();
                    cur.bump();
                    let mut closed = false;
                    while let Some(c) = cur.bump() {
                        if c == b'*' && cur.peek() == Some(b'/') {
                            cur.bump();
                            closed = true;
                            break;
                        }
                    }
                    if !closed {
                        return Err(CaplError::Lex {
                            pos: start,
                            message: "unterminated block comment".into(),
                        });
                    }
                }
                _ => break,
            }
        }

        let pos = cur.pos();
        let Some(c) = cur.peek() else {
            out.push(Token {
                kind: TokenKind::Eof,
                pos,
            });
            return Ok(out);
        };

        let kind = match c {
            b'#' => {
                // `#include`
                cur.bump();
                let mut word = String::new();
                while let Some(d) = cur.peek() {
                    if (d as char).is_ascii_alphabetic() {
                        word.push(d as char);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                if word == "include" {
                    TokenKind::HashInclude
                } else {
                    return Err(CaplError::Lex {
                        pos,
                        message: format!("unknown directive `#{word}`"),
                    });
                }
            }
            b'0'..=b'9' => num_literal(&mut cur, pos)?,
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let mut s = String::new();
                while let Some(d) = cur.peek() {
                    if (d as char).is_ascii_alphanumeric() || d == b'_' {
                        s.push(d as char);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                TokenKind::Ident(s)
            }
            b'\'' => {
                cur.bump();
                let Some(ch) = cur.bump() else {
                    return Err(CaplError::Lex {
                        pos,
                        message: "unterminated character literal".into(),
                    });
                };
                let ch = if ch == b'\\' {
                    let Some(esc) = cur.bump() else {
                        return Err(CaplError::Lex {
                            pos,
                            message: "unterminated escape".into(),
                        });
                    };
                    unescape(esc)
                } else {
                    ch as char
                };
                if cur.bump() != Some(b'\'') {
                    return Err(CaplError::Lex {
                        pos,
                        message: "expected closing `'`".into(),
                    });
                }
                TokenKind::Char(ch)
            }
            b'"' => {
                cur.bump();
                let mut s = String::new();
                loop {
                    match cur.bump() {
                        None => {
                            return Err(CaplError::Lex {
                                pos,
                                message: "unterminated string literal".into(),
                            });
                        }
                        Some(b'"') => break,
                        Some(b'\\') => {
                            let Some(esc) = cur.bump() else {
                                return Err(CaplError::Lex {
                                    pos,
                                    message: "unterminated escape".into(),
                                });
                            };
                            s.push(unescape(esc));
                        }
                        Some(other) => s.push(other as char),
                    }
                }
                TokenKind::Str(s)
            }
            _ => {
                // Operators and punctuation.
                let two = (c, cur.peek2());
                let (kind, len) = match two {
                    (b'+', Some(b'=')) => (TokenKind::PlusAssign, 2),
                    (b'-', Some(b'=')) => (TokenKind::MinusAssign, 2),
                    (b'+', Some(b'+')) => (TokenKind::PlusPlus, 2),
                    (b'-', Some(b'-')) => (TokenKind::MinusMinus, 2),
                    (b'=', Some(b'=')) => (TokenKind::Eq, 2),
                    (b'!', Some(b'=')) => (TokenKind::Ne, 2),
                    (b'<', Some(b'=')) => (TokenKind::Le, 2),
                    (b'>', Some(b'=')) => (TokenKind::Ge, 2),
                    (b'<', Some(b'<')) => (TokenKind::Shl, 2),
                    (b'>', Some(b'>')) => (TokenKind::Shr, 2),
                    (b'&', Some(b'&')) => (TokenKind::AndAnd, 2),
                    (b'|', Some(b'|')) => (TokenKind::OrOr, 2),
                    (b'{', _) => (TokenKind::LBrace, 1),
                    (b'}', _) => (TokenKind::RBrace, 1),
                    (b'(', _) => (TokenKind::LParen, 1),
                    (b')', _) => (TokenKind::RParen, 1),
                    (b'[', _) => (TokenKind::LBracket, 1),
                    (b']', _) => (TokenKind::RBracket, 1),
                    (b';', _) => (TokenKind::Semi, 1),
                    (b',', _) => (TokenKind::Comma, 1),
                    (b'.', _) => (TokenKind::Dot, 1),
                    (b'=', _) => (TokenKind::Assign, 1),
                    (b'<', _) => (TokenKind::Lt, 1),
                    (b'>', _) => (TokenKind::Gt, 1),
                    (b'!', _) => (TokenKind::Not, 1),
                    (b'~', _) => (TokenKind::Tilde, 1),
                    (b'&', _) => (TokenKind::Amp, 1),
                    (b'|', _) => (TokenKind::Bar, 1),
                    (b'^', _) => (TokenKind::Caret, 1),
                    (b'+', _) => (TokenKind::Plus, 1),
                    (b'-', _) => (TokenKind::Minus, 1),
                    (b'*', _) => (TokenKind::Star, 1),
                    (b'/', _) => (TokenKind::Slash, 1),
                    (b'%', _) => (TokenKind::Percent, 1),
                    (b':', _) => (TokenKind::Colon, 1),
                    (b'?', _) => (TokenKind::Question, 1),
                    (other, _) => {
                        return Err(CaplError::Lex {
                            pos,
                            message: format!("unexpected character `{}`", other as char),
                        });
                    }
                };
                for _ in 0..len {
                    cur.bump();
                }
                kind
            }
        };
        out.push(Token { kind, pos });
    }
}

fn unescape(esc: u8) -> char {
    match esc {
        b'n' => '\n',
        b't' => '\t',
        b'r' => '\r',
        b'0' => '\0',
        b'\\' => '\\',
        b'\'' => '\'',
        b'"' => '"',
        other => other as char,
    }
}

fn num_literal(cur: &mut Cursor<'_>, pos: Pos) -> Result<TokenKind, CaplError> {
    // Hex?
    if cur.peek() == Some(b'0') && matches!(cur.peek2(), Some(b'x') | Some(b'X')) {
        cur.bump();
        cur.bump();
        let mut n: i64 = 0;
        let mut any = false;
        while let Some(d) = cur.peek() {
            let digit = match d {
                b'0'..=b'9' => d - b'0',
                b'a'..=b'f' => d - b'a' + 10,
                b'A'..=b'F' => d - b'A' + 10,
                _ => break,
            };
            n = n * 16 + i64::from(digit);
            any = true;
            cur.bump();
        }
        if !any {
            return Err(CaplError::Lex {
                pos,
                message: "malformed hex literal".into(),
            });
        }
        return Ok(TokenKind::Int(n));
    }
    let mut n: i64 = 0;
    while let Some(d) = cur.peek() {
        if d.is_ascii_digit() {
            n = n * 10 + i64::from(d - b'0');
            cur.bump();
        } else {
            break;
        }
    }
    // Float?
    if cur.peek() == Some(b'.') && cur.peek2().is_some_and(|d| d.is_ascii_digit()) {
        cur.bump();
        let mut frac = 0f64;
        let mut scale = 0.1f64;
        while let Some(d) = cur.peek() {
            if d.is_ascii_digit() {
                frac += f64::from(d - b'0') * scale;
                scale /= 10.0;
                cur.bump();
            } else {
                break;
            }
        }
        return Ok(TokenKind::Float(n as f64 + frac));
    }
    Ok(TokenKind::Int(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_handler_header() {
        let ks = kinds("on message reqSw { output(rptSw); }");
        assert_eq!(ks[0], TokenKind::Ident("on".into()));
        assert_eq!(ks[1], TokenKind::Ident("message".into()));
        assert!(ks.contains(&TokenKind::Semi));
    }

    #[test]
    fn hex_and_decimal_ints() {
        assert_eq!(kinds("0x64")[0], TokenKind::Int(100));
        assert_eq!(kinds("42")[0], TokenKind::Int(42));
    }

    #[test]
    fn float_literal() {
        assert_eq!(kinds("1.5")[0], TokenKind::Float(1.5));
    }

    #[test]
    fn char_and_string_literals() {
        assert_eq!(kinds("'a'")[0], TokenKind::Char('a'));
        assert_eq!(kinds("'\\n'")[0], TokenKind::Char('\n'));
        assert_eq!(kinds("\"hi\\t\"")[0], TokenKind::Str("hi\t".into()));
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("a // comment\n/* block */ b");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn include_directive() {
        let ks = kinds("#include \"common.cin\"");
        assert_eq!(ks[0], TokenKind::HashInclude);
        assert_eq!(ks[1], TokenKind::Str("common.cin".into()));
    }

    #[test]
    fn compound_operators() {
        let ks = kinds("a += 1; b == c && d != e");
        assert!(ks.contains(&TokenKind::PlusAssign));
        assert!(ks.contains(&TokenKind::Eq));
        assert!(ks.contains(&TokenKind::AndAnd));
        assert!(ks.contains(&TokenKind::Ne));
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(lex("/* nope").is_err());
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("\"nope").is_err());
    }
}
