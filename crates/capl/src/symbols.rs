//! Symbol table construction and semantic diagnostics for CAPL programs.
//!
//! Diagnostics use the workspace-wide [`diag`] currency: each finding carries
//! a stable `CAPL0xx` code, a severity and a best-effort source span, so the
//! CLI and the `lint` crate can render and gate them uniformly.

use std::collections::{HashMap, HashSet};

use diag::{Code, Span};
pub use diag::{Diagnostic, Severity};

use crate::ast::*;
use crate::error::Pos;

/// `CAPL001` — a global variable is declared more than once.
pub const DUPLICATE_GLOBAL: Code = Code("CAPL001");
/// `CAPL002` — a name is used but never declared.
pub const UNDECLARED_NAME: Code = Code("CAPL002");
/// `CAPL003` — two handlers react to the same event.
pub const DUPLICATE_HANDLER: Code = Code("CAPL003");
/// `CAPL004` — `on timer t` where `t` is declared but not a timer.
pub const NOT_A_TIMER: Code = Code("CAPL004");
/// `CAPL005` — `on timer t` where `t` is not declared at all.
pub const UNDECLARED_TIMER: Code = Code("CAPL005");
/// `CAPL006` — `setTimer`/`cancelTimer` applied to a non-timer.
pub const TIMER_CALL_ON_NON_TIMER: Code = Code("CAPL006");
/// `CAPL007` — call to a function that is neither user-defined nor built in.
pub const UNKNOWN_FUNCTION: Code = Code("CAPL007");
/// `CAPL008` — `output()` of a name that is not a declared message variable.
pub const UNDECLARED_MESSAGE: Code = Code("CAPL008");
/// `CAPL009` — a timer has a handler but is never set, so it never fires.
pub const TIMER_NEVER_SET: Code = Code("CAPL009");

/// Convert a CAPL source position into a diagnostic span covering `len`
/// characters.
pub fn span_at(pos: Pos, len: usize) -> Span {
    Span::new(pos.line, pos.col, len.max(1) as u32)
}

/// The result of analysing a program: global symbols plus diagnostics.
#[derive(Debug, Clone, Default)]
pub struct SymbolReport {
    globals: HashMap<String, Type>,
    diagnostics: Vec<Diagnostic>,
}

impl SymbolReport {
    /// Type of a global variable, if declared.
    pub fn global(&self, name: &str) -> Option<&Type> {
        self.globals.get(name)
    }

    /// All diagnostics, in detection order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Only the error-severity diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }
}

/// CAPL built-in functions callable from application code.
const BUILTINS: &[&str] = &[
    "output",
    "setTimer",
    "cancelTimer",
    "write",
    "getValue",
    "putValue",
    "timeNow",
    "random",
];

/// Analyse `program`: build the global symbol table and report undeclared
/// names, duplicate handlers, unknown callees and suspicious timer usage.
pub fn analyze(program: &Program) -> SymbolReport {
    let mut report = SymbolReport::default();

    // Globals.
    for v in &program.variables {
        if report
            .globals
            .insert(v.name.clone(), v.ty.clone())
            .is_some()
        {
            report.diagnostics.push(Diagnostic::error(
                DUPLICATE_GLOBAL,
                span_at(v.pos, v.name.len()),
                format!("global `{}` declared twice", v.name),
            ));
        }
    }

    // Duplicate handlers.
    let mut seen_events: Vec<&EventKind> = Vec::new();
    for h in &program.handlers {
        if seen_events.contains(&&h.event) {
            report.diagnostics.push(
                Diagnostic::error(
                    DUPLICATE_HANDLER,
                    span_at(h.pos, 2),
                    format!("duplicate handler for {:?}", h.event),
                )
                .with_note("only the first handler for an event is reachable"),
            );
        }
        seen_events.push(&h.event);
    }

    // Timer references in handlers must be declared timer variables.
    for h in &program.handlers {
        if let EventKind::Timer(t) = &h.event {
            match report.globals.get(t) {
                Some(Type::MsTimer | Type::Timer) => {}
                Some(_) => report.diagnostics.push(Diagnostic::error(
                    NOT_A_TIMER,
                    span_at(h.pos, 2),
                    format!("`{t}` is not a timer variable"),
                )),
                None => report.diagnostics.push(Diagnostic::error(
                    UNDECLARED_TIMER,
                    span_at(h.pos, 2),
                    format!("timer `{t}` is not declared"),
                )),
            }
        }
    }

    let function_names: HashSet<&str> = program.functions.iter().map(|f| f.name.as_str()).collect();

    // Walk all bodies.
    let mut set_timers: HashSet<String> = HashSet::new();
    for h in &program.handlers {
        let mut scope = Scope::new(&report.globals, &function_names, h.pos);
        scope.walk_block(&h.body);
        report.diagnostics.extend(scope.diagnostics);
        set_timers.extend(scope.set_timers);
    }
    for f in &program.functions {
        let mut scope = Scope::new(&report.globals, &function_names, f.pos);
        for (ty, name) in &f.params {
            scope.locals.push((name.clone(), ty.clone()));
        }
        scope.walk_block(&f.body);
        report.diagnostics.extend(scope.diagnostics);
        set_timers.extend(scope.set_timers);
    }

    // Timers with a handler but never set will never fire.
    for h in &program.handlers {
        if let EventKind::Timer(t) = &h.event {
            if !set_timers.contains(t) {
                report.diagnostics.push(
                    Diagnostic::warning(
                        TIMER_NEVER_SET,
                        span_at(h.pos, 2),
                        format!("timer `{t}` has a handler but is never set"),
                    )
                    .with_note("arm it with `setTimer` or the handler never runs"),
                );
            }
        }
    }

    report
}

struct Scope<'a> {
    globals: &'a HashMap<String, Type>,
    functions: &'a HashSet<&'a str>,
    locals: Vec<(String, Type)>,
    diagnostics: Vec<Diagnostic>,
    set_timers: HashSet<String>,
    pos: Pos,
}

impl<'a> Scope<'a> {
    fn new(
        globals: &'a HashMap<String, Type>,
        functions: &'a HashSet<&'a str>,
        pos: Pos,
    ) -> Scope<'a> {
        Scope {
            globals,
            functions,
            locals: Vec::new(),
            diagnostics: Vec::new(),
            set_timers: HashSet::new(),
            pos,
        }
    }

    fn known(&self, name: &str) -> bool {
        self.locals.iter().any(|(n, _)| n == name) || self.globals.contains_key(name)
    }

    fn error(&mut self, code: Code, message: String) {
        self.diagnostics
            .push(Diagnostic::error(code, span_at(self.pos, 2), message));
    }

    fn walk_block(&mut self, block: &Block) {
        let depth = self.locals.len();
        for s in &block.stmts {
            self.walk_stmt(s);
        }
        self.locals.truncate(depth);
    }

    fn walk_stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::VarDecl(v) => {
                if let Some(init) = &v.init {
                    self.walk_expr(init);
                }
                self.locals.push((v.name.clone(), v.ty.clone()));
            }
            Stmt::Expr(e) => self.walk_expr(e),
            Stmt::If { cond, then, els } => {
                self.walk_expr(cond);
                self.walk_block(then);
                if let Some(els) = els {
                    self.walk_block(els);
                }
            }
            Stmt::While { cond, body } => {
                self.walk_expr(cond);
                self.walk_block(body);
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                let depth = self.locals.len();
                if let Some(init) = init {
                    self.walk_stmt(init);
                }
                if let Some(cond) = cond {
                    self.walk_expr(cond);
                }
                if let Some(step) = step {
                    self.walk_expr(step);
                }
                self.walk_block(body);
                self.locals.truncate(depth);
            }
            Stmt::Switch {
                scrutinee,
                cases,
                default,
            } => {
                self.walk_expr(scrutinee);
                for (k, b) in cases {
                    self.walk_expr(k);
                    self.walk_block(b);
                }
                if let Some(d) = default {
                    self.walk_block(d);
                }
            }
            Stmt::Return(Some(e)) => self.walk_expr(e),
            Stmt::Return(None) | Stmt::Break | Stmt::Continue => {}
            Stmt::Block(b) => self.walk_block(b),
        }
    }

    fn walk_expr(&mut self, expr: &Expr) {
        match expr {
            Expr::Int(_) | Expr::Float(_) | Expr::Char(_) | Expr::Str(_) | Expr::This => {}
            Expr::Ident(name) => {
                if !self.known(name) {
                    self.error(UNDECLARED_NAME, format!("`{name}` is not declared"));
                }
            }
            Expr::Member { object, .. } => self.walk_expr(object),
            Expr::Index { array, index } => {
                self.walk_expr(array);
                self.walk_expr(index);
            }
            Expr::Call { name, args } => {
                if name == "setTimer" || name == "cancelTimer" {
                    if let Some(Expr::Ident(t)) = args.first() {
                        match self.globals.get(t) {
                            Some(Type::MsTimer | Type::Timer) => {
                                if name == "setTimer" {
                                    self.set_timers.insert(t.clone());
                                }
                            }
                            _ => self.error(
                                TIMER_CALL_ON_NON_TIMER,
                                format!("`{t}` is not a declared timer"),
                            ),
                        }
                    }
                    for a in args.iter().skip(1) {
                        self.walk_expr(a);
                    }
                    return;
                }
                if name == "output" {
                    if let Some(Expr::Ident(m)) = args.first() {
                        // Message objects must be declared (either as a
                        // `message` variable or as a bare symbolic name that
                        // the network database resolves).
                        if !self.known(m) {
                            // Symbolic database names are allowed; this is
                            // only a warning because no database is attached
                            // at this stage.
                            self.diagnostics.push(Diagnostic::warning(
                                UNDECLARED_MESSAGE,
                                span_at(self.pos, 2),
                                format!(
                                    "`{m}` is not a declared message variable; assuming it is a database message name"
                                ),
                            ));
                        }
                    }
                    for a in args.iter().skip(1) {
                        self.walk_expr(a);
                    }
                    return;
                }
                if !BUILTINS.contains(&name.as_str()) && !self.functions.contains(name.as_str()) {
                    self.error(
                        UNKNOWN_FUNCTION,
                        format!("call to unknown function `{name}`"),
                    );
                }
                for a in args {
                    self.walk_expr(a);
                }
            }
            Expr::Unary { expr, .. } => self.walk_expr(expr),
            Expr::Binary { lhs, rhs, .. } => {
                self.walk_expr(lhs);
                self.walk_expr(rhs);
            }
            Expr::Assign { target, value } => {
                self.walk_expr(target);
                self.walk_expr(value);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn report(src: &str) -> SymbolReport {
        analyze(&parse(src).unwrap())
    }

    #[test]
    fn clean_program_has_no_errors() {
        let r = report(
            "variables { message reqSw m; msTimer t; int n = 0; }
             on start { setTimer(t, 100); }
             on message reqSw { output(m); n = n + 1; }
             on timer t { setTimer(t, 100); }",
        );
        assert_eq!(r.errors().count(), 0, "{:?}", r.diagnostics());
    }

    #[test]
    fn undeclared_variable_is_an_error() {
        let r = report("on start { ghost = 1; }");
        assert!(r.errors().any(|d| d.message.contains("ghost")));
        assert!(r.errors().any(|d| d.code == UNDECLARED_NAME));
    }

    #[test]
    fn duplicate_global_is_an_error() {
        let r = report("variables { int x; int x; }");
        assert!(r.errors().any(|d| d.message.contains("declared twice")));
        assert!(r.errors().any(|d| d.code == DUPLICATE_GLOBAL));
    }

    #[test]
    fn duplicate_handler_is_an_error() {
        let r = report("on start { } on start { }");
        assert!(r.errors().any(|d| d.message.contains("duplicate handler")));
        assert!(r.errors().any(|d| d.code == DUPLICATE_HANDLER));
    }

    #[test]
    fn undeclared_timer_handler_is_an_error() {
        let r = report("on timer t { }");
        assert!(r.errors().any(|d| d.message.contains("not declared")));
        assert!(r.errors().any(|d| d.code == UNDECLARED_TIMER));
    }

    #[test]
    fn timer_never_set_is_a_warning() {
        let r = report("variables { msTimer t; } on timer t { }");
        assert_eq!(r.errors().count(), 0);
        assert!(r
            .diagnostics()
            .iter()
            .any(|d| d.severity == Severity::Warning && d.message.contains("never set")));
    }

    #[test]
    fn set_timer_on_non_timer_is_an_error() {
        let r = report("variables { int t; } on start { setTimer(t, 5); }");
        assert!(r
            .errors()
            .any(|d| d.message.contains("not a declared timer")));
        assert!(r.errors().any(|d| d.code == TIMER_CALL_ON_NON_TIMER));
    }

    #[test]
    fn unknown_function_is_an_error() {
        let r = report("on start { launchMissiles(); }");
        assert!(r.errors().any(|d| d.message.contains("launchMissiles")));
        assert!(r.errors().any(|d| d.code == UNKNOWN_FUNCTION));
    }

    #[test]
    fn user_function_call_is_fine() {
        let r = report(
            "void helper(int x) { }
             on start { helper(1); }",
        );
        assert_eq!(r.errors().count(), 0);
    }

    #[test]
    fn locals_scope_to_their_block() {
        let r = report(
            "void f() {
                if (1 > 0) { int local; local = 2; }
                local = 3;
             }",
        );
        assert!(r.errors().any(|d| d.message.contains("local")));
    }

    #[test]
    fn function_params_are_in_scope() {
        let r = report("void f(int x) { x = x + 1; }");
        assert_eq!(r.errors().count(), 0);
    }

    #[test]
    fn globals_accessor() {
        let r = report("variables { int n = 0; }");
        assert_eq!(r.global("n"), Some(&Type::Int));
        assert_eq!(r.global("m"), None);
    }

    #[test]
    fn diagnostics_carry_spans_from_source() {
        let r = report("variables {\n  int x;\n  int x;\n}");
        let dup = r.errors().find(|d| d.code == DUPLICATE_GLOBAL).unwrap();
        assert_eq!(dup.span.line, 3, "{dup:?}");
    }
}
