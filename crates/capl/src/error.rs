//! Error and position types for the CAPL frontend.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A 1-based source position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Pos {
    /// Line number (1-based).
    pub line: u32,
    /// Column number (1-based).
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Errors from lexing or parsing CAPL source.
#[derive(Debug, Clone, PartialEq)]
pub enum CaplError {
    /// A lexical error.
    Lex {
        /// Position of the error.
        pos: Pos,
        /// Description.
        message: String,
    },
    /// A syntax error.
    Parse {
        /// Position of the error.
        pos: Pos,
        /// Description.
        message: String,
    },
}

impl fmt::Display for CaplError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CaplError::Lex { pos, message } => write!(f, "lex error at {pos}: {message}"),
            CaplError::Parse { pos, message } => write!(f, "parse error at {pos}: {message}"),
        }
    }
}

impl std::error::Error for CaplError {}
