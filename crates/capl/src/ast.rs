//! Abstract syntax tree for CAPL programs.

use serde::{Deserialize, Serialize};

use crate::error::Pos;

/// A whole CAPL program: the four block types of §IV-B1 of the paper —
/// optional `includes` and `variables` sections, event procedures and
/// user-defined functions.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// `#include "…"` paths from the `includes` section.
    pub includes: Vec<String>,
    /// Global declarations from the `variables` section.
    pub variables: Vec<VarDecl>,
    /// Event procedures, in source order.
    pub handlers: Vec<EventHandler>,
    /// User-defined functions, in source order.
    pub functions: Vec<FunctionDecl>,
}

impl Program {
    /// The handler for a given event kind, if present.
    pub fn handler(&self, event: &EventKind) -> Option<&EventHandler> {
        self.handlers.iter().find(|h| &h.event == event)
    }

    /// All `on message` handlers.
    pub fn message_handlers(&self) -> impl Iterator<Item = &EventHandler> {
        self.handlers
            .iter()
            .filter(|h| matches!(h.event, EventKind::Message(_)))
    }

    /// Find a function by name.
    pub fn function(&self, name: &str) -> Option<&FunctionDecl> {
        self.functions.iter().find(|f| f.name == name)
    }
}

/// A global or local variable declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VarDecl {
    /// The declared type.
    pub ty: Type,
    /// Variable name.
    pub name: String,
    /// Optional array length (`byte buf[8]`).
    pub array: Option<usize>,
    /// Optional initialiser expression.
    pub init: Option<Expr>,
    /// Source position.
    pub pos: Pos,
}

/// CAPL types (the subset used by ECU application code).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Type {
    /// `int` (16-bit in CAPL; modelled as i64).
    Int,
    /// `long`
    Long,
    /// `byte`
    Byte,
    /// `word`
    Word,
    /// `dword`
    Dword,
    /// `char`
    Char,
    /// `float` / `double`
    Float,
    /// `message <name-or-id>` — a CAN message object.
    Message(MsgRef),
    /// `msTimer`
    MsTimer,
    /// `timer` (seconds)
    Timer,
    /// `void` (function return type only)
    Void,
}

/// How a `message` variable or `on message` handler names its CAN message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MsgRef {
    /// By symbolic name from the CAN database, e.g. `reqSw`.
    Name(String),
    /// By raw CAN identifier, e.g. `0x64`.
    Id(u32),
    /// `*` — any message (only valid in `on message *`).
    Any,
}

impl MsgRef {
    /// The symbolic name, if this reference uses one.
    pub fn name(&self) -> Option<&str> {
        match self {
            MsgRef::Name(n) => Some(n),
            _ => None,
        }
    }
}

/// An event procedure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventHandler {
    /// What event triggers the procedure.
    pub event: EventKind,
    /// The body.
    pub body: Block,
    /// Source position.
    pub pos: Pos,
}

/// The events CAPL programs can react to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// `on start` — measurement start.
    Start,
    /// `on preStart`
    PreStart,
    /// `on stopMeasurement`
    StopMeasurement,
    /// `on message <m>`
    Message(MsgRef),
    /// `on timer <t>`
    Timer(String),
    /// `on key '<c>'`
    Key(char),
}

/// A user-defined function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionDecl {
    /// Return type.
    pub ret: Type,
    /// Function name.
    pub name: String,
    /// Parameters as `(type, name)` pairs.
    pub params: Vec<(Type, String)>,
    /// The body.
    pub body: Block,
    /// Source position.
    pub pos: Pos,
}

/// A `{ … }` block of statements.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// The statements, in order.
    pub stmts: Vec<Stmt>,
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// A local variable declaration.
    VarDecl(VarDecl),
    /// An expression statement (usually a call or assignment).
    Expr(Expr),
    /// `if (c) s [else s]`
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then: Block,
        /// Optional else-branch.
        els: Option<Block>,
    },
    /// `while (c) s`
    While {
        /// Condition.
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// `for (init; cond; step) s`
    For {
        /// Initialiser (statement, typically assignment or declaration).
        init: Option<Box<Stmt>>,
        /// Condition (defaults to true).
        cond: Option<Expr>,
        /// Step expression.
        step: Option<Expr>,
        /// Loop body.
        body: Block,
    },
    /// `switch (e) { case k: …; default: … }`
    Switch {
        /// Scrutinee.
        scrutinee: Expr,
        /// `case` arms: constant expression and body.
        cases: Vec<(Expr, Block)>,
        /// Optional `default` arm.
        default: Option<Block>,
    },
    /// `return [e];`
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// A nested block.
    Block(Block),
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Integer literal (decimal or hex).
    Int(i64),
    /// Floating literal.
    Float(f64),
    /// Character literal.
    Char(char),
    /// String literal.
    Str(String),
    /// A name.
    Ident(String),
    /// `this` — the message that triggered the current handler.
    This,
    /// Member access `m.signal` (signal or selector access on a message).
    Member {
        /// The object.
        object: Box<Expr>,
        /// The member name.
        member: String,
    },
    /// Array index `a[i]`.
    Index {
        /// The array.
        array: Box<Expr>,
        /// The index.
        index: Box<Expr>,
    },
    /// A call `f(a, b)` — including the CAPL built-ins `output`,
    /// `setTimer`, `cancelTimer`, `write`.
    Call {
        /// Function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Assignment `lhs = rhs` (also `+=` etc., desugared by the parser).
    Assign {
        /// Target (identifier, member or index expression).
        target: Box<Expr>,
        /// Value.
        value: Box<Expr>,
    },
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `!`
    Not,
    /// `~`
    BitNot,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
}
