//! `capl` — a frontend for Vector's CAPL language.
//!
//! CAPL (Communication Access Programming Language) is the C-based,
//! event-driven language used inside the CANoe IDE to program simulated ECU
//! network nodes (§IV-B of the paper). A CAPL program has no `main`; it is a
//! collection of *event procedures* (`on start`, `on message <m>`,
//! `on timer <t>`, `on key '<k>'`) plus `includes`/`variables` sections and
//! ordinary functions.
//!
//! This crate provides the front half of the paper's model extractor — the
//! part ANTLR generated for the authors:
//!
//! * [`lex`] / [`parse`] — source text to [`ast::Program`];
//! * [`analyze`] — a symbol table and semantic diagnostics (undeclared
//!   variables and timers, duplicate handlers, type-ish checks).
//!
//! The `translator` crate consumes the AST to emit CSPm, and `canoe-sim`
//! interprets it against a simulated CAN bus.
//!
//! # Example
//!
//! ```
//! let source = r#"
//!     variables {
//!       message reqSw msgReq;
//!       int count = 0;
//!     }
//!     on message reqSw {
//!       count = count + 1;
//!       output(rptSw);
//!     }
//! "#;
//! let program = capl::parse(source)?;
//! assert_eq!(program.handlers.len(), 1);
//! let report = capl::analyze(&program);
//! assert!(report.errors().next().is_none());
//! # Ok::<(), capl::CaplError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
mod error;
mod lexer;
mod parser;
pub mod pretty;
pub mod symbols;

pub use error::{CaplError, Pos};
pub use lexer::{lex, Token, TokenKind};
pub use symbols::{analyze, Diagnostic, Severity, SymbolReport};

/// Parse CAPL source text into a [`ast::Program`].
///
/// # Errors
///
/// Returns the first lexical or syntax error with its position.
pub fn parse(source: &str) -> Result<ast::Program, CaplError> {
    let tokens = lexer::lex(source)?;
    parser::parse_program(&tokens)
}
