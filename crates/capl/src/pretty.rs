//! Pretty-printing of CAPL ASTs back to source text.
//!
//! The printer produces canonical formatting; `parse ∘ print` is the
//! identity on ASTs, which the round-trip tests (including property-based
//! ones) verify. Useful for code generators and for normalising source in
//! tooling.

use std::fmt::Write as _;

use crate::ast::*;

/// Render a whole program in canonical formatting.
pub fn program(p: &Program) -> String {
    let mut out = String::new();
    if !p.includes.is_empty() {
        out.push_str("includes\n{\n");
        for inc in &p.includes {
            let _ = writeln!(out, "  #include \"{inc}\"");
        }
        out.push_str("}\n\n");
    }
    if !p.variables.is_empty() {
        out.push_str("variables\n{\n");
        for v in &p.variables {
            let _ = writeln!(out, "  {}", var_decl(v));
        }
        out.push_str("}\n\n");
    }
    for h in &p.handlers {
        let _ = writeln!(out, "on {}", event_kind(&h.event));
        out.push_str(&block(&h.body, 0));
        out.push('\n');
    }
    for f in &p.functions {
        let params = f
            .params
            .iter()
            .map(|(t, n)| format!("{} {n}", type_name(t)))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(out, "{} {}({params})", type_name(&f.ret), f.name);
        out.push_str(&block(&f.body, 0));
        out.push('\n');
    }
    out
}

fn event_kind(e: &EventKind) -> String {
    match e {
        EventKind::Start => "start".into(),
        EventKind::PreStart => "preStart".into(),
        EventKind::StopMeasurement => "stopMeasurement".into(),
        EventKind::Message(m) => format!("message {}", msg_ref(m)),
        EventKind::Timer(t) => format!("timer {t}"),
        EventKind::Key(c) => format!("key '{c}'"),
    }
}

fn msg_ref(m: &MsgRef) -> String {
    match m {
        MsgRef::Name(n) => n.clone(),
        MsgRef::Id(id) => format!("0x{id:x}"),
        MsgRef::Any => "*".into(),
    }
}

fn type_name(t: &Type) -> String {
    match t {
        Type::Int => "int".into(),
        Type::Long => "long".into(),
        Type::Byte => "byte".into(),
        Type::Word => "word".into(),
        Type::Dword => "dword".into(),
        Type::Char => "char".into(),
        Type::Float => "float".into(),
        Type::Message(m) => format!("message {}", msg_ref(m)),
        Type::MsTimer => "msTimer".into(),
        Type::Timer => "timer".into(),
        Type::Void => "void".into(),
    }
}

fn var_decl(v: &VarDecl) -> String {
    let mut s = format!("{} {}", type_name(&v.ty), v.name);
    if let Some(n) = v.array {
        let _ = write!(s, "[{n}]");
    }
    if let Some(init) = &v.init {
        let _ = write!(s, " = {}", expr(init));
    }
    s.push(';');
    s
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn block(b: &Block, depth: usize) -> String {
    let mut out = String::new();
    indent(&mut out, depth);
    out.push_str("{\n");
    for s in &b.stmts {
        out.push_str(&stmt(s, depth + 1));
    }
    indent(&mut out, depth);
    out.push_str("}\n");
    out
}

fn stmt(s: &Stmt, depth: usize) -> String {
    let mut out = String::new();
    match s {
        Stmt::VarDecl(v) => {
            indent(&mut out, depth);
            out.push_str(&var_decl(v));
            out.push('\n');
        }
        Stmt::Expr(e) => {
            indent(&mut out, depth);
            out.push_str(&expr(e));
            out.push_str(";\n");
        }
        Stmt::If { cond, then, els } => {
            indent(&mut out, depth);
            let _ = writeln!(out, "if ({})", expr(cond));
            out.push_str(&block(then, depth));
            if let Some(els) = els {
                indent(&mut out, depth);
                out.push_str("else\n");
                out.push_str(&block(els, depth));
            }
        }
        Stmt::While { cond, body } => {
            indent(&mut out, depth);
            let _ = writeln!(out, "while ({})", expr(cond));
            out.push_str(&block(body, depth));
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            indent(&mut out, depth);
            let init_text = match init {
                Some(boxed) => match boxed.as_ref() {
                    Stmt::Expr(e) => expr(e),
                    Stmt::VarDecl(v) => {
                        let d = var_decl(v);
                        d.trim_end_matches(';').to_owned()
                    }
                    _ => String::new(),
                },
                None => String::new(),
            };
            let cond_text = cond.as_ref().map(expr).unwrap_or_default();
            let step_text = step.as_ref().map(expr).unwrap_or_default();
            let _ = writeln!(out, "for ({init_text}; {cond_text}; {step_text})");
            out.push_str(&block(body, depth));
        }
        Stmt::Switch {
            scrutinee,
            cases,
            default,
        } => {
            indent(&mut out, depth);
            let _ = writeln!(out, "switch ({})", expr(scrutinee));
            indent(&mut out, depth);
            out.push_str("{\n");
            for (k, b) in cases {
                indent(&mut out, depth + 1);
                let _ = writeln!(out, "case {}:", expr(k));
                for s in &b.stmts {
                    out.push_str(&stmt(s, depth + 2));
                }
            }
            if let Some(d) = default {
                indent(&mut out, depth + 1);
                out.push_str("default:\n");
                for s in &d.stmts {
                    out.push_str(&stmt(s, depth + 2));
                }
            }
            indent(&mut out, depth);
            out.push_str("}\n");
        }
        Stmt::Return(e) => {
            indent(&mut out, depth);
            match e {
                Some(e) => {
                    let _ = writeln!(out, "return {};", expr(e));
                }
                None => out.push_str("return;\n"),
            }
        }
        Stmt::Break => {
            indent(&mut out, depth);
            out.push_str("break;\n");
        }
        Stmt::Continue => {
            indent(&mut out, depth);
            out.push_str("continue;\n");
        }
        Stmt::Block(b) => out.push_str(&block(b, depth)),
    }
    out
}

/// Operands of postfix `.member` / `[index]` need parentheses when they are
/// unary/assignment expressions (binary operands already print their own).
fn postfix_operand(e: &Expr) -> String {
    match e {
        Expr::Unary { .. } | Expr::Assign { .. } => format!("({})", expr(e)),
        other => expr(other),
    }
}

/// Render an expression (fully parenthesised where precedence matters).
pub fn expr(e: &Expr) -> String {
    match e {
        Expr::Int(n) => n.to_string(),
        Expr::Float(f) => {
            if f.fract() == 0.0 {
                format!("{f:.1}")
            } else {
                f.to_string()
            }
        }
        Expr::Char(c) => format!("'{c}'"),
        Expr::Str(s) => format!(
            "\"{}\"",
            s.replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n")
        ),
        Expr::Ident(n) => n.clone(),
        Expr::This => "this".into(),
        Expr::Member { object, member } => {
            format!("{}.{member}", postfix_operand(object))
        }
        Expr::Index { array, index } => {
            format!("{}[{}]", postfix_operand(array), expr(index))
        }
        Expr::Call { name, args } => {
            let a = args.iter().map(expr).collect::<Vec<_>>().join(", ");
            format!("{name}({a})")
        }
        Expr::Unary { op, expr: inner } => {
            let op = match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
                UnOp::BitNot => "~",
            };
            // Parenthesise the operand so `-(-x)` never prints as `--x`.
            format!("{op}({})", expr(inner))
        }
        Expr::Binary { op, lhs, rhs } => {
            let op = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Mod => "%",
                BinOp::Eq => "==",
                BinOp::Ne => "!=",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::And => "&&",
                BinOp::Or => "||",
                BinOp::BitAnd => "&",
                BinOp::BitOr => "|",
                BinOp::BitXor => "^",
                BinOp::Shl => "<<",
                BinOp::Shr => ">>",
            };
            format!("({} {op} {})", expr(lhs), expr(rhs))
        }
        Expr::Assign { target, value } => format!("{} = {}", expr(target), expr(value)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn strip_positions(p: &Program) -> String {
        // ASTs carry source positions; compare via re-printing instead.
        program(p)
    }

    fn roundtrip(src: &str) {
        let p1 = parse(src).unwrap();
        let printed = program(&p1);
        let p2 = parse(&printed)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n--- printed ---\n{printed}"));
        assert_eq!(
            strip_positions(&p1),
            strip_positions(&p2),
            "printing is not a fixpoint for\n{printed}"
        );
    }

    #[test]
    fn roundtrips_the_case_study_sources() {
        for src in [
            "variables { message reqSw m; int n = 0; } on message reqSw { output(m); n = n + 1; }",
            "includes { #include \"common.cin\" } on start { }",
            "variables { msTimer t; } on start { setTimer(t, 100); } on timer t { cancelTimer(t); }",
        ] {
            roundtrip(src);
        }
    }

    #[test]
    fn roundtrips_control_flow() {
        roundtrip(
            "void f(int x) {
                if (x > 0) { x = x - 1; } else { x = 0; }
                while (x < 10) { x = x + 1; }
                for (x = 0; x < 8; x = x + 1) { g(x); }
                switch (x) { case 1: g(1); break; default: g(0); }
                return;
             }
             void g(int y) { }",
        );
    }

    #[test]
    fn roundtrips_expressions() {
        roundtrip(
            "variables { message 0x64 m; byte buf[4]; }
             on message * {
                buf[0] = this.sig + 1 * 2;
                m.field = (buf[1] >> 2) & 0xF;
                write(\"x=%d\", buf[0]);
             }",
        );
    }

    #[test]
    fn printed_output_is_stable() {
        let src = "variables { int a = 1; } on start { a = a + 1; }";
        let p = parse(src).unwrap();
        let once = program(&p);
        let twice = program(&parse(&once).unwrap());
        assert_eq!(once, twice);
    }
}
