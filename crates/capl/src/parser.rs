//! Recursive-descent parser for CAPL.

use crate::ast::*;
use crate::error::{CaplError, Pos};
use crate::lexer::{Token, TokenKind};

/// Parse a token stream into a [`Program`].
///
/// # Errors
///
/// [`CaplError::Parse`] on the first syntax error.
pub(crate) fn parse_program(tokens: &[Token]) -> Result<Program, CaplError> {
    let mut p = Parser { tokens, i: 0 };
    let mut program = Program::default();
    while !p.at_eof() {
        if p.is_kw("includes") {
            p.bump();
            p.expect(&TokenKind::LBrace, "`{`")?;
            while !p.eat(&TokenKind::RBrace) {
                p.expect(&TokenKind::HashInclude, "`#include`")?;
                match p.bump() {
                    TokenKind::Str(path) => program.includes.push(path),
                    other => {
                        return p.err(format!("expected include path string, found {other:?}"))
                    }
                }
            }
        } else if p.is_kw("variables") {
            p.bump();
            p.expect(&TokenKind::LBrace, "`{`")?;
            while !p.eat(&TokenKind::RBrace) {
                program.variables.push(p.var_decl()?);
            }
        } else if p.is_kw("on") {
            program.handlers.push(p.handler()?);
        } else {
            program.functions.push(p.function()?);
        }
    }
    Ok(program)
}

struct Parser<'a> {
    tokens: &'a [Token],
    i: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.i.min(self.tokens.len() - 1)].kind
    }

    fn pos(&self) -> Pos {
        self.tokens[self.i.min(self.tokens.len() - 1)].pos
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.tokens[self.i].kind.clone();
        if self.i < self.tokens.len() - 1 {
            self.i += 1;
        }
        k
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, CaplError> {
        Err(CaplError::Parse {
            pos: self.pos(),
            message: message.into(),
        })
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), CaplError> {
        if self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {what}, found {:?}", self.peek()))
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, CaplError> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected {what}, found {other:?}")),
        }
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s == kw)
    }

    fn peek_type(&self) -> Option<Type> {
        let TokenKind::Ident(s) = self.peek() else {
            return None;
        };
        Some(match s.as_str() {
            "int" => Type::Int,
            "long" => Type::Long,
            "byte" => Type::Byte,
            "word" => Type::Word,
            "dword" => Type::Dword,
            "char" => Type::Char,
            "float" | "double" => Type::Float,
            "msTimer" => Type::MsTimer,
            "timer" => Type::Timer,
            "void" => Type::Void,
            "message" => Type::Message(MsgRef::Any), // refined by caller
            _ => return None,
        })
    }

    fn msg_ref(&mut self) -> Result<MsgRef, CaplError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(MsgRef::Name(name))
            }
            TokenKind::Int(id) => {
                self.bump();
                Ok(MsgRef::Id(id as u32))
            }
            TokenKind::Star => {
                self.bump();
                Ok(MsgRef::Any)
            }
            other => self.err(format!("expected message name, id or `*`, found {other:?}")),
        }
    }

    fn var_decl(&mut self) -> Result<VarDecl, CaplError> {
        let pos = self.pos();
        let Some(mut ty) = self.peek_type() else {
            return self.err(format!("expected a type, found {:?}", self.peek()));
        };
        self.bump();
        if matches!(ty, Type::Message(_)) {
            ty = Type::Message(self.msg_ref()?);
        }
        let name = self.ident("variable name")?;
        let array = if self.eat(&TokenKind::LBracket) {
            let n = match self.bump() {
                TokenKind::Int(n) if n >= 0 => n as usize,
                other => return self.err(format!("expected array length, found {other:?}")),
            };
            self.expect(&TokenKind::RBracket, "`]`")?;
            Some(n)
        } else {
            None
        };
        let init = if self.eat(&TokenKind::Assign) {
            Some(self.expr()?)
        } else {
            None
        };
        self.expect(&TokenKind::Semi, "`;`")?;
        Ok(VarDecl {
            ty,
            name,
            array,
            init,
            pos,
        })
    }

    fn handler(&mut self) -> Result<EventHandler, CaplError> {
        let pos = self.pos();
        self.bump(); // `on`
        let event = match self.peek().clone() {
            TokenKind::Ident(w) => match w.as_str() {
                "start" => {
                    self.bump();
                    EventKind::Start
                }
                "preStart" => {
                    self.bump();
                    EventKind::PreStart
                }
                "stopMeasurement" => {
                    self.bump();
                    EventKind::StopMeasurement
                }
                "message" => {
                    self.bump();
                    EventKind::Message(self.msg_ref()?)
                }
                "timer" => {
                    self.bump();
                    EventKind::Timer(self.ident("timer name")?)
                }
                "key" => {
                    self.bump();
                    match self.bump() {
                        TokenKind::Char(c) => EventKind::Key(c),
                        other => {
                            return self.err(format!("expected key character, found {other:?}"))
                        }
                    }
                }
                other => return self.err(format!("unknown event kind `{other}`")),
            },
            other => return self.err(format!("expected event kind after `on`, found {other:?}")),
        };
        let body = self.block()?;
        Ok(EventHandler { event, body, pos })
    }

    fn function(&mut self) -> Result<FunctionDecl, CaplError> {
        let pos = self.pos();
        let Some(ret) = self.peek_type() else {
            return self.err(format!(
                "expected `includes`, `variables`, `on` or a function, found {:?}",
                self.peek()
            ));
        };
        self.bump();
        let name = self.ident("function name")?;
        self.expect(&TokenKind::LParen, "`(`")?;
        let mut params = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                let Some(pty) = self.peek_type() else {
                    return self.err(format!("expected parameter type, found {:?}", self.peek()));
                };
                self.bump();
                let pname = self.ident("parameter name")?;
                params.push((pty, pname));
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen, "`)`")?;
        }
        let body = self.block()?;
        Ok(FunctionDecl {
            ret,
            name,
            params,
            body,
            pos,
        })
    }

    fn block(&mut self) -> Result<Block, CaplError> {
        self.expect(&TokenKind::LBrace, "`{`")?;
        let mut stmts = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            stmts.push(self.stmt()?);
        }
        Ok(Block { stmts })
    }

    /// A single statement, or a one-statement block for `if`/loop bodies.
    fn stmt_or_block(&mut self) -> Result<Block, CaplError> {
        if matches!(self.peek(), TokenKind::LBrace) {
            self.block()
        } else {
            Ok(Block {
                stmts: vec![self.stmt()?],
            })
        }
    }

    fn stmt(&mut self) -> Result<Stmt, CaplError> {
        // Local declaration?
        if self.peek_type().is_some() {
            return Ok(Stmt::VarDecl(self.var_decl()?));
        }
        match self.peek().clone() {
            TokenKind::LBrace => Ok(Stmt::Block(self.block()?)),
            TokenKind::Ident(w) => match w.as_str() {
                "if" => {
                    self.bump();
                    self.expect(&TokenKind::LParen, "`(`")?;
                    let cond = self.expr()?;
                    self.expect(&TokenKind::RParen, "`)`")?;
                    let then = self.stmt_or_block()?;
                    let els = if self.is_kw("else") {
                        self.bump();
                        Some(self.stmt_or_block()?)
                    } else {
                        None
                    };
                    Ok(Stmt::If { cond, then, els })
                }
                "while" => {
                    self.bump();
                    self.expect(&TokenKind::LParen, "`(`")?;
                    let cond = self.expr()?;
                    self.expect(&TokenKind::RParen, "`)`")?;
                    let body = self.stmt_or_block()?;
                    Ok(Stmt::While { cond, body })
                }
                "for" => {
                    self.bump();
                    self.expect(&TokenKind::LParen, "`(`")?;
                    let init = if self.eat(&TokenKind::Semi) {
                        None
                    } else if self.peek_type().is_some() {
                        Some(Box::new(Stmt::VarDecl(self.var_decl()?)))
                    } else {
                        let e = self.expr_with_assign()?;
                        self.expect(&TokenKind::Semi, "`;`")?;
                        Some(Box::new(Stmt::Expr(e)))
                    };
                    let cond = if matches!(self.peek(), TokenKind::Semi) {
                        None
                    } else {
                        Some(self.expr()?)
                    };
                    self.expect(&TokenKind::Semi, "`;`")?;
                    let step = if matches!(self.peek(), TokenKind::RParen) {
                        None
                    } else {
                        Some(self.expr_with_assign()?)
                    };
                    self.expect(&TokenKind::RParen, "`)`")?;
                    let body = self.stmt_or_block()?;
                    Ok(Stmt::For {
                        init,
                        cond,
                        step,
                        body,
                    })
                }
                "switch" => {
                    self.bump();
                    self.expect(&TokenKind::LParen, "`(`")?;
                    let scrutinee = self.expr()?;
                    self.expect(&TokenKind::RParen, "`)`")?;
                    self.expect(&TokenKind::LBrace, "`{`")?;
                    let mut cases = Vec::new();
                    let mut default = None;
                    while !self.eat(&TokenKind::RBrace) {
                        if self.is_kw("case") {
                            self.bump();
                            let k = self.expr()?;
                            self.expect(&TokenKind::Colon, "`:`")?;
                            cases.push((k, self.case_body()?));
                        } else if self.is_kw("default") {
                            self.bump();
                            self.expect(&TokenKind::Colon, "`:`")?;
                            default = Some(self.case_body()?);
                        } else {
                            return self.err(format!(
                                "expected `case` or `default`, found {:?}",
                                self.peek()
                            ));
                        }
                    }
                    Ok(Stmt::Switch {
                        scrutinee,
                        cases,
                        default,
                    })
                }
                "return" => {
                    self.bump();
                    let value = if matches!(self.peek(), TokenKind::Semi) {
                        None
                    } else {
                        Some(self.expr()?)
                    };
                    self.expect(&TokenKind::Semi, "`;`")?;
                    Ok(Stmt::Return(value))
                }
                "break" => {
                    self.bump();
                    self.expect(&TokenKind::Semi, "`;`")?;
                    Ok(Stmt::Break)
                }
                "continue" => {
                    self.bump();
                    self.expect(&TokenKind::Semi, "`;`")?;
                    Ok(Stmt::Continue)
                }
                _ => {
                    let e = self.expr_with_assign()?;
                    self.expect(&TokenKind::Semi, "`;`")?;
                    Ok(Stmt::Expr(e))
                }
            },
            _ => {
                let e = self.expr_with_assign()?;
                self.expect(&TokenKind::Semi, "`;`")?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    /// The body of a `case` arm: statements until `case`/`default`/`}`.
    fn case_body(&mut self) -> Result<Block, CaplError> {
        let mut stmts = Vec::new();
        loop {
            if matches!(self.peek(), TokenKind::RBrace)
                || self.is_kw("case")
                || self.is_kw("default")
            {
                break;
            }
            stmts.push(self.stmt()?);
        }
        // A trailing `break;` inside the arm is already consumed as a Stmt.
        Ok(Block { stmts })
    }

    /// Expression including assignment forms (`=`, `+=`, `-=`, `++`, `--`).
    fn expr_with_assign(&mut self) -> Result<Expr, CaplError> {
        let lhs = self.expr()?;
        match self.peek().clone() {
            TokenKind::Assign => {
                self.bump();
                let rhs = self.expr_with_assign()?;
                Ok(Expr::Assign {
                    target: Box::new(lhs),
                    value: Box::new(rhs),
                })
            }
            TokenKind::PlusAssign => {
                self.bump();
                let rhs = self.expr()?;
                Ok(Expr::Assign {
                    target: Box::new(lhs.clone()),
                    value: Box::new(Expr::Binary {
                        op: BinOp::Add,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                    }),
                })
            }
            TokenKind::MinusAssign => {
                self.bump();
                let rhs = self.expr()?;
                Ok(Expr::Assign {
                    target: Box::new(lhs.clone()),
                    value: Box::new(Expr::Binary {
                        op: BinOp::Sub,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                    }),
                })
            }
            TokenKind::PlusPlus => {
                self.bump();
                Ok(incr(lhs, BinOp::Add))
            }
            TokenKind::MinusMinus => {
                self.bump();
                Ok(incr(lhs, BinOp::Sub))
            }
            _ => Ok(lhs),
        }
    }

    fn expr(&mut self) -> Result<Expr, CaplError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, CaplError> {
        let mut lhs = self.and_expr()?;
        while self.eat(&TokenKind::OrOr) {
            let rhs = self.and_expr()?;
            lhs = bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, CaplError> {
        let mut lhs = self.bitor_expr()?;
        while self.eat(&TokenKind::AndAnd) {
            let rhs = self.bitor_expr()?;
            lhs = bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn bitor_expr(&mut self) -> Result<Expr, CaplError> {
        let mut lhs = self.bitxor_expr()?;
        while self.eat(&TokenKind::Bar) {
            let rhs = self.bitxor_expr()?;
            lhs = bin(BinOp::BitOr, lhs, rhs);
        }
        Ok(lhs)
    }

    fn bitxor_expr(&mut self) -> Result<Expr, CaplError> {
        let mut lhs = self.bitand_expr()?;
        while self.eat(&TokenKind::Caret) {
            let rhs = self.bitand_expr()?;
            lhs = bin(BinOp::BitXor, lhs, rhs);
        }
        Ok(lhs)
    }

    fn bitand_expr(&mut self) -> Result<Expr, CaplError> {
        let mut lhs = self.equality()?;
        while self.eat(&TokenKind::Amp) {
            let rhs = self.equality()?;
            lhs = bin(BinOp::BitAnd, lhs, rhs);
        }
        Ok(lhs)
    }

    fn equality(&mut self) -> Result<Expr, CaplError> {
        let mut lhs = self.relational()?;
        loop {
            let op = match self.peek() {
                TokenKind::Eq => BinOp::Eq,
                TokenKind::Ne => BinOp::Ne,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.relational()?;
            lhs = bin(op, lhs, rhs);
        }
    }

    fn relational(&mut self) -> Result<Expr, CaplError> {
        let mut lhs = self.shift()?;
        loop {
            let op = match self.peek() {
                TokenKind::Lt => BinOp::Lt,
                TokenKind::Le => BinOp::Le,
                TokenKind::Gt => BinOp::Gt,
                TokenKind::Ge => BinOp::Ge,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.shift()?;
            lhs = bin(op, lhs, rhs);
        }
    }

    fn shift(&mut self) -> Result<Expr, CaplError> {
        let mut lhs = self.additive()?;
        loop {
            let op = match self.peek() {
                TokenKind::Shl => BinOp::Shl,
                TokenKind::Shr => BinOp::Shr,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.additive()?;
            lhs = bin(op, lhs, rhs);
        }
    }

    fn additive(&mut self) -> Result<Expr, CaplError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = bin(op, lhs, rhs);
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, CaplError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Mod,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = bin(op, lhs, rhs);
        }
    }

    fn unary(&mut self) -> Result<Expr, CaplError> {
        let op = match self.peek() {
            TokenKind::Minus => Some(UnOp::Neg),
            TokenKind::Not => Some(UnOp::Not),
            TokenKind::Tilde => Some(UnOp::BitNot),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let e = self.unary()?;
            return Ok(Expr::Unary {
                op,
                expr: Box::new(e),
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, CaplError> {
        let mut e = self.primary()?;
        loop {
            match self.peek() {
                TokenKind::Dot => {
                    self.bump();
                    let member = self.ident("member name")?;
                    e = Expr::Member {
                        object: Box::new(e),
                        member,
                    };
                }
                TokenKind::LBracket => {
                    self.bump();
                    let index = self.expr()?;
                    self.expect(&TokenKind::RBracket, "`]`")?;
                    e = Expr::Index {
                        array: Box::new(e),
                        index: Box::new(index),
                    };
                }
                _ => return Ok(e),
            }
        }
    }

    fn primary(&mut self) -> Result<Expr, CaplError> {
        match self.peek().clone() {
            TokenKind::Int(n) => {
                self.bump();
                Ok(Expr::Int(n))
            }
            TokenKind::Float(f) => {
                self.bump();
                Ok(Expr::Float(f))
            }
            TokenKind::Char(c) => {
                self.bump();
                Ok(Expr::Char(c))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Str(s))
            }
            TokenKind::Ident(name) => {
                self.bump();
                if name == "this" {
                    return Ok(Expr::This);
                }
                if self.eat(&TokenKind::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                        self.expect(&TokenKind::RParen, "`)`")?;
                    }
                    return Ok(Expr::Call { name, args });
                }
                Ok(Expr::Ident(name))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            other => self.err(format!("unexpected token {other:?} in expression")),
        }
    }
}

fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
    Expr::Binary {
        op,
        lhs: Box::new(lhs),
        rhs: Box::new(rhs),
    }
}

fn incr(lhs: Expr, op: BinOp) -> Expr {
    Expr::Assign {
        target: Box::new(lhs.clone()),
        value: Box::new(Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(Expr::Int(1)),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Program {
        parse_program(&lex(src).unwrap()).unwrap()
    }

    const ECU_EXAMPLE: &str = r#"
        /* Simplified ECU node for the OTA update case study. */
        includes
        {
          #include "common.cin"
        }

        variables
        {
          message reqSw msgReq;
          message rptSw msgRpt;
          msTimer tTick;
          int updateCount = 0;
        }

        on start
        {
          setTimer(tTick, 100);
        }

        on message reqSw
        {
          output(msgRpt);
          updateCount = updateCount + 1;
        }

        on timer tTick
        {
          setTimer(tTick, 100);
        }

        void reset(int hard)
        {
          if (hard > 0) {
            updateCount = 0;
          }
        }
    "#;

    #[test]
    fn parses_full_ecu_program() {
        let p = parse(ECU_EXAMPLE);
        assert_eq!(p.includes, vec!["common.cin".to_string()]);
        assert_eq!(p.variables.len(), 4);
        assert_eq!(p.handlers.len(), 3);
        assert_eq!(p.functions.len(), 1);
    }

    #[test]
    fn message_variable_declarations() {
        let p = parse(ECU_EXAMPLE);
        assert_eq!(
            p.variables[0].ty,
            Type::Message(MsgRef::Name("reqSw".into()))
        );
        assert_eq!(p.variables[3].init, Some(Expr::Int(0)));
    }

    #[test]
    fn message_handler_by_id_and_star() {
        let p = parse("on message 0x64 { } on message * { }");
        assert_eq!(p.handlers[0].event, EventKind::Message(MsgRef::Id(0x64)));
        assert_eq!(p.handlers[1].event, EventKind::Message(MsgRef::Any));
    }

    #[test]
    fn key_handler() {
        let p = parse("on key 'a' { write(\"pressed\"); }");
        assert_eq!(p.handlers[0].event, EventKind::Key('a'));
    }

    #[test]
    fn if_else_and_while() {
        let p = parse(
            "void f(int x) {
                while (x > 0) {
                    if (x == 1) { x = 0; } else x = x - 1;
                }
            }",
        );
        let body = &p.functions[0].body;
        assert!(matches!(body.stmts[0], Stmt::While { .. }));
    }

    #[test]
    fn for_loop_and_compound_assign() {
        let p = parse(
            "void f() {
                int i;
                for (i = 0; i < 8; i++) {
                    total += i;
                }
            }",
        );
        let Stmt::For {
            init, cond, step, ..
        } = &p.functions[0].body.stmts[1]
        else {
            panic!();
        };
        assert!(init.is_some());
        assert!(cond.is_some());
        assert!(matches!(step, Some(Expr::Assign { .. })));
    }

    #[test]
    fn switch_statement() {
        let p = parse(
            "void f(int x) {
                switch (x) {
                    case 0: g(); break;
                    case 1: h(); break;
                    default: k();
                }
            }",
        );
        let Stmt::Switch { cases, default, .. } = &p.functions[0].body.stmts[0] else {
            panic!();
        };
        assert_eq!(cases.len(), 2);
        assert!(default.is_some());
    }

    #[test]
    fn member_and_index_access() {
        let p = parse("void f() { x = msg.byte_field; y = buf[2]; z = this.data; }");
        let stmts = &p.functions[0].body.stmts;
        assert!(matches!(&stmts[0], Stmt::Expr(Expr::Assign { value, .. })
            if matches!(value.as_ref(), Expr::Member { .. })));
        assert!(matches!(&stmts[1], Stmt::Expr(Expr::Assign { value, .. })
            if matches!(value.as_ref(), Expr::Index { .. })));
        assert!(matches!(&stmts[2], Stmt::Expr(Expr::Assign { value, .. })
            if matches!(value.as_ref(), Expr::Member { object, .. } if matches!(object.as_ref(), Expr::This))));
    }

    #[test]
    fn operator_precedence() {
        let p = parse("void f() { x = 1 + 2 * 3 == 7 && 1 < 2; }");
        let Stmt::Expr(Expr::Assign { value, .. }) = &p.functions[0].body.stmts[0] else {
            panic!();
        };
        assert!(matches!(
            value.as_ref(),
            Expr::Binary { op: BinOp::And, .. }
        ));
    }

    #[test]
    fn array_declaration() {
        let p = parse("variables { byte buffer[8]; }");
        assert_eq!(p.variables[0].array, Some(8));
    }

    #[test]
    fn error_on_bad_event() {
        let toks = lex("on frobnicate { }").unwrap();
        assert!(parse_program(&toks).is_err());
    }

    #[test]
    fn empty_program() {
        let p = parse("");
        assert!(p.handlers.is_empty());
    }
}
