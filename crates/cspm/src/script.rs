//! Top-level script API: parse, load, and run assertions.

use std::collections::BTreeMap;

use csp::{Alphabet, Definitions, Process};
use fdrlite::{CheckStats, Checker, ModelStore, Verdict};

use crate::ast::{Assertion, Decl, Module, PropKind, RefModel};
use crate::error::CspmError;
use crate::eval::{load_module, Value};
use crate::pretty;

/// A parsed (but not yet evaluated) CSPm script.
#[derive(Debug, Clone)]
pub struct Script {
    module: Module,
}

impl Script {
    /// Parse CSPm source text.
    ///
    /// # Errors
    ///
    /// Lexical or syntax errors, with positions.
    pub fn parse(source: &str) -> Result<Script, CspmError> {
        Ok(Script {
            module: crate::parse(source)?,
        })
    }

    /// The underlying AST.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Evaluate the script: elaborate every zero-parameter definition and
    /// resolve every assertion.
    ///
    /// # Errors
    ///
    /// Evaluation errors (unknown names, type mismatches, arity errors, …).
    pub fn load(&self) -> Result<LoadedScript, CspmError> {
        let (mut ev, named) = load_module(&self.module)?;

        let mut named_processes = BTreeMap::new();
        let mut named_values = BTreeMap::new();
        for (name, value) in named {
            match value {
                Value::Process(p) => {
                    named_processes.insert(name, p);
                }
                other => {
                    named_values.insert(name, other);
                }
            }
        }

        let mut assertions = Vec::new();
        for decl in &self.module.decls {
            let Decl::Assert(a) = decl else { continue };
            let description = pretty::assertion(a);
            let kind = match a {
                Assertion::Refinement { spec, impl_, model } => {
                    let spec = ev.eval(spec, &mut Vec::new())?.into_process()?;
                    let impl_ = ev.eval(impl_, &mut Vec::new())?.into_process()?;
                    ev.drain_pending()?;
                    ResolvedCheck::Refinement {
                        model: *model,
                        spec,
                        impl_,
                    }
                }
                Assertion::Property { process, property } => {
                    let p = ev.eval(process, &mut Vec::new())?.into_process()?;
                    ev.drain_pending()?;
                    ResolvedCheck::Property {
                        process: p,
                        property: *property,
                    }
                }
            };
            assertions.push(ResolvedAssertion { description, kind });
        }

        Ok(LoadedScript {
            alphabet: ev.alphabet,
            defs: ev.defs,
            named_processes,
            named_values,
            assertions,
        })
    }
}

/// A fully evaluated script: interned alphabet, process definitions, named
/// top-level processes/values and resolved assertions.
#[derive(Debug, Clone)]
pub struct LoadedScript {
    alphabet: Alphabet,
    defs: Definitions,
    named_processes: BTreeMap<String, Process>,
    named_values: BTreeMap<String, Value>,
    assertions: Vec<ResolvedAssertion>,
}

/// An assertion with its operand processes already elaborated.
#[derive(Debug, Clone)]
pub struct ResolvedAssertion {
    /// Human-readable rendering of the assertion.
    pub description: String,
    /// What to check.
    pub kind: ResolvedCheck,
}

/// The resolved operands of an assertion.
#[derive(Debug, Clone)]
pub enum ResolvedCheck {
    /// A refinement check.
    Refinement {
        /// Semantic model.
        model: RefModel,
        /// Specification process.
        spec: Process,
        /// Implementation process.
        impl_: Process,
    },
    /// A single-process property check.
    Property {
        /// The process under test.
        process: Process,
        /// The property.
        property: PropKind,
    },
}

/// The outcome of one assertion.
#[derive(Debug, Clone)]
pub struct AssertionResult {
    /// Human-readable rendering of the assertion.
    pub description: String,
    /// Pass, or fail with counterexample.
    pub verdict: Verdict,
    /// Exploration statistics, when requested via
    /// [`CheckOptions::collect_stats`]. Every refinement assertion (`[T=`,
    /// `[F=`, `[FD=`) produces stats, including the compile/explore wall
    /// split and model-store hit/miss counters; property assertions
    /// (`deadlock free`, …) leave this `None`.
    pub stats: Option<CheckStats>,
}

/// Options controlling how [`LoadedScript::check_with`] runs assertions.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Worker threads for refinement assertions (`[T=`, `[F=` and `[FD=`
    /// alike). `1` (the default) uses the serial engine; anything larger
    /// routes the product walk through
    /// [`fdrlite::parallel`]. Verdicts and counterexamples are identical
    /// either way — the parallel engine's witness recovery is canonical —
    /// *except* when a budget below is exhausted mid-run (see
    /// [`fdrlite::CheckOptions`]).
    pub threads: usize,
    /// Collect [`CheckStats`] for assertions that support it.
    pub collect_stats: bool,
    /// Stop a refinement assertion after exploring this many product
    /// states, yielding [`Verdict::Inconclusive`]. `None` (default) is
    /// unbounded. Property assertions (`deadlock free`, …) are not
    /// budgeted — they are linear in the implementation LTS.
    pub max_states: Option<u64>,
    /// Stop a refinement assertion after roughly this much wall-clock
    /// time (milliseconds), yielding [`Verdict::Inconclusive`].
    pub max_wall_ms: Option<u64>,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            threads: 1,
            collect_stats: false,
            max_states: None,
            max_wall_ms: None,
        }
    }
}

impl CheckOptions {
    /// The fdrlite-level budget equivalent of these options.
    fn budget(&self) -> fdrlite::CheckOptions {
        fdrlite::CheckOptions {
            max_states: self.max_states,
            max_wall_ms: self.max_wall_ms,
        }
    }
}

impl LoadedScript {
    /// The interned event alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// The elaborated recursive definitions (needed to explore processes).
    pub fn definitions(&self) -> &Definitions {
        &self.defs
    }

    /// A zero-parameter process definition by name.
    pub fn process(&self, name: &str) -> Option<&Process> {
        self.named_processes.get(name)
    }

    /// Intern a sequence of event names against the script's alphabet.
    ///
    /// Stops at the **first** name the alphabet does not contain and returns
    /// its position and name — the conformance pipeline treats a trace
    /// performing an event the model cannot even express as the strongest
    /// possible nonconformance, before any checking is spent.
    ///
    /// # Errors
    ///
    /// `(index, name)` of the first unknown event name.
    pub fn event_ids<'e, I>(&self, events: I) -> Result<Vec<csp::EventId>, (usize, &'e str)>
    where
        I: IntoIterator<Item = &'e str>,
    {
        let events = events.into_iter();
        let mut ids = Vec::with_capacity(events.size_hint().0);
        for (index, event) in events.enumerate() {
            match self.alphabet.lookup(event) {
                Some(id) => ids.push(id),
                None => return Err((index, event)),
            }
        }
        Ok(ids)
    }

    /// Names of all zero-parameter process definitions.
    pub fn process_names(&self) -> impl Iterator<Item = &str> {
        self.named_processes.keys().map(String::as_str)
    }

    /// A zero-parameter non-process value by name.
    pub fn value(&self, name: &str) -> Option<&Value> {
        self.named_values.get(name)
    }

    /// The script's assertions, resolved.
    pub fn assertions(&self) -> &[ResolvedAssertion] {
        &self.assertions
    }

    /// Run every assertion through `checker`, in script order, with the
    /// default [`CheckOptions`] (serial, no stats).
    ///
    /// # Errors
    ///
    /// [`CspmError::Check`] when the checker hits a state-space bound.
    pub fn check(&self, checker: &Checker) -> Result<Vec<AssertionResult>, CspmError> {
        self.check_with(checker, &CheckOptions::default())
    }

    /// Run every assertion through `checker` with explicit [`CheckOptions`]
    /// (thread count, stats collection), in script order.
    ///
    /// Compiled models are shared across the assertions through a private
    /// [`ModelStore`], so a process named by several assertions compiles
    /// once. Use [`LoadedScript::check_with_store`] to share the store
    /// across calls too (e.g. between a check run and conformance checks
    /// over the same script).
    ///
    /// # Errors
    ///
    /// [`CspmError::Check`] when the checker hits a state-space bound or a
    /// parallel worker fails.
    pub fn check_with(
        &self,
        checker: &Checker,
        options: &CheckOptions,
    ) -> Result<Vec<AssertionResult>, CspmError> {
        self.check_with_store(checker, options, &ModelStore::new())
    }

    /// Like [`LoadedScript::check_with`], compiling every process through
    /// `store`. The store must be dedicated to this script's definitions
    /// table (see [`ModelStore`]'s caching contract); pass a store that has
    /// already seen this script's processes and the run skips their
    /// recompilation entirely.
    ///
    /// A store configured with [`fdrlite::PersistConfig`] (via
    /// `ModelStore::set_persist`) extends both behaviours across process
    /// lifetimes: compiled models are served from the on-disk cache, and a
    /// budget-exhausted refinement assertion writes a checkpoint and carries
    /// a resume token in its [`Verdict::Inconclusive`] — re-checking with a
    /// matching resume policy continues to a verdict bit-identical to an
    /// uninterrupted run.
    ///
    /// # Errors
    ///
    /// [`CspmError::Check`] when the checker hits a state-space bound or a
    /// parallel worker fails.
    pub fn check_with_store(
        &self,
        checker: &Checker,
        options: &CheckOptions,
        store: &ModelStore,
    ) -> Result<Vec<AssertionResult>, CspmError> {
        let mut out = Vec::with_capacity(self.assertions.len());
        for a in &self.assertions {
            let mut stats = None;
            let verdict = match &a.kind {
                ResolvedCheck::Refinement { model, spec, impl_ } => {
                    let (verdict, s) = match model {
                        RefModel::Traces => store.trace_refinement(
                            checker,
                            spec,
                            impl_,
                            &self.defs,
                            options.threads,
                            &options.budget(),
                        )?,
                        RefModel::Failures => store.failures_refinement(
                            checker,
                            spec,
                            impl_,
                            &self.defs,
                            options.threads,
                            &options.budget(),
                        )?,
                        RefModel::FailuresDivergences => store.failures_divergences_refinement(
                            checker,
                            spec,
                            impl_,
                            &self.defs,
                            options.threads,
                            &options.budget(),
                        )?,
                    };
                    if options.collect_stats {
                        stats = Some(s);
                    }
                    verdict
                }
                ResolvedCheck::Property { process, property } => match property {
                    PropKind::DeadlockFree => store.deadlock_free(checker, process, &self.defs)?,
                    PropKind::DivergenceFree => {
                        store.divergence_free(checker, process, &self.defs)?
                    }
                    PropKind::Deterministic => store.deterministic(checker, process, &self.defs)?,
                },
            };
            out.push(AssertionResult {
                description: a.description.clone(),
                verdict,
                stats,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_pipeline_on_paper_script() {
        let src = "
            datatype MsgT = reqSw | rptSw
            channel send, rec : MsgT
            SP02 = rec.reqSw -> send.rptSw -> SP02
            ECU  = rec.reqSw -> send.rptSw -> ECU
            assert SP02 [T= ECU
            assert ECU :[deadlock free]
            assert ECU :[deterministic]
        ";
        let loaded = Script::parse(src).unwrap().load().unwrap();
        assert!(loaded.process("SP02").is_some());
        assert!(loaded.process("ECU").is_some());
        let results = loaded.check(&Checker::new()).unwrap();
        assert_eq!(results.len(), 3);
        assert!(results.iter().all(|r| r.verdict.is_pass()), "{results:?}");
    }

    #[test]
    fn failing_assertion_reports_counterexample() {
        let src = "
            datatype MsgT = reqSw | rptSw
            channel send, rec : MsgT
            SP02 = rec.reqSw -> send.rptSw -> SP02
            ROGUE = rec.reqSw -> send.rptSw -> send.rptSw -> STOP
            assert SP02 [T= ROGUE
        ";
        let loaded = Script::parse(src).unwrap().load().unwrap();
        let results = loaded.check(&Checker::new()).unwrap();
        let cex = results[0].verdict.counterexample().expect("must fail");
        let shown = cex.display(loaded.alphabet()).to_string();
        assert!(shown.contains("send.rptSw"), "{shown}");
    }

    #[test]
    fn check_with_parallel_and_stats_matches_serial() {
        let src = "
            datatype MsgT = reqSw | rptSw
            channel send, rec : MsgT
            SP02 = rec.reqSw -> send.rptSw -> SP02
            ROGUE = rec.reqSw -> send.rptSw -> send.rptSw -> STOP
            assert SP02 [T= ROGUE
            assert SP02 :[deadlock free]
        ";
        let loaded = Script::parse(src).unwrap().load().unwrap();
        let serial = loaded.check(&Checker::new()).unwrap();
        let options = CheckOptions {
            threads: 4,
            collect_stats: true,
            ..CheckOptions::default()
        };
        let parallel = loaded.check_with(&Checker::new(), &options).unwrap();
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.verdict, p.verdict, "{}", s.description);
            assert!(s.stats.is_none());
        }
        let stats = parallel[0].stats.as_ref().expect("refinement stats");
        assert_eq!(stats.threads, 4);
        assert!(stats.pairs_discovered > 0);
        assert!(parallel[1].stats.is_none(), "property checks have no stats");
    }

    #[test]
    fn budgets_degrade_assertions_to_inconclusive() {
        let src = "
            datatype MsgT = reqSw | rptSw
            channel send, rec : MsgT
            SP02 = rec.reqSw -> send.rptSw -> SP02
            ECU  = rec.reqSw -> send.rptSw -> ECU
            assert SP02 [T= ECU
            assert SP02 [F= ECU
        ";
        let loaded = Script::parse(src).unwrap().load().unwrap();
        let options = CheckOptions {
            max_states: Some(1),
            ..CheckOptions::default()
        };
        let results = loaded.check_with(&Checker::new(), &options).unwrap();
        for r in &results {
            let inc = r
                .verdict
                .inconclusive()
                .unwrap_or_else(|| panic!("expected inconclusive: {}", r.description));
            assert!(inc.states_explored >= 1);
        }
    }

    #[test]
    fn stats_recorded_for_all_refinement_models() {
        let src = "
            datatype MsgT = reqSw | rptSw
            channel send, rec : MsgT
            SP02 = rec.reqSw -> send.rptSw -> SP02
            ECU  = rec.reqSw -> send.rptSw -> ECU
            assert SP02 [T= ECU
            assert SP02 [F= ECU
            assert SP02 [FD= ECU
            assert ECU :[deadlock free]
        ";
        let loaded = Script::parse(src).unwrap().load().unwrap();
        let options = CheckOptions {
            collect_stats: true,
            ..CheckOptions::default()
        };
        let results = loaded.check_with(&Checker::new(), &options).unwrap();
        for r in &results[..3] {
            let stats = r
                .stats
                .as_ref()
                .unwrap_or_else(|| panic!("missing stats: {}", r.description));
            assert!(stats.pairs_discovered > 0, "{}", r.description);
        }
        assert!(results[3].stats.is_none(), "property checks have no stats");
        // SP02 and ECU recur across assertions, so later ones must be
        // served from the shared model store.
        let fd = results[2].stats.as_ref().unwrap();
        assert!(fd.store_hits > 0, "{fd:?}");
        assert_eq!(fd.store_misses, 0, "{fd:?}");
    }

    #[test]
    fn warm_store_run_is_verbatim_equal_to_cold() {
        let src = "
            datatype MsgT = reqSw | rptSw
            channel send, rec : MsgT
            SP02 = rec.reqSw -> send.rptSw -> SP02
            ROGUE = rec.reqSw -> send.rptSw -> send.rptSw -> STOP
            assert SP02 [T= ROGUE
            assert SP02 [F= ROGUE
            assert SP02 :[deterministic]
        ";
        let loaded = Script::parse(src).unwrap().load().unwrap();
        let checker = Checker::new();
        let store = fdrlite::ModelStore::new();
        for threads in [1usize, 8] {
            let options = CheckOptions {
                threads,
                collect_stats: true,
                ..CheckOptions::default()
            };
            let cold = loaded.check_with(&checker, &options).unwrap();
            let warm1 = loaded.check_with_store(&checker, &options, &store).unwrap();
            let warm2 = loaded.check_with_store(&checker, &options, &store).unwrap();
            for ((c, w1), w2) in cold.iter().zip(&warm1).zip(&warm2) {
                assert_eq!(c.verdict, w1.verdict, "{}", c.description);
                assert_eq!(w1.verdict, w2.verdict, "{}", w1.description);
            }
            // The second pass over the shared store recompiles nothing.
            let rerun = warm2[0].stats.as_ref().unwrap();
            assert_eq!(rerun.store_misses, 0, "{rerun:?}");
            assert!(rerun.store_hits > 0, "{rerun:?}");
        }
    }

    #[test]
    fn values_are_accessible() {
        let loaded = Script::parse("N = 6 * 7").unwrap().load().unwrap();
        assert_eq!(loaded.value("N"), Some(&Value::Int(42)));
        assert!(loaded.process("N").is_none());
    }

    #[test]
    fn assertion_description_is_readable() {
        let src = "
            channel a
            P = a -> P
            assert P :[deadlock free]
        ";
        let loaded = Script::parse(src).unwrap().load().unwrap();
        assert_eq!(loaded.assertions()[0].description, "P :[deadlock free]");
    }
}

#[cfg(test)]
mod fd_assertion_tests {
    use super::*;

    #[test]
    fn fd_assertion_checks_divergence_first() {
        let src = "
            channel a
            SPEC = a -> SPEC
            DIV = (a -> DIV) \\ {| a |}
            assert SPEC [FD= DIV
            assert SPEC [FD= SPEC
        ";
        let loaded = Script::parse(src).unwrap().load().unwrap();
        let results = loaded.check(&Checker::new()).unwrap();
        assert!(!results[0].verdict.is_pass());
        assert!(results[1].verdict.is_pass());
        assert_eq!(results[0].description, "SPEC [FD= DIV");
    }
}
