//! Semantic model analysis over a loaded script.
//!
//! Where the syntactic `CSP2xx` lints bail out at the first renaming or
//! hiding, this module runs the real thing on the *elaborated* model:
//!
//! * [`csp::analysis::AlphabetInference`] — an interprocedural fixpoint
//!   over the hash-consed term arena that flows events through `[[a <- b]]`
//!   and `\ {…}`, powering the `ANA301`–`ANA304` diagnostics;
//! * [`csp::analysis::GraphAnalysis`] — a Tarjan SCC pass over each
//!   compiled assertion operand (cached in the [`ModelStore`], so the
//!   compile and the classification are shared verbatim with the checks
//!   that follow), powering `ANA305`/`ANA306`;
//! * [`csp::analysis::estimate`] — a compositional state-space predictor
//!   whose bound feeds `ANA307` and the `analyze` report.
//!
//! The entry point is [`analyze_script`]; the result carries both the
//! structured report (per-definition alphabets, per-assertion graph
//! classifications and predictions) and a deterministically ordered list of
//! [`Diagnostic`]s ready for `autocsp analyze` / `lint` / `check`.

use std::collections::{HashMap, HashSet};

use csp::analysis::{estimate, AlphaFinding, AlphabetInference, StateEstimate, SyncSide};
use csp::{Alphabet, EventId, Process, Term, TermArena};
use diag::{ana, Diagnostic, Span};
use fdrlite::{Checker, ModelStore};

use crate::ast::{Decl, Module, PropKind, RefModel};
use crate::script::{LoadedScript, ResolvedCheck};

/// Analysis of one named definition.
#[derive(Debug, Clone)]
pub struct DefinitionAnalysis {
    /// The definition's name (parameterised instances keep their argument
    /// suffix, e.g. `P(1)`).
    pub name: String,
    /// Where the definition lives in the source (unknown for elaborated
    /// instances with no direct declaration).
    pub span: Span,
    /// The inferred may-alphabet, as sorted event names.
    pub alphabet: Vec<String>,
    /// Whether any assertion can semantically reach this definition
    /// (always `true` in a script without assertions).
    pub reachable: bool,
}

/// Graph classification of one compiled assertion operand.
#[derive(Debug, Clone, Copy)]
pub struct GraphSummary {
    /// Reachable states.
    pub states: usize,
    /// Transitions.
    pub transitions: usize,
    /// τ-labelled transitions.
    pub tau_transitions: usize,
    /// Strongly connected components of the full graph.
    pub scc_count: usize,
    /// States lying on a τ-cycle.
    pub tau_cycle_states: usize,
    /// States with an infinite τ-path.
    pub divergent_states: usize,
    /// Non-Ω sink states.
    pub deadlock_states: usize,
}

impl GraphSummary {
    /// No reachable state diverges.
    pub fn divergence_free(&self) -> bool {
        self.divergent_states == 0
    }

    /// No reachable state is a non-Ω sink.
    pub fn deadlock_free(&self) -> bool {
        self.deadlock_states == 0
    }
}

/// Analysis of one assertion operand.
#[derive(Debug, Clone)]
pub struct ProcessAnalysis {
    /// `"spec"`, `"impl"` or `"process"`.
    pub role: &'static str,
    /// Graph classification, when the operand compiled within bounds.
    pub graph: Option<GraphSummary>,
    /// Why the graph passes were skipped, when they were.
    pub compile_error: Option<String>,
    /// Predicted upper bound on reachable states (compositional estimate).
    pub predicted_states: u64,
    /// Whether every leaf of the estimate compiled exactly (making the
    /// prediction a proven bound).
    pub estimate_exact: bool,
    /// Compiled leaf components of the decomposition.
    pub components: usize,
    /// Parallel compositions crossed by the decomposition.
    pub parallel_count: usize,
    /// Total synchronised events across those compositions.
    pub sync_coupling: usize,
}

/// Analysis of one assertion.
#[derive(Debug, Clone)]
pub struct AssertionAnalysis {
    /// Human-readable rendering of the assertion.
    pub description: String,
    /// Operand analyses (spec then impl for refinements, the single
    /// process for property assertions).
    pub processes: Vec<ProcessAnalysis>,
    /// For refinements: the product of the operands' predicted state
    /// bounds — a coarse a-priori size of the refinement product walk.
    pub predicted_product: Option<u64>,
}

/// Everything [`analyze_script`] learns about one script.
#[derive(Debug, Clone)]
pub struct ScriptAnalysis {
    /// Fixpoint rounds until the definition alphabets stabilised.
    pub rounds: usize,
    /// Per-definition results, in declaration order.
    pub definitions: Vec<DefinitionAnalysis>,
    /// Per-assertion results, in script order.
    pub assertions: Vec<AssertionAnalysis>,
    /// Semantic findings, deterministically ordered (span, then code, then
    /// message).
    pub diagnostics: Vec<Diagnostic>,
}

/// Run every semantic analysis over `loaded`.
///
/// `module` supplies source spans for definition-scoped findings (pass the
/// AST the script was loaded from). Compiles are routed through `store`
/// under `checker`'s bounds, so a subsequent check run over the same store
/// reuses both the compiled models and their graph classifications. An
/// operand that fails to compile (state-space bound, unguarded recursion)
/// degrades to an `ANA300` warning — analysis never aborts.
///
/// `budget_states` is the exploration budget the eventual check would run
/// under (`--max-states`); operands predicted to exceed it get `ANA307`.
pub fn analyze_script(
    module: &Module,
    loaded: &LoadedScript,
    checker: &Checker,
    store: &ModelStore,
    budget_states: Option<u64>,
) -> ScriptAnalysis {
    let defs = loaded.definitions();
    let alphabet = loaded.alphabet();
    let mut arena = TermArena::new();
    let inference = AlphabetInference::infer(&mut arena, defs);

    // Source spans for definition names.
    let mut spans: HashMap<&str, Span> = HashMap::new();
    for decl in &module.decls {
        if let Decl::Definition { name, pos, .. } = decl {
            spans
                .entry(name.as_str())
                .or_insert_with(|| Span::new(pos.line, pos.col, name.len() as u32));
        }
    }
    let span_of = |def_name: &str| -> Span {
        let base = def_name.split('(').next().unwrap_or(def_name);
        spans.get(base).copied().unwrap_or_else(Span::unknown)
    };

    let mut diagnostics = Vec::new();
    let mut seen_findings: HashSet<AlphaFinding> = HashSet::new();

    // -- Alphabet findings inside definition bodies (ANA301/302/303) ------
    for d in defs.ids() {
        let Some(body) = inference.def_body(d) else {
            continue;
        };
        let name = defs.name(d).to_string();
        for finding in inference.term_findings(&arena, body) {
            if !seen_findings.insert(finding) {
                continue;
            }
            if dead_in_live_channel_closure(&arena, &inference, alphabet, &finding) {
                continue;
            }
            diagnostics.push(alpha_diagnostic(
                &finding,
                alphabet,
                span_of(&name),
                &format!("in the definition of `{name}`"),
            ));
        }
    }

    // -- Assertion operand roots --------------------------------------------
    let mut roots = Vec::new();
    for a in loaded.assertions() {
        let operands: Vec<&Process> = match &a.kind {
            ResolvedCheck::Refinement { spec, impl_, .. } => vec![spec, impl_],
            ResolvedCheck::Property { process, .. } => vec![process],
        };
        for p in operands {
            let root = arena.intern(p);
            roots.push(root);
            // Findings in compositions written inline in the assert itself.
            for finding in inference.term_findings(&arena, root) {
                if !seen_findings.insert(finding) {
                    continue;
                }
                if dead_in_live_channel_closure(&arena, &inference, alphabet, &finding) {
                    continue;
                }
                diagnostics.push(alpha_diagnostic(
                    &finding,
                    alphabet,
                    Span::unknown(),
                    &format!("in `{}`", a.description),
                ));
            }
        }
    }

    // -- Semantic reachability (ANA304) -------------------------------------
    let reached = inference.reachable_defs(&arena, &roots);
    let has_assertions = !loaded.assertions().is_empty();
    // Aggregate instances by base name: `P(1)` reached counts for `P`.
    let mut base_reached: HashMap<&str, bool> = HashMap::new();
    for d in defs.ids() {
        let base = defs.name(d).split('(').next().unwrap_or("").to_owned();
        let Some((key, _)) = spans.get_key_value(base.as_str()) else {
            continue;
        };
        let entry = base_reached.entry(key).or_insert(false);
        *entry |= reached[d.index()];
    }
    if has_assertions {
        let mut unreachable: Vec<&str> = base_reached
            .iter()
            .filter(|&(_, &r)| !r)
            .map(|(&n, _)| n)
            .collect();
        unreachable.sort_unstable();
        for name in unreachable {
            diagnostics.push(
                Diagnostic::warning(
                    ana::UNREACHABLE_DEFINITION,
                    span_of(name),
                    format!("definition `{name}` is semantically unreachable from every assertion"),
                )
                .with_note(
                    "reachability follows references through renaming and hiding; \
                     no assertion can exercise this definition",
                ),
            );
        }
    }

    // -- Per-definition report ----------------------------------------------
    let mut definitions = Vec::with_capacity(defs.len());
    for d in defs.ids() {
        let name = defs.name(d).to_string();
        let mut alpha: Vec<String> = inference
            .def_alphabet(d)
            .iter()
            .map(|e| alphabet.name(e).to_string())
            .collect();
        alpha.sort_unstable();
        definitions.push(DefinitionAnalysis {
            span: span_of(&name),
            alphabet: alpha,
            reachable: !has_assertions || reached[d.index()],
            name,
        });
    }

    // -- Per-assertion graph classification and prediction -------------------
    let mut assertions = Vec::with_capacity(loaded.assertions().len());
    for a in loaded.assertions() {
        let (operands, divergence_doomed, deadlock_doomed): (
            Vec<(&'static str, &Process)>,
            &[&'static str],
            &[&'static str],
        ) = match &a.kind {
            ResolvedCheck::Refinement { model, spec, impl_ } => (
                vec![("spec", spec), ("impl", impl_)],
                // `[FD=` fails outright on a divergent implementation.
                if *model == RefModel::FailuresDivergences {
                    &["impl"]
                } else {
                    &[]
                },
                &[],
            ),
            ResolvedCheck::Property { process, property } => (
                vec![("process", process)],
                match property {
                    PropKind::DivergenceFree | PropKind::Deterministic => &["process"],
                    PropKind::DeadlockFree => &[],
                },
                match property {
                    PropKind::DeadlockFree => &["process"],
                    _ => &[],
                },
            ),
        };

        let mut processes = Vec::with_capacity(operands.len());
        for (role, p) in operands {
            let root = arena.intern(p);
            let est: StateEstimate = estimate(&mut arena, root, defs, checker.max_states());
            let (graph, compile_error) = match store.graph_analysis(checker, p, defs) {
                Ok(g) => (
                    Some(GraphSummary {
                        states: g.state_count(),
                        transitions: g.transition_count(),
                        tau_transitions: g.tau_transition_count(),
                        scc_count: g.scc_count(),
                        tau_cycle_states: g.tau_cycle_states(),
                        divergent_states: g.divergent_count(),
                        deadlock_states: g.deadlock_count(),
                    }),
                    None,
                ),
                Err(e) => (None, Some(e.to_string())),
            };

            match &graph {
                Some(g) => {
                    if divergence_doomed.contains(&role) && !g.divergence_free() {
                        diagnostics.push(
                            Diagnostic::warning(
                                ana::DIVERGENT_PROCESS,
                                Span::unknown(),
                                format!(
                                    "the {role} of `{}` can diverge ({} of {} states have an \
                                     infinite τ-path); the assertion is guaranteed to fail",
                                    a.description, g.divergent_states, g.states
                                ),
                            )
                            .with_note(
                                "divergence was proved by SCC analysis of the compiled graph",
                            ),
                        );
                    }
                    if deadlock_doomed.contains(&role) && !g.deadlock_free() {
                        diagnostics.push(
                            Diagnostic::warning(
                                ana::DEADLOCK_SINK,
                                Span::unknown(),
                                format!(
                                    "the {role} of `{}` reaches {} deadlock sink(s); the \
                                     assertion is guaranteed to fail",
                                    a.description, g.deadlock_states
                                ),
                            )
                            .with_note("a deadlock sink is a reachable non-Ω state with no outgoing transitions"),
                        );
                    }
                }
                None => {
                    diagnostics.push(
                        Diagnostic::warning(
                            ana::ANALYSIS_SKIPPED,
                            Span::unknown(),
                            format!(
                                "the {role} of `{}` could not be compiled for analysis: {}",
                                a.description,
                                compile_error.as_deref().unwrap_or("unknown error"),
                            ),
                        )
                        .with_note(
                            "graph classification was skipped; alphabet findings still apply",
                        ),
                    );
                }
            }

            if let Some(budget) = budget_states {
                if est.predicted_states() > budget {
                    let qualifier = if est.is_exact() {
                        "a proven bound"
                    } else {
                        "approximate: some components hit the compile cap"
                    };
                    diagnostics.push(
                        Diagnostic::warning(
                            ana::PREDICTED_OVER_BUDGET,
                            Span::unknown(),
                            format!(
                                "the {role} of `{}` is predicted to reach up to {} states, \
                                 over the --max-states budget of {budget}",
                                a.description,
                                est.predicted_states(),
                            ),
                        )
                        .with_note(format!("the prediction is {qualifier}")),
                    );
                }
            }

            processes.push(ProcessAnalysis {
                role,
                graph,
                compile_error,
                predicted_states: est.predicted_states(),
                estimate_exact: est.is_exact(),
                components: est.components().len(),
                parallel_count: est.parallel_count(),
                sync_coupling: est.sync_coupling(),
            });
        }

        let predicted_product = match &a.kind {
            ResolvedCheck::Refinement { .. } => Some(
                processes
                    .iter()
                    .map(|p| p.predicted_states)
                    .fold(1_u64, u64::saturating_mul),
            ),
            ResolvedCheck::Property { .. } => None,
        };
        assertions.push(AssertionAnalysis {
            description: a.description.clone(),
            processes,
            predicted_product,
        });
    }

    sort_diagnostics(&mut diagnostics);
    ScriptAnalysis {
        rounds: inference.rounds(),
        definitions,
        assertions,
        diagnostics,
    }
}

/// Order diagnostics deterministically: by span (unknown spans first), then
/// code, then message. Stable across runs and thread counts by construction
/// — every input list is derived from declaration/script order.
pub fn sort_diagnostics(diagnostics: &mut [Diagnostic]) {
    diagnostics.sort_by(|a, b| {
        (a.span.line, a.span.col, a.code.0, &a.message).cmp(&(
            b.span.line,
            b.span.col,
            b.code.0,
            &b.message,
        ))
    });
}

/// Noise policy for `ANA302`: a dead synchronised event whose *channel* is
/// otherwise live in the same sync set is almost always a channel-closure
/// sync (`[| {| c |} |]`) over a channel whose remaining values the dialogue
/// never exchanges — idiomatic CSPm, not a stale set. Report the event only
/// when every event of its channel in the set is dead too.
fn dead_in_live_channel_closure(
    arena: &TermArena,
    inference: &AlphabetInference,
    alphabet: &Alphabet,
    finding: &AlphaFinding,
) -> bool {
    let &AlphaFinding::SyncDeadEvent { at, event } = finding else {
        return false;
    };
    let &Term::Parallel { sync, left, right } = arena.term(at) else {
        return false;
    };
    let channel = channel_of(alphabet.name(event));
    let al = inference.alphabet_of(arena, left);
    let ar = inference.alphabet_of(arena, right);
    arena.set(sync).iter().any(|e| {
        e != event && channel_of(alphabet.name(e)) == channel && al.contains(e) && ar.contains(e)
    })
}

/// The channel part of a compound event name (`rec.reqSw` → `rec`).
fn channel_of(name: &str) -> &str {
    name.split('.').next().unwrap_or(name)
}

fn alpha_diagnostic(
    finding: &AlphaFinding,
    alphabet: &Alphabet,
    span: Span,
    context: &str,
) -> Diagnostic {
    let name = |e: EventId| alphabet.name(e).to_string();
    match *finding {
        AlphaFinding::SyncOneSided {
            event, performer, ..
        } => {
            let (can, cannot) = match performer {
                SyncSide::Left => ("left", "right"),
                SyncSide::Right => ("right", "left"),
            };
            Diagnostic::warning(
                ana::SYNC_ONE_SIDED,
                span,
                format!(
                    "synchronised event `{}` {context} can only ever be performed by the \
                     {can} side of the parallel; the {cannot} side never offers it",
                    name(event)
                ),
            )
            .with_note(
                "the inferred may-alphabets see through renaming and hiding; \
                 synchronising on this event blocks it forever",
            )
        }
        AlphaFinding::SyncDeadEvent { event, .. } => Diagnostic::warning(
            ana::SYNC_DEAD_EVENT,
            span,
            format!(
                "synchronised event `{}` {context} can never be performed by either side \
                 of the parallel",
                name(event)
            ),
        )
        .with_note("usually a stale synchronisation set; remove the event"),
        AlphaFinding::HiddenNeverPerformable { event, .. } => Diagnostic::warning(
            ana::HIDE_DEAD_EVENT,
            span,
            format!(
                "event `{}` {context} is hidden but the process can never perform it",
                name(event)
            ),
        )
        .with_note("hiding an unperformable event is a no-op; the hide set may be stale"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Script;

    fn analyze(src: &str) -> ScriptAnalysis {
        let script = Script::parse(src).unwrap();
        let loaded = script.load().unwrap();
        analyze_script(
            script.module(),
            &loaded,
            &Checker::new(),
            &ModelStore::new(),
            None,
        )
    }

    fn codes(analysis: &ScriptAnalysis) -> Vec<&str> {
        analysis.diagnostics.iter().map(|d| d.code.0).collect()
    }

    #[test]
    fn clean_script_has_no_findings() {
        let a = analyze(
            "
            channel req, rpt
            NODE = req -> rpt -> NODE
            BUS  = req -> rpt -> BUS
            SYSTEM = NODE [| {req, rpt} |] BUS
            assert SYSTEM :[deadlock free]
            ",
        );
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
        assert_eq!(a.assertions.len(), 1);
        let g = a.assertions[0].processes[0].graph.expect("compiled");
        assert!(g.deadlock_free());
        assert!(g.divergence_free());
    }

    #[test]
    fn dead_value_of_a_live_channel_closure_is_not_stale() {
        // `{| rec, send |}` closes over every value of both channels; the
        // dialogue only ever exchanges `m1`. The unexchanged values are
        // idiomatic closure slack, not a stale sync set — no ANA302. The
        // fully-dead channel `aux` in the same set must still be reported.
        let a = analyze(
            "
            datatype MsgT = m1 | m2
            channel rec, send : MsgT
            channel aux
            P = rec.m1 -> send.m1 -> P
            Q = rec.m1 -> send.m1 -> Q
            SYSTEM = P [| {| rec, send, aux |} |] Q
            assert SYSTEM :[deadlock free]
            ",
        );
        let ana302: Vec<&Diagnostic> = a
            .diagnostics
            .iter()
            .filter(|d| d.code.0 == "ANA302")
            .collect();
        assert_eq!(ana302.len(), 1, "{:?}", a.diagnostics);
        assert!(ana302[0].message.contains("`aux`"), "{:?}", ana302[0]);
        assert!(
            !a.diagnostics
                .iter()
                .any(|d| d.message.contains("rec.m2") || d.message.contains("send.m2")),
            "{:?}",
            a.diagnostics
        );
    }

    #[test]
    fn one_sided_sync_is_reported_through_renaming() {
        // The syntactic CSP201 lint bails on the rename; the semantic
        // analysis must still see that MONITOR never offers `req`.
        let a = analyze(
            "
            channel req, rpt, tick
            SENDER = req -> SENDER
            CLOCK = tick -> CLOCK
            MONITOR = CLOCK [[ tick <- rpt ]]
            SYSTEM = SENDER [| {req, rpt} |] MONITOR
            assert SYSTEM :[deadlock free]
            ",
        );
        let codes = codes(&a);
        assert!(codes.contains(&"ANA301"), "{codes:?}");
        // SYSTEM deadlocks immediately (one-sided sync on both events).
        assert!(codes.contains(&"ANA306"), "{codes:?}");
    }

    #[test]
    fn dead_hide_and_unreachable_definition_are_reported() {
        let a = analyze(
            "
            channel a, b, zap
            P = a -> P
            Q = (b -> Q) \\ {zap}
            ORPHAN = a -> STOP
            assert Q :[deadlock free]
            ",
        );
        let codes = codes(&a);
        assert!(codes.contains(&"ANA303"), "{codes:?}");
        assert!(codes.contains(&"ANA304"), "{codes:?}");
        // ORPHAN's diagnostic points at its definition line.
        let orphan = a
            .diagnostics
            .iter()
            .find(|d| d.code.0 == "ANA304" && d.message.contains("ORPHAN"))
            .unwrap();
        assert!(orphan.span.is_known());
        // P is also unreachable here.
        assert_eq!(
            a.diagnostics
                .iter()
                .filter(|d| d.code.0 == "ANA304")
                .count(),
            2
        );
    }

    #[test]
    fn divergence_is_flagged_only_under_doomed_assertions() {
        let src_doomed = "
            channel a
            DIV = (a -> DIV) \\ {a}
            assert DIV :[divergence free]
            ";
        let src_fine = "
            channel a
            SPEC = a -> SPEC
            DIV = (a -> DIV) \\ {a}
            assert SPEC [T= DIV
            ";
        assert!(codes(&analyze(src_doomed)).contains(&"ANA305"));
        assert!(!codes(&analyze(src_fine)).contains(&"ANA305"));
    }

    #[test]
    fn fd_refinement_dooms_a_divergent_impl() {
        let a = analyze(
            "
            channel a
            SPEC = a -> SPEC
            DIV = (a -> DIV) \\ {a}
            assert SPEC [FD= DIV
            ",
        );
        let d = a
            .diagnostics
            .iter()
            .find(|d| d.code.0 == "ANA305")
            .expect("ANA305");
        assert!(d.message.contains("impl"), "{}", d.message);
        assert_eq!(a.assertions[0].processes.len(), 2);
        assert!(a.assertions[0].predicted_product.is_some());
    }

    #[test]
    fn stop_under_trace_refinement_stays_silent() {
        // STOP-terminated models under `[T=` are idiomatic: no ANA306.
        let a = analyze(
            "
            channel a
            SPEC = a -> SPEC
            ONCE = a -> STOP
            assert SPEC [T= ONCE
            ",
        );
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
    }

    #[test]
    fn compile_failure_degrades_to_ana300() {
        let src = "
            channel a, b
            P = a -> b -> P
            assert P :[deadlock free]
            ";
        let script = Script::parse(src).unwrap();
        let loaded = script.load().unwrap();
        let mut builder = fdrlite::CheckerBuilder::new();
        builder.max_states(1);
        let tiny = builder.build();
        let a = analyze_script(script.module(), &loaded, &tiny, &ModelStore::new(), None);
        let codes: Vec<&str> = a.diagnostics.iter().map(|d| d.code.0).collect();
        assert!(codes.contains(&"ANA300"), "{codes:?}");
        assert!(a.assertions[0].processes[0].graph.is_none());
    }

    #[test]
    fn predicted_over_budget_fires_against_the_budget() {
        let a_src = "
            channel a, b
            P = a -> b -> P
            Q = b -> a -> Q
            SYS = P ||| Q
            assert SYS :[deadlock free]
            ";
        let script = Script::parse(a_src).unwrap();
        let loaded = script.load().unwrap();
        let a = analyze_script(
            script.module(),
            &loaded,
            &Checker::new(),
            &ModelStore::new(),
            Some(2),
        );
        let codes: Vec<&str> = a.diagnostics.iter().map(|d| d.code.0).collect();
        assert!(codes.contains(&"ANA307"), "{codes:?}");
        let proc = &a.assertions[0].processes[0];
        assert!(proc.estimate_exact);
        assert!(proc.predicted_states > 2);
        assert_eq!(proc.parallel_count, 1);
    }

    #[test]
    fn analysis_is_cached_in_the_store() {
        let src = "
            channel a
            P = a -> P
            assert P :[deadlock free]
            ";
        let script = Script::parse(src).unwrap();
        let loaded = script.load().unwrap();
        let checker = Checker::new();
        let store = ModelStore::new();
        analyze_script(script.module(), &loaded, &checker, &store, None);
        assert_eq!(store.analysis_misses(), 1);
        assert_eq!(store.analysis_hits(), 0);
        // A check over the same store reuses the classification.
        loaded
            .check_with_store(&checker, &crate::CheckOptions::default(), &store)
            .unwrap();
        assert_eq!(store.analysis_misses(), 1);
        assert!(store.analysis_hits() >= 1);
    }

    #[test]
    fn diagnostics_are_sorted_and_definitions_reported() {
        let a = analyze(
            "
            channel a, b, zap
            Z = (b -> Z) \\ {zap}
            A = (a -> A) \\ {zap}
            assert Z :[deadlock free]
            assert A :[deadlock free]
            ",
        );
        let lines: Vec<u32> = a.diagnostics.iter().map(|d| d.span.line).collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
        let z = a.definitions.iter().find(|d| d.name == "Z").unwrap();
        assert_eq!(z.alphabet, vec!["b".to_string()]);
        assert!(z.reachable);
    }
}
