//! Error type covering lexing, parsing, evaluation and checking.

use std::fmt;

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Errors from any stage of handling a CSPm script.
#[derive(Debug, Clone, PartialEq)]
pub enum CspmError {
    /// A lexical error (bad character, unterminated comment, …).
    Lex {
        /// Where the error occurred.
        pos: Pos,
        /// Description.
        message: String,
    },
    /// A syntax error.
    Parse {
        /// Where the error occurred.
        pos: Pos,
        /// Description.
        message: String,
    },
    /// An evaluation/elaboration error (unknown name, type mismatch, …).
    Eval {
        /// Description.
        message: String,
    },
    /// An error from the refinement checker while running assertions.
    Check {
        /// Description.
        message: String,
    },
}

impl CspmError {
    pub(crate) fn eval(message: impl Into<String>) -> Self {
        CspmError::Eval {
            message: message.into(),
        }
    }
}

impl fmt::Display for CspmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CspmError::Lex { pos, message } => write!(f, "lex error at {pos}: {message}"),
            CspmError::Parse { pos, message } => write!(f, "parse error at {pos}: {message}"),
            CspmError::Eval { message } => write!(f, "evaluation error: {message}"),
            CspmError::Check { message } => write!(f, "check error: {message}"),
        }
    }
}

impl std::error::Error for CspmError {}

impl From<csp::CspError> for CspmError {
    fn from(e: csp::CspError) -> Self {
        CspmError::Check {
            message: e.to_string(),
        }
    }
}

impl From<fdrlite::CheckError> for CspmError {
    fn from(e: fdrlite::CheckError) -> Self {
        CspmError::Check {
            message: e.to_string(),
        }
    }
}
