//! Pretty-printing of CSPm ASTs back to source text.
//!
//! Used for assertion descriptions in check reports and for round-trip
//! testing of the parser.

use crate::ast::*;
use std::fmt::Write as _;

/// Render a whole module, one declaration per line.
pub fn module(m: &Module) -> String {
    let mut out = String::new();
    for d in &m.decls {
        out.push_str(&decl(d));
        out.push('\n');
    }
    out
}

/// Render one declaration.
pub fn decl(d: &Decl) -> String {
    match d {
        Decl::Channel { names, fields } => {
            let mut s = format!("channel {}", names.join(", "));
            if !fields.is_empty() {
                s.push_str(" : ");
                s.push_str(&fields.iter().map(type_expr).collect::<Vec<_>>().join("."));
            }
            s
        }
        Decl::Datatype { name, ctors } => {
            let body = ctors
                .iter()
                .map(|c| {
                    let mut s = c.name.clone();
                    for f in &c.fields {
                        s.push('.');
                        s.push_str(&type_expr(f));
                    }
                    s
                })
                .collect::<Vec<_>>()
                .join(" | ");
            format!("datatype {name} = {body}")
        }
        Decl::Nametype { name, value } => format!("nametype {name} = {}", expr(value)),
        Decl::Definition {
            name, params, body, ..
        } => {
            if params.is_empty() {
                format!("{name} = {}", expr(body))
            } else {
                format!("{name}({}) = {}", params.join(", "), expr(body))
            }
        }
        Decl::Assert(a) => format!("assert {}", assertion(a)),
    }
}

/// Render an assertion (without the `assert` keyword).
pub fn assertion(a: &Assertion) -> String {
    match a {
        Assertion::Refinement { spec, impl_, model } => {
            let op = match model {
                RefModel::Traces => "[T=",
                RefModel::Failures => "[F=",
                RefModel::FailuresDivergences => "[FD=",
            };
            format!("{} {op} {}", expr(spec), expr(impl_))
        }
        Assertion::Property { process, property } => {
            let p = match property {
                PropKind::DeadlockFree => "deadlock free",
                PropKind::DivergenceFree => "divergence free",
                PropKind::Deterministic => "deterministic",
            };
            format!("{} :[{p}]", expr(process))
        }
    }
}

fn type_expr(t: &TypeExpr) -> String {
    match t {
        TypeExpr::Name(n) => n.clone(),
        TypeExpr::Set(e) => expr(e),
    }
}

/// Render an expression with minimal but safe parenthesisation.
pub fn expr(e: &Expr) -> String {
    let mut s = String::new();
    write_expr(e, &mut s);
    s
}

fn write_expr(e: &Expr, out: &mut String) {
    match e {
        Expr::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Expr::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Expr::Name(n) => out.push_str(n),
        Expr::Call { name, args } => {
            out.push_str(name);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(a, out);
            }
            out.push(')');
        }
        Expr::Dotted { name, fields } => {
            out.push_str(name);
            for f in fields {
                out.push('.');
                write_expr(f, out);
            }
        }
        Expr::SetLit(items) => {
            out.push('{');
            for (i, it) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(it, out);
            }
            out.push('}');
        }
        Expr::SetComprehension {
            head,
            binders,
            guards,
        } => {
            out.push_str("{ ");
            write_expr(head, out);
            out.push_str(" | ");
            let mut first = true;
            for (v, d) in binders {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                let _ = write!(out, "{v} <- ");
                write_expr(d, out);
            }
            for g in guards {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                write_expr(g, out);
            }
            out.push_str(" }");
        }
        Expr::RangeSet { lo, hi } => {
            out.push('{');
            write_expr(lo, out);
            out.push_str("..");
            write_expr(hi, out);
            out.push('}');
        }
        Expr::Productions(pats) => {
            out.push_str("{| ");
            for (i, p) in pats.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_event_pattern(p, out);
            }
            out.push_str(" |}");
        }
        Expr::SeqLit(items) => {
            out.push('<');
            for (i, it) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(it, out);
            }
            out.push('>');
        }
        Expr::Tuple(items) => {
            out.push('(');
            for (i, it) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(it, out);
            }
            out.push(')');
        }
        Expr::Unary { op, expr } => {
            out.push_str(match op {
                UnOp::Neg => "-",
                UnOp::Not => "not ",
            });
            write_expr(expr, out);
        }
        Expr::Binary { op, lhs, rhs } => {
            out.push('(');
            write_expr(lhs, out);
            let _ = write!(
                out,
                " {} ",
                match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Mod => "%",
                    BinOp::Eq => "==",
                    BinOp::Ne => "!=",
                    BinOp::Lt => "<",
                    BinOp::Le => "<=",
                    BinOp::Gt => ">",
                    BinOp::Ge => ">=",
                    BinOp::And => "and",
                    BinOp::Or => "or",
                    BinOp::Cat => "^",
                }
            );
            write_expr(rhs, out);
            out.push(')');
        }
        Expr::If { cond, then, els } => {
            out.push_str("if ");
            write_expr(cond, out);
            out.push_str(" then ");
            write_expr(then, out);
            out.push_str(" else ");
            write_expr(els, out);
        }
        Expr::Let { bindings, body } => {
            out.push_str("let ");
            for (i, (n, v)) in bindings.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                let _ = write!(out, "{n} = ");
                write_expr(v, out);
            }
            out.push_str(" within ");
            write_expr(body, out);
        }
        Expr::Stop => out.push_str("STOP"),
        Expr::Skip => out.push_str("SKIP"),
        Expr::Prefix { event, body } => {
            write_event_pattern_full(event, out);
            out.push_str(" -> ");
            write_expr(body, out);
        }
        Expr::Guard { cond, body } => {
            write_expr(cond, out);
            out.push_str(" & ");
            write_expr(body, out);
        }
        Expr::ExtChoice(a, b) => binopp(a, "[]", b, out),
        Expr::IntChoice(a, b) => binopp(a, "|~|", b, out),
        Expr::Seq(a, b) => binopp(a, ";", b, out),
        Expr::Parallel { left, sync, right } => {
            out.push('(');
            write_expr(left, out);
            out.push_str(" [| ");
            write_expr(sync, out);
            out.push_str(" |] ");
            write_expr(right, out);
            out.push(')');
        }
        Expr::Interleave(a, b) => binopp(a, "|||", b, out),
        Expr::Interrupt(a, b) => binopp(a, "/\\", b, out),
        Expr::Timeout(a, b) => binopp(a, "[>", b, out),
        Expr::Hide { process, set } => {
            out.push('(');
            write_expr(process, out);
            out.push_str(" \\ ");
            write_expr(set, out);
            out.push(')');
        }
        Expr::Rename { process, pairs } => {
            out.push('(');
            write_expr(process, out);
            out.push_str(" [[ ");
            for (i, (f, t)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_event_pattern(f, out);
                out.push_str(" <- ");
                write_event_pattern(t, out);
            }
            out.push_str(" ]])");
        }
        Expr::Replicated { op, var, set, body } => {
            out.push_str(match op {
                ReplOp::ExtChoice => "[] ",
                ReplOp::IntChoice => "|~| ",
                ReplOp::Interleave => "||| ",
                ReplOp::Seq => "; ",
            });
            let _ = write!(out, "{var} : ");
            write_expr(set, out);
            out.push_str(" @ ");
            write_expr(body, out);
        }
    }
}

fn binopp(a: &Expr, op: &str, b: &Expr, out: &mut String) {
    out.push('(');
    write_expr(a, out);
    let _ = write!(out, " {op} ");
    write_expr(b, out);
    out.push(')');
}

fn write_event_pattern(p: &EventPattern, out: &mut String) {
    out.push_str(&p.channel);
    for f in &p.fields {
        if let FieldPat::Dot(e) = f {
            out.push('.');
            write_expr(e, out);
        }
    }
}

fn write_event_pattern_full(p: &EventPattern, out: &mut String) {
    out.push_str(&p.channel);
    for f in &p.fields {
        match f {
            FieldPat::Dot(e) => {
                out.push('.');
                write_expr(e, out);
            }
            FieldPat::Output(e) => {
                out.push('!');
                write_expr(e, out);
            }
            FieldPat::Input { var, restrict } => {
                let _ = write!(out, "?{var}");
                if let Some(r) = restrict {
                    out.push(':');
                    write_expr(r, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_module;

    fn roundtrip(src: &str) {
        let m1 = parse_module(&lex(src).unwrap()).unwrap();
        let printed = module(&m1);
        let m2 = parse_module(&lex(&printed).unwrap())
            .unwrap_or_else(|e| panic!("re-parse of `{printed}` failed: {e}"));
        let printed2 = module(&m2);
        assert_eq!(printed, printed2, "pretty-printing is not a fixpoint");
    }

    #[test]
    fn roundtrips_paper_script() {
        roundtrip(
            "datatype MsgT = reqSw | rptSw\n\
             channel send, rec : MsgT\n\
             SP02 = rec.reqSw -> send.rptSw -> SP02\n\
             assert SP02 [T= SP02",
        );
    }

    #[test]
    fn roundtrips_operators() {
        roundtrip("P = (a -> STOP [] b -> SKIP) |~| (c -> STOP ; SKIP)");
        roundtrip("P = (Q [| {| c |} |] R) \\ {| d |}");
        roundtrip("P = [] x : {0..3} @ c.x -> STOP");
        roundtrip("P = c?x!0 -> if x == 1 then STOP else SKIP");
        roundtrip("P = (a -> STOP) /\\ (k -> STOP)");
        roundtrip("P = (a -> STOP) [> (b -> STOP)");
        roundtrip("S = { x * 2 | x <- {0..4}, x != 1 }");
    }

    #[test]
    fn roundtrips_assertions() {
        roundtrip("assert P :[deadlock free]\nassert Q :[deterministic]");
    }
}
