//! Recursive-descent parser for the CSPm subset.
//!
//! Operator precedence, loosest to tightest (matching FDR's manual closely
//! enough for the scripts this toolchain emits and consumes):
//!
//! ```text
//! [|A|]  |||                 (parallel, interleave)
//! |~|                        (internal choice)
//! []                         (external choice)
//! ;                          (sequential composition)
//! &                          (guard)
//! or / and / not             (boolean)
//! == != < <= > >=            (comparison)
//! + -                        (additive)
//! * / %                      (multiplicative)
//! \  [[..]]                  (hiding, renaming — postfix)
//! e -> P                     (prefix, parsed at atom level)
//! ```

use crate::ast::*;
use crate::error::{CspmError, Pos};
use crate::lexer::{Token, TokenKind};

/// Parse a token stream into a [`Module`].
///
/// # Errors
///
/// [`CspmError::Parse`] on the first syntax error.
pub(crate) fn parse_module(tokens: &[Token]) -> Result<Module, CspmError> {
    let mut p = Parser { tokens, i: 0 };
    let mut decls = Vec::new();
    while !p.at_eof() {
        decls.push(p.decl()?);
    }
    Ok(Module { decls })
}

struct Parser<'a> {
    tokens: &'a [Token],
    i: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.i.min(self.tokens.len() - 1)].kind
    }

    fn pos(&self) -> Pos {
        self.tokens[self.i.min(self.tokens.len() - 1)].pos
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.tokens[self.i].kind.clone();
        if self.i < self.tokens.len() - 1 {
            self.i += 1;
        }
        k
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, CspmError> {
        Err(CspmError::Parse {
            pos: self.pos(),
            message: message.into(),
        })
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), CspmError> {
        if self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {what}, found {:?}", self.peek()))
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, CspmError> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected {what}, found {other:?}")),
        }
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s == kw)
    }

    // ---- declarations -------------------------------------------------

    fn decl(&mut self) -> Result<Decl, CspmError> {
        if self.is_kw("channel") {
            self.bump();
            return self.channel_decl();
        }
        if self.is_kw("datatype") {
            self.bump();
            return self.datatype_decl();
        }
        if self.is_kw("nametype") {
            self.bump();
            let name = self.ident("nametype name")?;
            self.expect(&TokenKind::Eq, "`=`")?;
            let value = self.expr()?;
            return Ok(Decl::Nametype { name, value });
        }
        if self.is_kw("assert") {
            self.bump();
            return Ok(Decl::Assert(self.assertion()?));
        }
        // Definition: Name [ ( params ) ] = body
        let pos = self.pos();
        let name = self.ident("definition name")?;
        let mut params = Vec::new();
        if self.eat(&TokenKind::LParen) {
            loop {
                params.push(self.ident("parameter name")?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen, "`)`")?;
        }
        self.expect(&TokenKind::Eq, "`=`")?;
        let body = self.expr()?;
        Ok(Decl::Definition {
            name,
            params,
            body,
            pos,
        })
    }

    fn channel_decl(&mut self) -> Result<Decl, CspmError> {
        let mut names = vec![self.ident("channel name")?];
        while self.eat(&TokenKind::Comma) {
            names.push(self.ident("channel name")?);
        }
        let mut fields = Vec::new();
        if self.eat(&TokenKind::Colon) {
            fields.push(self.type_expr()?);
            while self.eat(&TokenKind::Dot) {
                fields.push(self.type_expr()?);
            }
        }
        Ok(Decl::Channel { names, fields })
    }

    fn datatype_decl(&mut self) -> Result<Decl, CspmError> {
        let name = self.ident("datatype name")?;
        self.expect(&TokenKind::Eq, "`=`")?;
        let mut ctors = vec![self.ctor()?];
        while self.eat(&TokenKind::Bar) {
            ctors.push(self.ctor()?);
        }
        Ok(Decl::Datatype { name, ctors })
    }

    fn ctor(&mut self) -> Result<Ctor, CspmError> {
        let name = self.ident("constructor name")?;
        let mut fields = Vec::new();
        while self.eat(&TokenKind::Dot) {
            fields.push(self.type_expr()?);
        }
        Ok(Ctor { name, fields })
    }

    fn type_expr(&mut self) -> Result<TypeExpr, CspmError> {
        if matches!(self.peek(), TokenKind::LBrace) {
            let e = self.atom()?;
            Ok(TypeExpr::Set(Box::new(e)))
        } else {
            Ok(TypeExpr::Name(self.ident("type name")?))
        }
    }

    fn assertion(&mut self) -> Result<Assertion, CspmError> {
        let lhs = self.expr()?;
        match self.peek().clone() {
            TokenKind::RefinesTraces => {
                self.bump();
                let rhs = self.expr()?;
                Ok(Assertion::Refinement {
                    spec: lhs,
                    impl_: rhs,
                    model: RefModel::Traces,
                })
            }
            TokenKind::RefinesFailures => {
                self.bump();
                let rhs = self.expr()?;
                Ok(Assertion::Refinement {
                    spec: lhs,
                    impl_: rhs,
                    model: RefModel::Failures,
                })
            }
            TokenKind::RefinesFailuresDivergences => {
                self.bump();
                let rhs = self.expr()?;
                Ok(Assertion::Refinement {
                    spec: lhs,
                    impl_: rhs,
                    model: RefModel::FailuresDivergences,
                })
            }
            TokenKind::ColonLBracket => {
                self.bump();
                let word = self.ident("property name")?;
                let property = match word.as_str() {
                    "deadlock" => {
                        let free = self.ident("`free`")?;
                        if free != "free" {
                            return self.err("expected `free` after `deadlock`");
                        }
                        PropKind::DeadlockFree
                    }
                    "divergence" => {
                        let free = self.ident("`free`")?;
                        if free != "free" {
                            return self.err("expected `free` after `divergence`");
                        }
                        PropKind::DivergenceFree
                    }
                    "deterministic" => PropKind::Deterministic,
                    other => return self.err(format!("unknown property `{other}`")),
                };
                self.expect(&TokenKind::RBracket, "`]`")?;
                Ok(Assertion::Property {
                    process: lhs,
                    property,
                })
            }
            other => self.err(format!(
                "expected `[T=`, `[F=` or `:[` in assertion, found {other:?}"
            )),
        }
    }

    // ---- expressions ---------------------------------------------------

    fn expr(&mut self) -> Result<Expr, CspmError> {
        self.parallel()
    }

    fn parallel(&mut self) -> Result<Expr, CspmError> {
        let mut lhs = self.int_choice()?;
        loop {
            if self.eat(&TokenKind::Interleave) {
                let rhs = self.int_choice()?;
                lhs = Expr::Interleave(Box::new(lhs), Box::new(rhs));
            } else if self.eat(&TokenKind::LParBar) {
                let sync = self.expr()?;
                self.expect(&TokenKind::RParBar, "`|]`")?;
                let rhs = self.int_choice()?;
                lhs = Expr::Parallel {
                    left: Box::new(lhs),
                    sync: Box::new(sync),
                    right: Box::new(rhs),
                };
            } else {
                return Ok(lhs);
            }
        }
    }

    fn int_choice(&mut self) -> Result<Expr, CspmError> {
        let mut lhs = self.ext_choice()?;
        while self.eat(&TokenKind::IntChoice) {
            let rhs = self.ext_choice()?;
            lhs = Expr::IntChoice(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn ext_choice(&mut self) -> Result<Expr, CspmError> {
        let mut lhs = self.interrupt_timeout()?;
        while self.eat(&TokenKind::ExtChoice) {
            let rhs = self.interrupt_timeout()?;
            lhs = Expr::ExtChoice(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn interrupt_timeout(&mut self) -> Result<Expr, CspmError> {
        let mut lhs = self.seq()?;
        loop {
            if self.eat(&TokenKind::InterruptOp) {
                let rhs = self.seq()?;
                lhs = Expr::Interrupt(Box::new(lhs), Box::new(rhs));
            } else if self.eat(&TokenKind::TimeoutOp) {
                let rhs = self.seq()?;
                lhs = Expr::Timeout(Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn seq(&mut self) -> Result<Expr, CspmError> {
        let mut lhs = self.guard()?;
        while self.eat(&TokenKind::Semi) {
            let rhs = self.guard()?;
            lhs = Expr::Seq(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn guard(&mut self) -> Result<Expr, CspmError> {
        let e = self.bool_or()?;
        if self.eat(&TokenKind::Amp) {
            let body = self.guard()?;
            Ok(Expr::Guard {
                cond: Box::new(e),
                body: Box::new(body),
            })
        } else {
            Ok(e)
        }
    }

    fn bool_or(&mut self) -> Result<Expr, CspmError> {
        let mut lhs = self.bool_and()?;
        while self.is_kw("or") {
            self.bump();
            let rhs = self.bool_and()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn bool_and(&mut self) -> Result<Expr, CspmError> {
        let mut lhs = self.comparison()?;
        while self.is_kw("and") {
            self.bump();
            let rhs = self.comparison()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn comparison(&mut self) -> Result<Expr, CspmError> {
        let lhs = self.additive()?;
        let op = match self.peek() {
            TokenKind::EqEq => BinOp::Eq,
            TokenKind::NotEq => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.additive()?;
        Ok(Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        })
    }

    fn additive(&mut self) -> Result<Expr, CspmError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, CspmError> {
        let mut lhs = self.postfix()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Mod,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.postfix()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn postfix(&mut self) -> Result<Expr, CspmError> {
        let mut e = self.atom()?;
        loop {
            if self.eat(&TokenKind::Backslash) {
                let set = self.atom()?;
                e = Expr::Hide {
                    process: Box::new(e),
                    set: Box::new(set),
                };
            } else if self.eat(&TokenKind::LRenameBracket) {
                let mut pairs = Vec::new();
                loop {
                    let from = self.event_pattern()?;
                    self.expect(&TokenKind::LeftArrow, "`<-`")?;
                    let to = self.event_pattern()?;
                    pairs.push((from, to));
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::RRenameBracket, "`]]`")?;
                e = Expr::Rename {
                    process: Box::new(e),
                    pairs,
                };
            } else {
                return Ok(e);
            }
        }
    }

    fn atom(&mut self) -> Result<Expr, CspmError> {
        match self.peek().clone() {
            TokenKind::Int(n) => {
                self.bump();
                Ok(Expr::Int(n))
            }
            TokenKind::Minus => {
                self.bump();
                let e = self.postfix()?;
                Ok(Expr::Unary {
                    op: UnOp::Neg,
                    expr: Box::new(e),
                })
            }
            TokenKind::Ident(name) => self.ident_led(name),
            TokenKind::LParen => {
                self.bump();
                let first = self.expr()?;
                if self.eat(&TokenKind::Comma) {
                    let mut items = vec![first];
                    loop {
                        items.push(self.expr()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(&TokenKind::RParen, "`)`")?;
                    Ok(Expr::Tuple(items))
                } else {
                    self.expect(&TokenKind::RParen, "`)`")?;
                    // A parenthesised event expression may still be prefixed.
                    Ok(first)
                }
            }
            TokenKind::LBrace => {
                self.bump();
                if self.eat(&TokenKind::RBrace) {
                    return Ok(Expr::SetLit(Vec::new()));
                }
                let first = self.expr()?;
                if self.eat(&TokenKind::DotDot) {
                    let hi = self.expr()?;
                    self.expect(&TokenKind::RBrace, "`}`")?;
                    return Ok(Expr::RangeSet {
                        lo: Box::new(first),
                        hi: Box::new(hi),
                    });
                }
                if self.eat(&TokenKind::Bar) {
                    // Comprehension: { head | x <- S, guard, ... }
                    let mut binders = Vec::new();
                    let mut guards = Vec::new();
                    loop {
                        // `ident <-` starts a generator; anything else is a
                        // guard expression.
                        let is_binder = matches!(self.peek(), TokenKind::Ident(_))
                            && self.tokens.get(self.i + 1).map(|t| &t.kind)
                                == Some(&TokenKind::LeftArrow);
                        if is_binder {
                            let var = self.ident("binder variable")?;
                            self.expect(&TokenKind::LeftArrow, "`<-`")?;
                            binders.push((var, self.expr()?));
                        } else {
                            guards.push(self.expr()?);
                        }
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(&TokenKind::RBrace, "`}`")?;
                    return Ok(Expr::SetComprehension {
                        head: Box::new(first),
                        binders,
                        guards,
                    });
                }
                let mut items = vec![first];
                while self.eat(&TokenKind::Comma) {
                    items.push(self.expr()?);
                }
                self.expect(&TokenKind::RBrace, "`}`")?;
                Ok(Expr::SetLit(items))
            }
            TokenKind::LBraceBar => {
                self.bump();
                let mut pats = vec![self.event_pattern()?];
                while self.eat(&TokenKind::Comma) {
                    pats.push(self.event_pattern()?);
                }
                self.expect(&TokenKind::RBraceBar, "`|}`")?;
                Ok(Expr::Productions(pats))
            }
            TokenKind::Lt => {
                self.bump();
                if self.eat(&TokenKind::Gt) {
                    return Ok(Expr::SeqLit(Vec::new()));
                }
                // Items are parsed at additive level so that the closing `>`
                // is not taken as a comparison operator.
                let mut items = vec![self.additive()?];
                while self.eat(&TokenKind::Comma) {
                    items.push(self.additive()?);
                }
                self.expect(&TokenKind::Gt, "`>`")?;
                Ok(Expr::SeqLit(items))
            }
            TokenKind::ExtChoice => {
                self.bump();
                self.replicated(ReplOp::ExtChoice)
            }
            TokenKind::IntChoice => {
                self.bump();
                self.replicated(ReplOp::IntChoice)
            }
            TokenKind::Interleave => {
                self.bump();
                self.replicated(ReplOp::Interleave)
            }
            TokenKind::Semi => {
                self.bump();
                self.replicated(ReplOp::Seq)
            }
            other => self.err(format!("unexpected token {other:?} in expression")),
        }
    }

    fn replicated(&mut self, op: ReplOp) -> Result<Expr, CspmError> {
        let var = self.ident("bound variable")?;
        self.expect(&TokenKind::Colon, "`:`")?;
        let set = self.expr()?;
        self.expect(&TokenKind::At, "`@`")?;
        let body = self.expr()?;
        Ok(Expr::Replicated {
            op,
            var,
            set: Box::new(set),
            body: Box::new(body),
        })
    }

    /// Parse an expression beginning with an identifier: keyword forms,
    /// calls, dotted values, event patterns, and prefixes.
    fn ident_led(&mut self, name: String) -> Result<Expr, CspmError> {
        match name.as_str() {
            "STOP" => {
                self.bump();
                return Ok(Expr::Stop);
            }
            "SKIP" => {
                self.bump();
                return Ok(Expr::Skip);
            }
            "true" => {
                self.bump();
                return Ok(Expr::Bool(true));
            }
            "false" => {
                self.bump();
                return Ok(Expr::Bool(false));
            }
            "not" => {
                self.bump();
                let e = self.comparison()?;
                return Ok(Expr::Unary {
                    op: UnOp::Not,
                    expr: Box::new(e),
                });
            }
            "if" => {
                self.bump();
                let cond = self.expr()?;
                let kw = self.ident("`then`")?;
                if kw != "then" {
                    return self.err("expected `then`");
                }
                let then = self.expr()?;
                let kw = self.ident("`else`")?;
                if kw != "else" {
                    return self.err("expected `else`");
                }
                let els = self.expr()?;
                return Ok(Expr::If {
                    cond: Box::new(cond),
                    then: Box::new(then),
                    els: Box::new(els),
                });
            }
            "let" => {
                self.bump();
                let mut bindings = Vec::new();
                loop {
                    let n = self.ident("binding name")?;
                    self.expect(&TokenKind::Eq, "`=`")?;
                    let v = self.expr()?;
                    bindings.push((n, v));
                    if self.is_kw("within") {
                        self.bump();
                        break;
                    }
                }
                let body = self.expr()?;
                return Ok(Expr::Let {
                    bindings,
                    body: Box::new(body),
                });
            }
            _ => {}
        }

        self.bump(); // consume the identifier

        // Call syntax f(a, b)?
        if self.eat(&TokenKind::LParen) {
            let mut args = Vec::new();
            if !self.eat(&TokenKind::RParen) {
                loop {
                    args.push(self.expr()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::RParen, "`)`")?;
            }
            return Ok(Expr::Call { name, args });
        }

        // Event-pattern fields.
        let mut fields: Vec<FieldPat> = Vec::new();
        loop {
            match self.peek() {
                TokenKind::Dot => {
                    self.bump();
                    fields.push(FieldPat::Dot(self.simple_atom()?));
                }
                TokenKind::Bang => {
                    self.bump();
                    fields.push(FieldPat::Output(self.simple_atom()?));
                }
                TokenKind::Question => {
                    self.bump();
                    let var = self.ident("input variable")?;
                    let restrict = if self.eat(&TokenKind::Colon) {
                        Some(self.simple_atom()?)
                    } else {
                        None
                    };
                    fields.push(FieldPat::Input { var, restrict });
                }
                _ => break,
            }
        }

        if self.eat(&TokenKind::Arrow) {
            let body = self.guard()?;
            return Ok(Expr::Prefix {
                event: EventPattern {
                    channel: name,
                    fields,
                },
                body: Box::new(body),
            });
        }

        if fields.is_empty() {
            return Ok(Expr::Name(name));
        }
        // A dotted value: all fields must be output-style.
        let mut values = Vec::new();
        for f in fields {
            match f {
                FieldPat::Dot(e) | FieldPat::Output(e) => values.push(e),
                FieldPat::Input { var, .. } => {
                    return self.err(format!("input `?{var}` is only allowed in an event prefix"));
                }
            }
        }
        Ok(Expr::Dotted {
            name,
            fields: values,
        })
    }

    /// A restricted atom used in event-pattern fields and after dots in
    /// dotted values: literals, names, or a parenthesised full expression.
    fn simple_atom(&mut self) -> Result<Expr, CspmError> {
        match self.peek().clone() {
            TokenKind::Int(n) => {
                self.bump();
                Ok(Expr::Int(n))
            }
            TokenKind::Ident(s) => {
                match s.as_str() {
                    "true" => {
                        self.bump();
                        return Ok(Expr::Bool(true));
                    }
                    "false" => {
                        self.bump();
                        return Ok(Expr::Bool(false));
                    }
                    _ => {}
                }
                self.bump();
                Ok(Expr::Name(s))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            TokenKind::LBrace => self.atom(),
            other => self.err(format!("unexpected token {other:?} in event field")),
        }
    }

    /// An event pattern as used in `{| … |}` production sets and renamings:
    /// channel name plus dotted fields only.
    fn event_pattern(&mut self) -> Result<EventPattern, CspmError> {
        let channel = self.ident("channel name")?;
        let mut fields = Vec::new();
        while self.eat(&TokenKind::Dot) {
            fields.push(FieldPat::Dot(self.simple_atom()?));
        }
        Ok(EventPattern { channel, fields })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Module {
        parse_module(&lex(src).unwrap()).unwrap()
    }

    fn parse_expr(src: &str) -> Expr {
        let m = parse(&format!("X = {src}"));
        match &m.decls[0] {
            Decl::Definition { body, .. } => body.clone(),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_paper_sp02() {
        let e = parse_expr("rec.reqSw -> send.rptSw -> SP02");
        let Expr::Prefix { event, body } = e else {
            panic!("expected prefix");
        };
        assert_eq!(event.channel, "rec");
        assert_eq!(event.fields.len(), 1);
        assert!(matches!(*body, Expr::Prefix { .. }));
    }

    #[test]
    fn prefix_binds_tighter_than_choice() {
        let e = parse_expr("a -> STOP [] b -> STOP");
        assert!(matches!(e, Expr::ExtChoice(_, _)));
    }

    #[test]
    fn choice_precedence_ext_below_int() {
        // a -> STOP [] b -> STOP |~| c -> STOP
        // == (a -> STOP [] b -> STOP) |~| (c -> STOP)
        let e = parse_expr("a -> STOP [] b -> STOP |~| c -> STOP");
        let Expr::IntChoice(lhs, _) = e else {
            panic!("top must be |~|");
        };
        assert!(matches!(*lhs, Expr::ExtChoice(_, _)));
    }

    #[test]
    fn parallel_with_sync_set() {
        let e = parse_expr("VMG [| {| send, rec |} |] ECU");
        let Expr::Parallel { sync, .. } = e else {
            panic!("expected parallel");
        };
        assert!(matches!(*sync, Expr::Productions(ref ps) if ps.len() == 2));
    }

    #[test]
    fn channel_declaration() {
        let m = parse("channel send, rec : MsgT");
        assert_eq!(
            m.decls[0],
            Decl::Channel {
                names: vec!["send".into(), "rec".into()],
                fields: vec![TypeExpr::Name("MsgT".into())],
            }
        );
    }

    #[test]
    fn bare_channel_declaration() {
        let m = parse("channel tock");
        assert_eq!(
            m.decls[0],
            Decl::Channel {
                names: vec!["tock".into()],
                fields: vec![],
            }
        );
    }

    #[test]
    fn datatype_declaration() {
        let m = parse("datatype MsgT = reqSw | rptSw | reqApp | rptUpd");
        let Decl::Datatype { name, ctors } = &m.decls[0] else {
            panic!();
        };
        assert_eq!(name, "MsgT");
        assert_eq!(ctors.len(), 4);
        assert!(ctors.iter().all(|c| c.fields.is_empty()));
    }

    #[test]
    fn datatype_with_payload() {
        let m = parse("datatype Packet = Msg1.Agent.Nonce | Msg3.Nonce");
        let Decl::Datatype { ctors, .. } = &m.decls[0] else {
            panic!();
        };
        assert_eq!(ctors[0].fields.len(), 2);
        assert_eq!(ctors[1].fields.len(), 1);
    }

    #[test]
    fn assertion_forms() {
        let m = parse(
            "assert SP02 [T= SYSTEM\n\
             assert SP02 [F= SYSTEM\n\
             assert SYSTEM :[deadlock free]\n\
             assert SYSTEM :[divergence free]\n\
             assert SYSTEM :[deterministic]",
        );
        assert_eq!(m.decls.len(), 5);
        assert!(matches!(
            m.decls[0],
            Decl::Assert(Assertion::Refinement {
                model: RefModel::Traces,
                ..
            })
        ));
        assert!(matches!(
            m.decls[4],
            Decl::Assert(Assertion::Property {
                property: PropKind::Deterministic,
                ..
            })
        ));
    }

    #[test]
    fn input_output_fields() {
        let e = parse_expr("c?x!3 -> STOP");
        let Expr::Prefix { event, .. } = e else {
            panic!();
        };
        assert_eq!(event.fields.len(), 2);
        assert!(matches!(event.fields[0], FieldPat::Input { .. }));
        assert!(matches!(event.fields[1], FieldPat::Output(Expr::Int(3))));
    }

    #[test]
    fn input_with_restriction() {
        let e = parse_expr("c?x:{0..2} -> STOP");
        let Expr::Prefix { event, .. } = e else {
            panic!();
        };
        assert!(matches!(
            &event.fields[0],
            FieldPat::Input {
                restrict: Some(_),
                ..
            }
        ));
    }

    #[test]
    fn replicated_external_choice() {
        let e = parse_expr("[] x : {0..3} @ c.x -> STOP");
        assert!(matches!(
            e,
            Expr::Replicated {
                op: ReplOp::ExtChoice,
                ..
            }
        ));
    }

    #[test]
    fn hiding_and_renaming() {
        let e = parse_expr("P \\ {| internal |}");
        assert!(matches!(e, Expr::Hide { .. }));
        let e = parse_expr("P [[ a <- b ]]");
        assert!(matches!(e, Expr::Rename { ref pairs, .. } if pairs.len() == 1));
    }

    #[test]
    fn guard_expression() {
        let e = parse_expr("x == 0 & c.x -> STOP");
        assert!(matches!(e, Expr::Guard { .. }));
    }

    #[test]
    fn if_then_else_and_let() {
        let e = parse_expr("if x == 0 then STOP else SKIP");
        assert!(matches!(e, Expr::If { .. }));
        let e = parse_expr("let y = x + 1 within c.y -> STOP");
        assert!(matches!(e, Expr::Let { .. }));
    }

    #[test]
    fn parameterised_definition() {
        let m = parse("P(x, y) = c.x -> P(y, x)");
        let Decl::Definition { params, .. } = &m.decls[0] else {
            panic!();
        };
        assert_eq!(params, &["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn dotted_value_expression() {
        let e = parse_expr("{ Msg1.a.b }");
        let Expr::SetLit(items) = e else { panic!() };
        assert!(
            matches!(&items[0], Expr::Dotted { name, fields } if name == "Msg1" && fields.len() == 2)
        );
    }

    #[test]
    fn sequence_literals_vs_comparison() {
        let e = parse_expr("<1, 2>");
        assert!(matches!(e, Expr::SeqLit(ref v) if v.len() == 2));
        let e = parse_expr("x < 2");
        assert!(matches!(e, Expr::Binary { op: BinOp::Lt, .. }));
    }

    #[test]
    fn arithmetic_precedence() {
        let e = parse_expr("1 + 2 * 3");
        let Expr::Binary {
            op: BinOp::Add,
            rhs,
            ..
        } = e
        else {
            panic!();
        };
        assert!(matches!(*rhs, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn error_reports_position() {
        let tokens = lex("P = ->").unwrap();
        let err = parse_module(&tokens).unwrap_err();
        assert!(matches!(err, CspmError::Parse { .. }));
    }

    #[test]
    fn input_outside_prefix_is_rejected() {
        let tokens = lex("P = c?x").unwrap();
        assert!(parse_module(&tokens).is_err());
    }
}
