//! `jobs.toml` manifests for `autocsp run`.
//!
//! A manifest names a batch of checking jobs — refinement/property check
//! runs, trace-conformance sweeps, semantic analyses — to be executed
//! under the supervised job runtime (`fdrlite::supervisor`). The format is
//! a small TOML subset, read line by line:
//!
//! ```toml
//! [run]
//! threads = 4          # default worker threads per job
//! max_states = 200000  # default per-job state budget
//! timeout_ms = 30000   # default per-job wall budget
//! run_timeout_ms = 600000
//! retries = 3          # attempts per job for transient failures
//! retry_base_ms = 10
//! retry_seed = 7
//!
//! [[job]]
//! name = "ota-sp02"
//! kind = "check"       # check | conform | analyze
//! script = "ota.csp"   # relative to the manifest file
//! assertion = "SP02"   # optional: only assertions containing this text
//!
//! [[job]]
//! name = "ota-corpus"
//! kind = "conform"
//! script = "ota.csp"
//! spec = "SYSTEM"
//! corpus = "traces"
//!
//! [chaos]              # optional: deterministic fault plan (testing)
//! seed = 99
//! transient_attempts = 2
//! every_nth = 3
//! ```
//!
//! Only `name` and `script` are required per job. Paths are resolved
//! relative to the manifest's directory at parse time. Per-job settings
//! override `[run]` defaults, which override the CLI's.
//!
//! The `[chaos]` section drives `faults::storage::TransientJobFaults`: a
//! deterministic plan under which every `every_nth`-th job (selected by a
//! seeded hash of its name) fails transiently on its first
//! `transient_attempts` attempts. Because the plan is part of the
//! manifest, a disturbed and an undisturbed run retry identically and
//! reach identical verdicts — which is exactly what the supervision CI
//! matrix diffs for.

use std::fmt;
use std::path::{Path, PathBuf};

use crate::error::{CspmError, Pos};

/// FNV-1a over a byte slice; used for manifest and job content keys.
///
/// This mirrors the checksum primitive used by the on-disk store so keys
/// stay stable across releases; it is *not* a cryptographic hash.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// What a job does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// Run the script's assertions (like `autocsp check`).
    Check,
    /// Check a corpus of recorded traces against a spec process (like
    /// `autocsp conform`).
    Conform,
    /// Run the semantic analyzer over the script (like `autocsp analyze`).
    Analyze,
}

impl JobKind {
    fn parse(s: &str) -> Option<JobKind> {
        match s {
            "check" => Some(JobKind::Check),
            "conform" => Some(JobKind::Conform),
            "analyze" => Some(JobKind::Analyze),
            _ => None,
        }
    }

    /// The manifest spelling of this kind.
    pub fn label(self) -> &'static str {
        match self {
            JobKind::Check => "check",
            JobKind::Conform => "conform",
            JobKind::Analyze => "analyze",
        }
    }
}

impl fmt::Display for JobKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One `[[job]]` entry, paths already resolved.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Unique job name.
    pub name: String,
    /// What to do.
    pub kind: JobKind,
    /// The CSPm script to load.
    pub script: PathBuf,
    /// Spec process name (`conform` jobs; defaults to the CLI's).
    pub spec: Option<String>,
    /// Trace corpus directory (`conform` jobs).
    pub corpus: Option<PathBuf>,
    /// Run only assertions whose description contains this substring.
    pub assertion: Option<String>,
    /// Worker threads override for this job.
    pub threads: Option<usize>,
    /// State-budget override for this job.
    pub max_states: Option<u64>,
    /// Wall-budget override (milliseconds) for this job.
    pub timeout_ms: Option<u64>,
}

/// `[run]` defaults.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunSettings {
    /// Default worker threads per job.
    pub threads: Option<usize>,
    /// Default per-job state budget.
    pub max_states: Option<u64>,
    /// Default per-job wall budget (milliseconds).
    pub timeout_ms: Option<u64>,
    /// Overall wall budget for the whole run (milliseconds).
    pub run_timeout_ms: Option<u64>,
    /// Attempts per job for transient failures (first try included).
    pub retries: Option<u32>,
    /// Backoff base delay (milliseconds).
    pub retry_base_ms: Option<u64>,
    /// Backoff delay cap (milliseconds).
    pub retry_max_ms: Option<u64>,
    /// Seed for the deterministic backoff jitter.
    pub retry_seed: Option<u64>,
}

/// `[chaos]` — a deterministic transient-fault plan for testing the
/// supervisor's retry path.
#[derive(Debug, Clone, Copy)]
pub struct ChaosSpec {
    /// Seed for the job-selection hash.
    pub seed: u64,
    /// How many leading attempts of a selected job fail transiently.
    pub transient_attempts: u32,
    /// Every `n`-th job (by seeded hash of its name) is selected; `0`
    /// selects none.
    pub every_nth: u64,
}

/// A parsed `jobs.toml`.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// `[run]` defaults.
    pub run: RunSettings,
    /// The jobs, in manifest order.
    pub jobs: Vec<JobSpec>,
    /// The optional chaos plan.
    pub chaos: Option<ChaosSpec>,
    source_hash: u64,
}

impl Manifest {
    /// Parse manifest text; `base_dir` anchors the relative paths inside
    /// it (pass the manifest file's directory).
    ///
    /// # Errors
    ///
    /// [`CspmError::Parse`] (with the offending line) for malformed
    /// lines, unknown sections/keys/kinds, duplicate or missing job
    /// names, or a `conform` job without a corpus.
    pub fn parse(source: &str, base_dir: &Path) -> Result<Manifest, CspmError> {
        Parser {
            base_dir,
            manifest: Manifest {
                run: RunSettings::default(),
                jobs: Vec::new(),
                chaos: None,
                source_hash: fnv64(source.as_bytes()),
            },
        }
        .parse(source)
    }

    /// A stable hash of the manifest text, keying the supervisor's job
    /// journal: edit the manifest and a stale journal is rejected instead
    /// of replaying outcomes for jobs that no longer exist.
    pub fn source_hash(&self) -> u64 {
        self.source_hash
    }

    /// A stable content key for job `index`, folding in everything that
    /// shapes its verdict: the job definition and the script text(s) it
    /// runs. Pass the loaded script source as `script_source`; an edited
    /// script changes the key, so the journal re-runs the job.
    pub fn job_key(&self, index: usize, script_source: &str) -> u64 {
        let job = &self.jobs[index];
        let mut buf = Vec::new();
        buf.extend_from_slice(job.name.as_bytes());
        buf.push(0);
        buf.extend_from_slice(job.kind.label().as_bytes());
        buf.push(0);
        buf.extend_from_slice(script_source.as_bytes());
        buf.push(0);
        for opt in [&job.spec, &job.assertion] {
            if let Some(s) = opt {
                buf.extend_from_slice(s.as_bytes());
            }
            buf.push(0);
        }
        if let Some(c) = &job.corpus {
            buf.extend_from_slice(c.to_string_lossy().as_bytes());
        }
        buf.push(0);
        for n in [
            job.threads.map(|t| t as u64),
            job.max_states,
            job.timeout_ms,
        ] {
            buf.extend_from_slice(&n.unwrap_or(u64::MAX).to_le_bytes());
        }
        fnv64(&buf)
    }
}

enum Section {
    Top,
    Run,
    Job,
    Chaos,
}

struct Parser<'a> {
    base_dir: &'a Path,
    manifest: Manifest,
}

fn err(line: u32, message: impl Into<String>) -> CspmError {
    CspmError::Parse {
        pos: Pos { line, col: 1 },
        message: message.into(),
    }
}

impl Parser<'_> {
    fn parse(mut self, source: &str) -> Result<Manifest, CspmError> {
        let mut section = Section::Top;
        for (i, raw) in source.lines().enumerate() {
            let lineno = u32::try_from(i + 1).unwrap_or(u32::MAX);
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
                match header.trim() {
                    "job" => {
                        self.finish_job(lineno)?;
                        self.manifest.jobs.push(JobSpec {
                            name: String::new(),
                            kind: JobKind::Check,
                            script: PathBuf::new(),
                            spec: None,
                            corpus: None,
                            assertion: None,
                            threads: None,
                            max_states: None,
                            timeout_ms: None,
                        });
                        section = Section::Job;
                    }
                    other => {
                        return Err(err(lineno, format!("unknown array section `[[{other}]]`")))
                    }
                }
                continue;
            }
            if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                self.finish_job(lineno)?;
                section = match header.trim() {
                    "run" => Section::Run,
                    "chaos" => {
                        self.manifest.chaos = Some(ChaosSpec {
                            seed: 0,
                            transient_attempts: 1,
                            every_nth: 1,
                        });
                        Section::Chaos
                    }
                    other => return Err(err(lineno, format!("unknown section `[{other}]`"))),
                };
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(err(lineno, format!("expected `key = value`, got `{line}`")));
            };
            let key = key.trim();
            let value = Value::parse(value.trim(), lineno)?;
            match section {
                Section::Top => {
                    return Err(err(
                        lineno,
                        "key outside any section; start with `[run]` or `[[job]]`",
                    ))
                }
                Section::Run => self.run_key(key, &value, lineno)?,
                Section::Job => self.job_key_line(key, &value, lineno)?,
                Section::Chaos => self.chaos_key(key, &value, lineno)?,
            }
        }
        let last = u32::try_from(source.lines().count()).unwrap_or(u32::MAX);
        self.finish_job(last)?;
        if self.manifest.jobs.is_empty() {
            return Err(err(last, "manifest declares no `[[job]]`"));
        }
        Ok(self.manifest)
    }

    /// Validate the job currently being filled in, if any.
    fn finish_job(&mut self, lineno: u32) -> Result<(), CspmError> {
        let Some(job) = self.manifest.jobs.last() else {
            return Ok(());
        };
        if job.name.is_empty() {
            return Err(err(lineno, "job is missing `name`"));
        }
        if job.script.as_os_str().is_empty() {
            return Err(err(
                lineno,
                format!("job `{}` is missing `script`", job.name),
            ));
        }
        if job.kind == JobKind::Conform && job.corpus.is_none() {
            return Err(err(
                lineno,
                format!("conform job `{}` is missing `corpus`", job.name),
            ));
        }
        let name = &job.name;
        if self
            .manifest
            .jobs
            .iter()
            .filter(|j| &j.name == name)
            .count()
            > 1
        {
            return Err(err(lineno, format!("duplicate job name `{name}`")));
        }
        Ok(())
    }

    fn run_key(&mut self, key: &str, value: &Value, lineno: u32) -> Result<(), CspmError> {
        let run = &mut self.manifest.run;
        match key {
            "threads" => run.threads = Some(value.usize(lineno, key)?),
            "max_states" => run.max_states = Some(value.u64(lineno, key)?),
            "timeout_ms" => run.timeout_ms = Some(value.u64(lineno, key)?),
            "run_timeout_ms" => run.run_timeout_ms = Some(value.u64(lineno, key)?),
            "retries" => run.retries = Some(value.u32(lineno, key)?),
            "retry_base_ms" => run.retry_base_ms = Some(value.u64(lineno, key)?),
            "retry_max_ms" => run.retry_max_ms = Some(value.u64(lineno, key)?),
            "retry_seed" => run.retry_seed = Some(value.u64(lineno, key)?),
            other => return Err(err(lineno, format!("unknown `[run]` key `{other}`"))),
        }
        Ok(())
    }

    fn job_key_line(&mut self, key: &str, value: &Value, lineno: u32) -> Result<(), CspmError> {
        let base = self.base_dir;
        let job = self
            .manifest
            .jobs
            .last_mut()
            .expect("Section::Job implies a job");
        match key {
            "name" => job.name = value.string(lineno, key)?.to_string(),
            "kind" => {
                let raw = value.string(lineno, key)?;
                job.kind = JobKind::parse(raw).ok_or_else(|| {
                    err(
                        lineno,
                        format!("unknown job kind `{raw}` (expected check, conform or analyze)"),
                    )
                })?;
            }
            "script" => job.script = base.join(value.string(lineno, key)?),
            "spec" => job.spec = Some(value.string(lineno, key)?.to_string()),
            "corpus" => job.corpus = Some(base.join(value.string(lineno, key)?)),
            "assertion" => job.assertion = Some(value.string(lineno, key)?.to_string()),
            "threads" => job.threads = Some(value.usize(lineno, key)?),
            "max_states" => job.max_states = Some(value.u64(lineno, key)?),
            "timeout_ms" => job.timeout_ms = Some(value.u64(lineno, key)?),
            other => return Err(err(lineno, format!("unknown `[[job]]` key `{other}`"))),
        }
        Ok(())
    }

    fn chaos_key(&mut self, key: &str, value: &Value, lineno: u32) -> Result<(), CspmError> {
        let chaos = self
            .manifest
            .chaos
            .as_mut()
            .expect("Section::Chaos implies chaos");
        match key {
            "seed" => chaos.seed = value.u64(lineno, key)?,
            "transient_attempts" => chaos.transient_attempts = value.u32(lineno, key)?,
            "every_nth" => chaos.every_nth = value.u64(lineno, key)?,
            other => return Err(err(lineno, format!("unknown `[chaos]` key `{other}`"))),
        }
        Ok(())
    }
}

/// Strip a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

enum Value {
    Str(String),
    Int(u64),
}

impl Value {
    fn parse(raw: &str, lineno: u32) -> Result<Value, CspmError> {
        if let Some(body) = raw.strip_prefix('"') {
            let Some(body) = body.strip_suffix('"') else {
                return Err(err(lineno, format!("unterminated string `{raw}`")));
            };
            if body.contains('"') {
                return Err(err(lineno, format!("stray quote inside string `{raw}`")));
            }
            return Ok(Value::Str(body.to_string()));
        }
        match raw.replace('_', "").parse::<u64>() {
            Ok(n) => Ok(Value::Int(n)),
            Err(_) => Err(err(
                lineno,
                format!("expected a quoted string or a non-negative integer, got `{raw}`"),
            )),
        }
    }

    fn string(&self, lineno: u32, key: &str) -> Result<&str, CspmError> {
        match self {
            Value::Str(s) => Ok(s),
            Value::Int(_) => Err(err(lineno, format!("`{key}` expects a quoted string"))),
        }
    }

    fn u64(&self, lineno: u32, key: &str) -> Result<u64, CspmError> {
        match self {
            Value::Int(n) => Ok(*n),
            Value::Str(_) => Err(err(lineno, format!("`{key}` expects an integer"))),
        }
    }

    fn u32(&self, lineno: u32, key: &str) -> Result<u32, CspmError> {
        u32::try_from(self.u64(lineno, key)?)
            .map_err(|_| err(lineno, format!("`{key}` does not fit in 32 bits")))
    }

    fn usize(&self, lineno: u32, key: &str) -> Result<usize, CspmError> {
        usize::try_from(self.u64(lineno, key)?)
            .map_err(|_| err(lineno, format!("`{key}` does not fit in usize")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
        # batch for the OTA models
        [run]
        threads = 2
        max_states = 100_000
        retries = 3
        retry_seed = 7

        [[job]]
        name = "sp02"
        script = "ota.csp"          # paths resolve against the manifest dir
        assertion = "SP02"

        [[job]]
        name = "corpus"
        kind = "conform"
        script = "ota.csp"
        spec = "SYSTEM"
        corpus = "traces"
        timeout_ms = 500

        [chaos]
        seed = 99
        transient_attempts = 2
        every_nth = 3
    "#;

    #[test]
    fn sample_manifest_parses() {
        let m = Manifest::parse(SAMPLE, Path::new("/work")).unwrap();
        assert_eq!(m.run.threads, Some(2));
        assert_eq!(m.run.max_states, Some(100_000));
        assert_eq!(m.run.retries, Some(3));
        assert_eq!(m.jobs.len(), 2);
        assert_eq!(m.jobs[0].name, "sp02");
        assert_eq!(m.jobs[0].kind, JobKind::Check);
        assert_eq!(m.jobs[0].script, Path::new("/work/ota.csp"));
        assert_eq!(m.jobs[0].assertion.as_deref(), Some("SP02"));
        assert_eq!(m.jobs[1].kind, JobKind::Conform);
        assert_eq!(m.jobs[1].corpus.as_deref(), Some(Path::new("/work/traces")));
        assert_eq!(m.jobs[1].timeout_ms, Some(500));
        let chaos = m.chaos.unwrap();
        assert_eq!(
            (chaos.seed, chaos.transient_attempts, chaos.every_nth),
            (99, 2, 3)
        );
    }

    #[test]
    fn job_keys_are_content_sensitive() {
        let m = Manifest::parse(SAMPLE, Path::new("/work")).unwrap();
        let k = m.job_key(0, "P = STOP");
        assert_eq!(k, m.job_key(0, "P = STOP"), "stable");
        assert_ne!(k, m.job_key(0, "P = SKIP"), "script text changes the key");
        assert_ne!(
            k,
            m.job_key(1, "P = STOP"),
            "job definition changes the key"
        );
        assert_ne!(
            Manifest::parse(SAMPLE, Path::new("/work"))
                .unwrap()
                .source_hash(),
            Manifest::parse(
                &SAMPLE.replace("seed = 99", "seed = 98"),
                Path::new("/work")
            )
            .unwrap()
            .source_hash()
        );
    }

    #[test]
    fn strict_validation_rejects_mistakes() {
        let base = Path::new(".");
        let cases: &[(&str, &str)] = &[
            ("[run]\nthreads = 2\n", "declares no `[[job]]`"),
            ("[[job]]\nscript = \"a.csp\"\n", "missing `name`"),
            ("[[job]]\nname = \"a\"\n", "missing `script`"),
            (
                "[[job]]\nname = \"a\"\nkind = \"conform\"\nscript = \"a.csp\"\n",
                "missing `corpus`",
            ),
            (
                "[[job]]\nname = \"a\"\nscript = \"a.csp\"\n[[job]]\nname = \"a\"\nscript = \"a.csp\"\n",
                "duplicate job name",
            ),
            (
                "[[job]]\nname = \"a\"\nscript = \"a.csp\"\nkind = \"fuzz\"\n",
                "unknown job kind `fuzz`",
            ),
            ("[[job]]\nname = \"a\"\nscript = \"a.csp\"\nfrobnicate = 1\n", "unknown `[[job]]` key"),
            ("[nope]\n", "unknown section"),
            ("threads = 2\n", "outside any section"),
            ("[run]\nthreads = \"two\"\n", "expects an integer"),
            ("[run]\nthreads = -1\n", "non-negative integer"),
        ];
        for (src, want) in cases {
            let got = Manifest::parse(src, base).unwrap_err().to_string();
            assert!(got.contains(want), "source {src:?}: {got}");
        }
    }

    #[test]
    fn comments_respect_strings() {
        let src = "[[job]]\nname = \"a#b\" # trailing\nscript = \"x.csp\"\n";
        let m = Manifest::parse(src, Path::new(".")).unwrap();
        assert_eq!(m.jobs[0].name, "a#b");
    }
}
