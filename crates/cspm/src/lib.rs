//! `cspm` — the machine-readable CSP dialect (CSPm) as used by FDR.
//!
//! The paper's model extractor emits CSPm scripts (Fig. 3) which FDR then
//! checks. This crate implements the subset of CSPm needed for that loop:
//!
//! * **Lexer and parser** ([`parse`]) for declarations (`channel`,
//!   `datatype`, `nametype`, process/function definitions, `assert`) and the
//!   Table I process operators (`->`, `?`, `!`, `[]`, `|~|`, `;`, `[|A|]`,
//!   `|||`, `\`), plus guards (`b & P`), `if/then/else`, `let … within`, and
//!   replicated operators (`[] x : S @ P` etc.).
//! * **Evaluator and elaborator** ([`Script::load`]) that turns the script
//!   into interned events ([`csp::Alphabet`]), recursive process definitions
//!   ([`csp::Definitions`]) and [`csp::Process`] terms.
//! * **Assertions** (`assert SPEC [T= IMPL`, `assert P :[deadlock free]`, …)
//!   runnable against the [`fdrlite`] checker via [`LoadedScript::check`].
//!
//! # Example
//!
//! The paper's §V-B integrity property, end to end:
//!
//! ```
//! let source = r#"
//!     datatype MsgT = reqSw | rptSw
//!     channel send, rec : MsgT
//!     SP02 = rec.reqSw -> send.rptSw -> SP02
//!     ECU  = rec.reqSw -> send.rptSw -> ECU
//!     assert SP02 [T= ECU
//! "#;
//! let script = cspm::Script::parse(source)?;
//! let loaded = script.load()?;
//! let results = loaded.check(&fdrlite::Checker::new())?;
//! assert!(results.iter().all(|r| r.verdict.is_pass()));
//! # Ok::<(), cspm::CspmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod ast;
mod error;
mod eval;
mod lexer;
pub mod manifest;
mod parser;
pub mod pretty;
mod script;

pub use error::CspmError;
pub use eval::Value;
pub use lexer::{Token, TokenKind};
pub use script::{AssertionResult, CheckOptions, LoadedScript, Script};

/// Parse CSPm source text into an AST.
///
/// # Errors
///
/// Returns a [`CspmError`] describing the first lexical or syntax error.
pub fn parse(source: &str) -> Result<ast::Module, CspmError> {
    let tokens = lexer::lex(source)?;
    parser::parse_module(&tokens)
}
