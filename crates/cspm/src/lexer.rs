//! Hand-written lexer for the CSPm subset.

use crate::error::{CspmError, Pos};

/// The kind of a lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An identifier or keyword (keywords are distinguished by the parser).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// `->`
    Arrow,
    /// `<-`
    LeftArrow,
    /// `[]`
    ExtChoice,
    /// `|~|`
    IntChoice,
    /// `|||`
    Interleave,
    /// `[|`
    LParBar,
    /// `|]`
    RParBar,
    /// `{|`
    LBraceBar,
    /// `|}`
    RBraceBar,
    /// `[[`
    LRenameBracket,
    /// `]]`
    RRenameBracket,
    /// `[T=`
    RefinesTraces,
    /// `[F=`
    RefinesFailures,
    /// `[FD=`
    RefinesFailuresDivergences,
    /// `:[`
    ColonLBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `=`
    Eq,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `..`
    DotDot,
    /// `?`
    Question,
    /// `!`
    Bang,
    /// `:`
    Colon,
    /// `;`
    Semi,
    /// `@`
    At,
    /// `&`
    Amp,
    /// `\`
    Backslash,
    /// `|`
    Bar,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `/\` (interrupt)
    InterruptOp,
    /// `[>` (timeout / sliding choice)
    TimeoutOp,
    /// End of input.
    Eof,
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Where it starts.
    pub pos: Pos,
}

struct Cursor<'a> {
    src: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            src: src.as_bytes(),
            i: 0,
            line: 1,
            col: 1,
        }
    }

    fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.i).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.i + 1).copied()
    }

    fn peek3(&self) -> Option<u8> {
        self.src.get(self.i + 2).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.i += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

/// Tokenise CSPm source text.
///
/// # Errors
///
/// Returns [`CspmError::Lex`] on an unexpected character or unterminated
/// block comment.
pub(crate) fn lex(source: &str) -> Result<Vec<Token>, CspmError> {
    let mut cur = Cursor::new(source);
    let mut out = Vec::new();
    loop {
        // Skip whitespace and comments.
        loop {
            match cur.peek() {
                Some(c) if (c as char).is_whitespace() => {
                    cur.bump();
                }
                // Line comment `-- …`
                Some(b'-') if cur.peek2() == Some(b'-') => {
                    while let Some(c) = cur.peek() {
                        if c == b'\n' {
                            break;
                        }
                        cur.bump();
                    }
                }
                // Block comment `{- … -}` (non-nesting).
                Some(b'{') if cur.peek2() == Some(b'-') => {
                    let start = cur.pos();
                    cur.bump();
                    cur.bump();
                    let mut closed = false;
                    while let Some(c) = cur.bump() {
                        if c == b'-' && cur.peek() == Some(b'}') {
                            cur.bump();
                            closed = true;
                            break;
                        }
                    }
                    if !closed {
                        return Err(CspmError::Lex {
                            pos: start,
                            message: "unterminated block comment".into(),
                        });
                    }
                }
                _ => break,
            }
        }

        let pos = cur.pos();
        let Some(c) = cur.peek() else {
            out.push(Token {
                kind: TokenKind::Eof,
                pos,
            });
            return Ok(out);
        };

        let kind = match c {
            b'0'..=b'9' => {
                let mut n: i64 = 0;
                while let Some(d) = cur.peek() {
                    if d.is_ascii_digit() {
                        n = n * 10 + i64::from(d - b'0');
                        cur.bump();
                    } else {
                        break;
                    }
                }
                TokenKind::Int(n)
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let mut s = String::new();
                while let Some(d) = cur.peek() {
                    if (d as char).is_ascii_alphanumeric() || d == b'_' || d == b'\'' {
                        s.push(d as char);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                TokenKind::Ident(s)
            }
            b'-' if cur.peek2() == Some(b'>') => {
                cur.bump();
                cur.bump();
                TokenKind::Arrow
            }
            b'-' => {
                cur.bump();
                TokenKind::Minus
            }
            b'<' if cur.peek2() == Some(b'-') => {
                cur.bump();
                cur.bump();
                TokenKind::LeftArrow
            }
            b'<' if cur.peek2() == Some(b'=') => {
                cur.bump();
                cur.bump();
                TokenKind::Le
            }
            b'<' => {
                cur.bump();
                TokenKind::Lt
            }
            b'>' if cur.peek2() == Some(b'=') => {
                cur.bump();
                cur.bump();
                TokenKind::Ge
            }
            b'>' => {
                cur.bump();
                TokenKind::Gt
            }
            b'=' if cur.peek2() == Some(b'=') => {
                cur.bump();
                cur.bump();
                TokenKind::EqEq
            }
            b'=' => {
                cur.bump();
                TokenKind::Eq
            }
            b'!' if cur.peek2() == Some(b'=') => {
                cur.bump();
                cur.bump();
                TokenKind::NotEq
            }
            b'!' => {
                cur.bump();
                TokenKind::Bang
            }
            b'[' => match (cur.peek2(), cur.peek3()) {
                (Some(b']'), _) => {
                    cur.bump();
                    cur.bump();
                    TokenKind::ExtChoice
                }
                (Some(b'|'), _) => {
                    cur.bump();
                    cur.bump();
                    TokenKind::LParBar
                }
                (Some(b'['), _) => {
                    cur.bump();
                    cur.bump();
                    TokenKind::LRenameBracket
                }
                (Some(b'>'), _) => {
                    cur.bump();
                    cur.bump();
                    TokenKind::TimeoutOp
                }
                (Some(b'T'), Some(b'=')) => {
                    cur.bump();
                    cur.bump();
                    cur.bump();
                    TokenKind::RefinesTraces
                }
                (Some(b'F'), Some(b'=')) => {
                    cur.bump();
                    cur.bump();
                    cur.bump();
                    TokenKind::RefinesFailures
                }
                (Some(b'F'), Some(b'D')) => {
                    cur.bump();
                    cur.bump();
                    cur.bump();
                    if cur.peek() != Some(b'=') {
                        return Err(CspmError::Lex {
                            pos,
                            message: "expected `=` after `[FD`".into(),
                        });
                    }
                    cur.bump();
                    TokenKind::RefinesFailuresDivergences
                }
                _ => {
                    cur.bump();
                    TokenKind::LBracket
                }
            },
            b']' if cur.peek2() == Some(b']') => {
                cur.bump();
                cur.bump();
                TokenKind::RRenameBracket
            }
            b']' => {
                cur.bump();
                TokenKind::RBracket
            }
            b'{' if cur.peek2() == Some(b'|') => {
                cur.bump();
                cur.bump();
                TokenKind::LBraceBar
            }
            b'{' => {
                cur.bump();
                TokenKind::LBrace
            }
            b'}' => {
                cur.bump();
                TokenKind::RBrace
            }
            b'|' => match (cur.peek2(), cur.peek3()) {
                (Some(b'~'), Some(b'|')) => {
                    cur.bump();
                    cur.bump();
                    cur.bump();
                    TokenKind::IntChoice
                }
                (Some(b'|'), Some(b'|')) => {
                    cur.bump();
                    cur.bump();
                    cur.bump();
                    TokenKind::Interleave
                }
                (Some(b']'), _) => {
                    cur.bump();
                    cur.bump();
                    TokenKind::RParBar
                }
                (Some(b'}'), _) => {
                    cur.bump();
                    cur.bump();
                    TokenKind::RBraceBar
                }
                _ => {
                    cur.bump();
                    TokenKind::Bar
                }
            },
            b':' if cur.peek2() == Some(b'[') => {
                cur.bump();
                cur.bump();
                TokenKind::ColonLBracket
            }
            b':' => {
                cur.bump();
                TokenKind::Colon
            }
            b'(' => {
                cur.bump();
                TokenKind::LParen
            }
            b')' => {
                cur.bump();
                TokenKind::RParen
            }
            b',' => {
                cur.bump();
                TokenKind::Comma
            }
            b'.' if cur.peek2() == Some(b'.') => {
                cur.bump();
                cur.bump();
                TokenKind::DotDot
            }
            b'.' => {
                cur.bump();
                TokenKind::Dot
            }
            b'?' => {
                cur.bump();
                TokenKind::Question
            }
            b';' => {
                cur.bump();
                TokenKind::Semi
            }
            b'@' => {
                cur.bump();
                TokenKind::At
            }
            b'&' => {
                cur.bump();
                TokenKind::Amp
            }
            b'\\' => {
                cur.bump();
                TokenKind::Backslash
            }
            b'+' => {
                cur.bump();
                TokenKind::Plus
            }
            b'*' => {
                cur.bump();
                TokenKind::Star
            }
            b'/' if cur.peek2() == Some(b'\\') => {
                cur.bump();
                cur.bump();
                TokenKind::InterruptOp
            }
            b'/' => {
                cur.bump();
                TokenKind::Slash
            }
            b'%' => {
                cur.bump();
                TokenKind::Percent
            }
            other => {
                return Err(CspmError::Lex {
                    pos,
                    message: format!("unexpected character `{}`", other as char),
                });
            }
        };
        out.push(Token { kind, pos });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_the_paper_example() {
        let ks = kinds("SP02 = rec.reqSw -> send.rptSw -> SP02");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("SP02".into()),
                TokenKind::Eq,
                TokenKind::Ident("rec".into()),
                TokenKind::Dot,
                TokenKind::Ident("reqSw".into()),
                TokenKind::Arrow,
                TokenKind::Ident("send".into()),
                TokenKind::Dot,
                TokenKind::Ident("rptSw".into()),
                TokenKind::Arrow,
                TokenKind::Ident("SP02".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_operators() {
        let ks = kinds("[] |~| ||| [| |] {| |} [T= [F= :[ -> <- .. == != <= >=");
        assert_eq!(
            ks,
            vec![
                TokenKind::ExtChoice,
                TokenKind::IntChoice,
                TokenKind::Interleave,
                TokenKind::LParBar,
                TokenKind::RParBar,
                TokenKind::LBraceBar,
                TokenKind::RBraceBar,
                TokenKind::RefinesTraces,
                TokenKind::RefinesFailures,
                TokenKind::ColonLBracket,
                TokenKind::Arrow,
                TokenKind::LeftArrow,
                TokenKind::DotDot,
                TokenKind::EqEq,
                TokenKind::NotEq,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("a -- line comment\n{- block\ncomment -} b");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn unterminated_block_comment_errors() {
        assert!(matches!(lex("{- oops"), Err(CspmError::Lex { .. })));
    }

    #[test]
    fn positions_are_tracked() {
        let ts = lex("a\n  b").unwrap();
        assert_eq!(ts[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(ts[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn numbers_and_arithmetic() {
        let ks = kinds("1 + 23 * 4 - 5 / 6 % 7");
        assert!(ks.contains(&TokenKind::Int(23)));
        assert!(ks.contains(&TokenKind::Percent));
    }

    #[test]
    fn minus_vs_arrow() {
        assert_eq!(
            kinds("a-b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Minus,
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }
}

#[cfg(test)]
mod fd_token_tests {
    use super::*;

    #[test]
    fn fd_refinement_token() {
        let ks: Vec<TokenKind> = lex("P [FD= Q")
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect();
        assert_eq!(ks[1], TokenKind::RefinesFailuresDivergences);
    }
}
