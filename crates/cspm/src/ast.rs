//! Abstract syntax tree for the CSPm subset.

use crate::error::Pos;

/// A whole script: a sequence of declarations.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// The declarations in source order.
    pub decls: Vec<Decl>,
}

/// A top-level declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum Decl {
    /// `channel a, b : T1.T2` (the type list may be empty).
    Channel {
        /// Channel names being declared.
        names: Vec<String>,
        /// The dotted field types (empty for bare events).
        fields: Vec<TypeExpr>,
    },
    /// `datatype T = A | B | C` (constructors may carry dotted payloads).
    Datatype {
        /// The datatype's name.
        name: String,
        /// Its constructors.
        ctors: Vec<Ctor>,
    },
    /// `nametype N = {0..3}`.
    Nametype {
        /// The type alias name.
        name: String,
        /// The set expression it abbreviates.
        value: Expr,
    },
    /// `P = …` or `P(x, y) = …` — a process/function/constant definition.
    Definition {
        /// Name being defined.
        name: String,
        /// Formal parameters (empty for constants).
        params: Vec<String>,
        /// The body.
        body: Expr,
        /// Source position of the definition.
        pos: Pos,
    },
    /// `assert …`.
    Assert(Assertion),
}

/// One constructor of a datatype.
#[derive(Debug, Clone, PartialEq)]
pub struct Ctor {
    /// The constructor name.
    pub name: String,
    /// Dotted payload field types (empty for an enumeration constant).
    pub fields: Vec<TypeExpr>,
}

/// A type expression: something that evaluates to a finite set of values.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeExpr {
    /// A named type (datatype or nametype) or `Bool`.
    Name(String),
    /// An inline set expression, e.g. `{0..3}`.
    Set(Box<Expr>),
}

/// A checkable assertion.
#[derive(Debug, Clone, PartialEq)]
pub enum Assertion {
    /// `assert Spec [T= Impl` or `assert Spec [F= Impl`.
    Refinement {
        /// The specification process expression.
        spec: Expr,
        /// The implementation process expression.
        impl_: Expr,
        /// Which semantic model.
        model: RefModel,
    },
    /// `assert P :[deadlock free]` / `:[divergence free]` / `:[deterministic]`.
    Property {
        /// The process under test.
        process: Expr,
        /// Which property.
        property: PropKind,
    },
}

/// Semantic model of a refinement assertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefModel {
    /// Trace refinement `[T=`.
    Traces,
    /// Stable-failures refinement `[F=`.
    Failures,
    /// Failures-divergences refinement `[FD=`.
    FailuresDivergences,
}

/// Property assertions FDR supports with `:[…]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PropKind {
    /// `:[deadlock free]`
    DeadlockFree,
    /// `:[divergence free]`
    DivergenceFree,
    /// `:[deterministic]`
    Deterministic,
}

/// An expression: value-level and process-level syntax share one tree, since
/// CSPm definitions may evaluate to either.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Boolean literal (`true` / `false`).
    Bool(bool),
    /// A name reference.
    Name(String),
    /// Function/process application `f(a, b)`.
    Call {
        /// The callee name.
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// Dotted value construction `Ctor.a.b` (datatype payload application).
    Dotted {
        /// The constructor name.
        name: String,
        /// The payload component expressions, in order.
        fields: Vec<Expr>,
    },
    /// A set literal `{a, b, c}`.
    SetLit(Vec<Expr>),
    /// A set comprehension `{ head | x <- S, …, guard, … }`.
    SetComprehension {
        /// The expression collected for each binding.
        head: Box<Expr>,
        /// `x <- S` generators, evaluated left to right.
        binders: Vec<(String, Expr)>,
        /// Boolean guards filtering the bindings.
        guards: Vec<Expr>,
    },
    /// An integer range set `{lo..hi}`.
    RangeSet {
        /// Lower bound (inclusive).
        lo: Box<Expr>,
        /// Upper bound (inclusive).
        hi: Box<Expr>,
    },
    /// Channel-productions set `{| c, d.1 |}`.
    Productions(Vec<EventPattern>),
    /// A sequence literal `<a, b>`.
    SeqLit(Vec<Expr>),
    /// A tuple `(a, b)`.
    Tuple(Vec<Expr>),
    /// Unary negation / not.
    Unary {
        /// The operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// A binary (value-level) operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `if c then a else b`.
    If {
        /// Condition.
        cond: Box<Expr>,
        /// Then-branch.
        then: Box<Expr>,
        /// Else-branch.
        els: Box<Expr>,
    },
    /// `let x = e within body` (also used for multiple bindings).
    Let {
        /// `(name, value)` bindings, evaluated in order.
        bindings: Vec<(String, Expr)>,
        /// The expression the bindings scope over.
        body: Box<Expr>,
    },
    /// `STOP`.
    Stop,
    /// `SKIP`.
    Skip,
    /// Event prefix `ev -> P`.
    Prefix {
        /// The (possibly dotted / `?` / `!`) event.
        event: EventPattern,
        /// The continuation process.
        body: Box<Expr>,
    },
    /// Guard `cond & P`.
    Guard {
        /// Boolean guard.
        cond: Box<Expr>,
        /// Guarded process.
        body: Box<Expr>,
    },
    /// External choice `P [] Q`.
    ExtChoice(Box<Expr>, Box<Expr>),
    /// Internal choice `P |~| Q`.
    IntChoice(Box<Expr>, Box<Expr>),
    /// Sequential composition `P ; Q`.
    Seq(Box<Expr>, Box<Expr>),
    /// Generalised parallel `P [| A |] Q`.
    Parallel {
        /// Left process.
        left: Box<Expr>,
        /// Synchronisation set expression.
        sync: Box<Expr>,
        /// Right process.
        right: Box<Expr>,
    },
    /// Interleaving `P ||| Q`.
    Interleave(Box<Expr>, Box<Expr>),
    /// Interrupt `P /\ Q`.
    Interrupt(Box<Expr>, Box<Expr>),
    /// Timeout (sliding choice) `P [> Q`.
    Timeout(Box<Expr>, Box<Expr>),
    /// Hiding `P \ A`.
    Hide {
        /// The process.
        process: Box<Expr>,
        /// The hidden set expression.
        set: Box<Expr>,
    },
    /// Renaming `P [[ a <- b, … ]]`.
    Rename {
        /// The process.
        process: Box<Expr>,
        /// `(from, to)` event-pattern pairs.
        pairs: Vec<(EventPattern, EventPattern)>,
    },
    /// A replicated operator, e.g. `[] x : S @ P`.
    Replicated {
        /// Which operator is replicated.
        op: ReplOp,
        /// The bound variable.
        var: String,
        /// The set it ranges over.
        set: Box<Expr>,
        /// The body, with `var` in scope.
        body: Box<Expr>,
    },
}

/// Unary value operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Boolean negation (`not`).
    Not,
}

/// Binary value operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `and`
    And,
    /// `or`
    Or,
    /// `^` sequence concatenation — written `^` in CSPm; unsupported token,
    /// provided via the `cat` builtin instead.
    Cat,
}

/// Replicable process operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplOp {
    /// `[] x : S @ P`
    ExtChoice,
    /// `|~| x : S @ P`
    IntChoice,
    /// `||| x : S @ P`
    Interleave,
    /// `; x : S @ P` (sequenced in the set's value order)
    Seq,
}

/// An event pattern: a channel name followed by field actions.
///
/// `c.3?x!y` has fields `[Dot(3), Input(x, None), Output(y)]`.
#[derive(Debug, Clone, PartialEq)]
pub struct EventPattern {
    /// The channel (or datatype constructor, in production sets).
    pub channel: String,
    /// The field actions, in order.
    pub fields: Vec<FieldPat>,
}

/// One field of an event pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldPat {
    /// `.expr` — an output-style dotted value.
    Dot(Expr),
    /// `!expr` — an explicit output value.
    Output(Expr),
    /// `?x` or `?x : S` — an input binding, optionally restricted to a set.
    Input {
        /// The variable bound by the input.
        var: String,
        /// Optional restriction set.
        restrict: Option<Expr>,
    },
}
