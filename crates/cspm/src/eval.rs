//! Evaluation of CSPm expressions and elaboration into core CSP processes.
//!
//! CSPm is a small functional language whose expressions may evaluate to
//! ordinary values *or* to processes. The evaluator is a tree-walking
//! interpreter; process-typed definitions are elaborated on demand into
//! [`csp::Definitions`] entries so that recursion (`P = a -> P`) ties the
//! knot through [`csp::Process::Var`] rather than infinite unfolding. Each
//! distinct instantiation of a parameterised process (`P(0)`, `P(1)`, …)
//! becomes its own definition, which is how FDR compiles parameterised
//! scripts too.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use csp::{Alphabet, DefId, Definitions, EventId, EventSet, Process, RenameMap};

use crate::ast::{BinOp, Ctor, Decl, EventPattern, Expr, FieldPat, Module, ReplOp, TypeExpr, UnOp};
use crate::error::CspmError;

/// A CSPm runtime value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// A fully-applied datatype constructor.
    Data(String, Vec<Value>),
    /// A datatype constructor awaiting payload arguments.
    CtorRef {
        /// Constructor name.
        name: String,
        /// Number of payload fields it expects.
        arity: usize,
    },
    /// A finite set.
    Set(BTreeSet<Value>),
    /// A finite sequence.
    Seq(Vec<Value>),
    /// A tuple.
    Tuple(Vec<Value>),
    /// A fully-applied communication event.
    Event(EventId),
    /// A channel name (first-class, e.g. as an argument).
    Channel(String),
    /// A CSP process.
    Process(Process),
}

impl Value {
    fn kind_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "integer",
            Value::Bool(_) => "boolean",
            Value::Data(_, _) => "datatype value",
            Value::CtorRef { .. } => "constructor",
            Value::Set(_) => "set",
            Value::Seq(_) => "sequence",
            Value::Tuple(_) => "tuple",
            Value::Event(_) => "event",
            Value::Channel(_) => "channel",
            Value::Process(_) => "process",
        }
    }

    /// Extract a process, or fail with a type error.
    pub fn into_process(self) -> Result<Process, CspmError> {
        match self {
            Value::Process(p) => Ok(p),
            other => Err(CspmError::eval(format!(
                "expected a process, found a {}",
                other.kind_name()
            ))),
        }
    }

    fn into_bool(self) -> Result<bool, CspmError> {
        match self {
            Value::Bool(b) => Ok(b),
            other => Err(CspmError::eval(format!(
                "expected a boolean, found a {}",
                other.kind_name()
            ))),
        }
    }

    fn into_int(self) -> Result<i64, CspmError> {
        match self {
            Value::Int(n) => Ok(n),
            other => Err(CspmError::eval(format!(
                "expected an integer, found a {}",
                other.kind_name()
            ))),
        }
    }

    fn into_set(self) -> Result<BTreeSet<Value>, CspmError> {
        match self {
            Value::Set(s) => Ok(s),
            other => Err(CspmError::eval(format!(
                "expected a set, found a {}",
                other.kind_name()
            ))),
        }
    }

    fn into_seq(self) -> Result<Vec<Value>, CspmError> {
        match self {
            Value::Seq(s) => Ok(s),
            other => Err(CspmError::eval(format!(
                "expected a sequence, found a {}",
                other.kind_name()
            ))),
        }
    }
}

fn variant_rank(v: &Value) -> u8 {
    match v {
        Value::Int(_) => 0,
        Value::Bool(_) => 1,
        Value::Data(_, _) => 2,
        Value::CtorRef { .. } => 3,
        Value::Set(_) => 4,
        Value::Seq(_) => 5,
        Value::Tuple(_) => 6,
        Value::Event(_) => 7,
        Value::Channel(_) => 8,
        Value::Process(_) => 9,
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Data(n1, f1), Value::Data(n2, f2)) => n1.cmp(n2).then_with(|| f1.cmp(f2)),
            (
                Value::CtorRef {
                    name: n1,
                    arity: a1,
                },
                Value::CtorRef {
                    name: n2,
                    arity: a2,
                },
            ) => n1.cmp(n2).then_with(|| a1.cmp(a2)),
            (Value::Set(a), Value::Set(b)) => a.cmp(b),
            (Value::Seq(a), Value::Seq(b)) => a.cmp(b),
            (Value::Tuple(a), Value::Tuple(b)) => a.cmp(b),
            (Value::Event(a), Value::Event(b)) => a.cmp(b),
            (Value::Channel(a), Value::Channel(b)) => a.cmp(b),
            // Processes are ordered by their (structural) debug rendering;
            // sets of processes are not supported as data, this keeps the
            // ordering total.
            (Value::Process(a), Value::Process(b)) => format!("{a:?}").cmp(&format!("{b:?}")),
            (a, b) => variant_rank(a).cmp(&variant_rank(b)),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

type Bindings = Vec<(String, Value)>;

/// The evaluator: shared interning state plus the script's declarations.
pub(crate) struct Evaluator {
    pub alphabet: Alphabet,
    pub defs: Definitions,
    channels_raw: HashMap<String, Vec<TypeExpr>>,
    channel_order: Vec<String>,
    channel_memo: HashMap<String, Vec<Vec<Value>>>,
    datatypes_raw: HashMap<String, Vec<Ctor>>,
    nametypes_raw: HashMap<String, Expr>,
    ctor_fields: HashMap<String, Vec<TypeExpr>>,
    type_memo: HashMap<String, Vec<Value>>,
    globals: HashMap<String, (Vec<String>, Expr)>,
    proc_ids: HashMap<(String, Vec<Value>), DefId>,
    in_progress: HashSet<(String, Vec<Value>)>,
    value_memo: HashMap<(String, Vec<Value>), Value>,
    type_in_progress: HashSet<String>,
    /// Process-position calls awaiting body elaboration. Deferring them
    /// keeps Rust recursion bounded by *expression* depth instead of the
    /// CSPm call-graph depth (a buffer process with hundreds of reachable
    /// parameter values would otherwise overflow the stack).
    pending: Vec<(String, Vec<Value>)>,
    pending_seen: HashSet<(String, Vec<Value>)>,
}

impl Evaluator {
    /// Collect a module's declarations (without evaluating anything yet).
    pub(crate) fn new(module: &Module) -> Result<Evaluator, CspmError> {
        let mut ev = Evaluator {
            alphabet: Alphabet::new(),
            defs: Definitions::new(),
            channels_raw: HashMap::new(),
            channel_order: Vec::new(),
            channel_memo: HashMap::new(),
            datatypes_raw: HashMap::new(),
            nametypes_raw: HashMap::new(),
            ctor_fields: HashMap::new(),
            type_memo: HashMap::new(),
            globals: HashMap::new(),
            proc_ids: HashMap::new(),
            in_progress: HashSet::new(),
            value_memo: HashMap::new(),
            type_in_progress: HashSet::new(),
            pending: Vec::new(),
            pending_seen: HashSet::new(),
        };
        for decl in &module.decls {
            match decl {
                Decl::Channel { names, fields } => {
                    for n in names {
                        if ev.channels_raw.insert(n.clone(), fields.clone()).is_some() {
                            return Err(CspmError::eval(format!("channel `{n}` redeclared")));
                        }
                        ev.channel_order.push(n.clone());
                    }
                }
                Decl::Datatype { name, ctors } => {
                    if ev
                        .datatypes_raw
                        .insert(name.clone(), ctors.clone())
                        .is_some()
                    {
                        return Err(CspmError::eval(format!("datatype `{name}` redeclared")));
                    }
                    for c in ctors {
                        if ev
                            .ctor_fields
                            .insert(c.name.clone(), c.fields.clone())
                            .is_some()
                        {
                            return Err(CspmError::eval(format!(
                                "constructor `{}` declared twice",
                                c.name
                            )));
                        }
                    }
                }
                Decl::Nametype { name, value } => {
                    ev.nametypes_raw.insert(name.clone(), value.clone());
                }
                Decl::Definition {
                    name, params, body, ..
                } => {
                    if ev
                        .globals
                        .insert(name.clone(), (params.clone(), body.clone()))
                        .is_some()
                    {
                        return Err(CspmError::eval(format!("`{name}` defined twice")));
                    }
                }
                Decl::Assert(_) => {}
            }
        }
        Ok(ev)
    }

    // ---- types and channels --------------------------------------------

    fn type_domain(&mut self, name: &str) -> Result<Vec<Value>, CspmError> {
        if let Some(d) = self.type_memo.get(name) {
            return Ok(d.clone());
        }
        if name == "Bool" {
            return Ok(vec![Value::Bool(false), Value::Bool(true)]);
        }
        if !self.type_in_progress.insert(name.to_owned()) {
            return Err(CspmError::eval(format!(
                "recursive type `{name}` has no finite domain"
            )));
        }
        let result = (|| {
            if let Some(ctors) = self.datatypes_raw.get(name).cloned() {
                let mut values = Vec::new();
                for ctor in &ctors {
                    let mut payload_domains = Vec::new();
                    for f in &ctor.fields {
                        payload_domains.push(self.type_expr_domain(f)?);
                    }
                    for combo in cartesian(&payload_domains) {
                        values.push(Value::Data(ctor.name.clone(), combo));
                    }
                }
                Ok(values)
            } else if let Some(expr) = self.nametypes_raw.get(name).cloned() {
                let v = self.eval(&expr, &mut Vec::new())?;
                Ok(v.into_set()?.into_iter().collect())
            } else {
                Err(CspmError::eval(format!("unknown type `{name}`")))
            }
        })();
        self.type_in_progress.remove(name);
        let domain = result?;
        self.type_memo.insert(name.to_owned(), domain.clone());
        Ok(domain)
    }

    fn type_expr_domain(&mut self, t: &TypeExpr) -> Result<Vec<Value>, CspmError> {
        match t {
            TypeExpr::Name(n) => self.type_domain(n),
            TypeExpr::Set(e) => {
                let v = self.eval(e, &mut Vec::new())?;
                Ok(v.into_set()?.into_iter().collect())
            }
        }
    }

    fn channel_domains(&mut self, name: &str) -> Result<Vec<Vec<Value>>, CspmError> {
        if let Some(d) = self.channel_memo.get(name) {
            return Ok(d.clone());
        }
        let Some(fields) = self.channels_raw.get(name).cloned() else {
            return Err(CspmError::eval(format!("unknown channel `{name}`")));
        };
        let mut domains = Vec::new();
        for f in &fields {
            domains.push(self.type_expr_domain(f)?);
        }
        self.channel_memo.insert(name.to_owned(), domains.clone());
        Ok(domains)
    }

    fn is_channel(&self, name: &str) -> bool {
        self.channels_raw.contains_key(name)
    }

    /// All events of channel `name`, in domain enumeration order.
    fn channel_events(&mut self, name: &str) -> Result<Vec<EventId>, CspmError> {
        let domains = self.channel_domains(name)?;
        let mut out = Vec::new();
        for combo in cartesian(&domains) {
            out.push(self.intern_event(name, &combo));
        }
        Ok(out)
    }

    fn intern_event(&mut self, channel: &str, values: &[Value]) -> EventId {
        let mut s = String::from(channel);
        for v in values {
            s.push('.');
            event_component(v, &mut s);
        }
        self.alphabet.intern(&s)
    }

    // ---- names and calls -------------------------------------------------

    fn scope_lookup(&self, name: &str, scopes: &[Bindings]) -> Option<Value> {
        for scope in scopes.iter().rev() {
            if let Some((_, v)) = scope.iter().rev().find(|(n, _)| n == name) {
                return Some(v.clone());
            }
        }
        None
    }

    fn eval_name(&mut self, name: &str, scopes: &mut [Bindings]) -> Result<Value, CspmError> {
        if let Some(v) = self.scope_lookup(name, scopes) {
            return Ok(v);
        }
        if let Some(fields) = self.ctor_fields.get(name) {
            return Ok(if fields.is_empty() {
                Value::Data(name.to_owned(), Vec::new())
            } else {
                Value::CtorRef {
                    name: name.to_owned(),
                    arity: fields.len(),
                }
            });
        }
        if self.is_channel(name) {
            return Ok(Value::Channel(name.to_owned()));
        }
        if self.globals.contains_key(name) {
            return self.eval_call(name, Vec::new());
        }
        if name == "Events" {
            let mut all = BTreeSet::new();
            for ch in self.channel_order.clone() {
                for e in self.channel_events(&ch)? {
                    all.insert(Value::Event(e));
                }
            }
            return Ok(Value::Set(all));
        }
        if let Ok(domain) = self.type_domain(name) {
            return Ok(Value::Set(domain.into_iter().collect()));
        }
        Err(CspmError::eval(format!("unknown name `{name}`")))
    }

    fn eval_call(&mut self, name: &str, args: Vec<Value>) -> Result<Value, CspmError> {
        let key = (name.to_owned(), args.clone());
        if let Some(v) = self.value_memo.get(&key) {
            return Ok(v.clone());
        }
        if self.in_progress.contains(&key) {
            // Recursive reference: assume (and enforce, below) it is a process.
            let id = self.proc_id_for(&key);
            return Ok(Value::Process(Process::var(id)));
        }
        let Some((params, body)) = self.globals.get(name).cloned() else {
            return Err(CspmError::eval(format!("unknown definition `{name}`")));
        };
        if params.len() != args.len() {
            return Err(CspmError::eval(format!(
                "`{name}` expects {} argument(s), got {}",
                params.len(),
                args.len()
            )));
        }
        self.in_progress.insert(key.clone());
        let mut scopes = vec![params.into_iter().zip(args).collect::<Bindings>()];
        let result = self.eval(&body, &mut scopes);
        self.in_progress.remove(&key);
        let value = result?;
        let out = match value {
            Value::Process(p) => {
                let id = self.proc_id_for(&key);
                self.defs.define(id, p);
                Value::Process(Process::var(id))
            }
            other => other,
        };
        self.value_memo.insert(key, out.clone());
        Ok(out)
    }

    /// Evaluate an expression in *process position*: calls and references
    /// to global definitions are deferred (a `Var` handle is returned and
    /// the body is elaborated later by [`Evaluator::drain_pending`]),
    /// bounding native recursion depth.
    fn eval_process(
        &mut self,
        expr: &Expr,
        scopes: &mut Vec<Bindings>,
    ) -> Result<Process, CspmError> {
        match expr {
            Expr::Call { name, args } if self.globals.contains_key(name) => {
                let argv = args
                    .iter()
                    .map(|a| self.eval(a, scopes))
                    .collect::<Result<Vec<_>, _>>()?;
                self.defer_call(name, argv)
            }
            Expr::Name(n)
                if self.scope_lookup(n, scopes).is_none()
                    && self.globals.get(n).is_some_and(|(p, _)| p.is_empty()) =>
            {
                self.defer_call(n, Vec::new())
            }
            Expr::If { cond, then, els } => {
                if self.eval(cond, scopes)?.into_bool()? {
                    self.eval_process(then, scopes)
                } else {
                    self.eval_process(els, scopes)
                }
            }
            Expr::Let { bindings, body } => {
                scopes.push(Bindings::new());
                let mut result = Ok(());
                for (name, value) in bindings {
                    match self.eval(value, scopes) {
                        Ok(v) => scopes
                            .last_mut()
                            .expect("scope just pushed")
                            .push((name.clone(), v)),
                        Err(e) => {
                            result = Err(e);
                            break;
                        }
                    }
                }
                let out = match result {
                    Ok(()) => self.eval_process(body, scopes),
                    Err(e) => Err(e),
                };
                scopes.pop();
                out
            }
            other => self.eval(other, scopes)?.into_process(),
        }
    }

    /// Get (or create) the definition handle for a call and queue its body
    /// for elaboration.
    fn defer_call(&mut self, name: &str, args: Vec<Value>) -> Result<Process, CspmError> {
        let key = (name.to_owned(), args);
        if let Some(v) = self.value_memo.get(&key) {
            return v.clone().into_process();
        }
        let id = self.proc_id_for(&key);
        if !self.in_progress.contains(&key) && self.pending_seen.insert(key.clone()) {
            self.pending.push(key);
        }
        Ok(Process::var(id))
    }

    /// Elaborate every deferred call (and whatever they defer in turn).
    pub(crate) fn drain_pending(&mut self) -> Result<(), CspmError> {
        while let Some(key) = self.pending.pop() {
            let value = self.eval_call(&key.0, key.1.clone())?;
            if !matches!(value, Value::Process(_)) {
                return Err(CspmError::eval(format!(
                    "`{}` is used as a process but evaluates to a {}",
                    key.0,
                    value.kind_name()
                )));
            }
        }
        Ok(())
    }

    fn proc_id_for(&mut self, key: &(String, Vec<Value>)) -> DefId {
        if let Some(&id) = self.proc_ids.get(key) {
            return id;
        }
        let mut label = key.0.clone();
        if !key.1.is_empty() {
            label.push('(');
            for (i, v) in key.1.iter().enumerate() {
                if i > 0 {
                    label.push(',');
                }
                let mut s = String::new();
                event_component(v, &mut s);
                label.push_str(&s);
            }
            label.push(')');
        }
        let id = self.defs.declare(&label);
        self.proc_ids.insert(key.clone(), id);
        id
    }

    // ---- the evaluator ---------------------------------------------------

    pub(crate) fn eval(
        &mut self,
        expr: &Expr,
        scopes: &mut Vec<Bindings>,
    ) -> Result<Value, CspmError> {
        match expr {
            Expr::Int(n) => Ok(Value::Int(*n)),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Name(n) => self.eval_name(n, scopes),
            Expr::Call { name, args } => {
                let argv = args
                    .iter()
                    .map(|a| self.eval(a, scopes))
                    .collect::<Result<Vec<_>, _>>()?;
                if self.globals.contains_key(name) {
                    self.eval_call(name, argv)
                } else {
                    self.builtin(name, argv)
                }
            }
            Expr::Dotted { name, fields } => {
                let base = self.eval_name(name, scopes)?;
                let Value::CtorRef { name: ctor, arity } = base else {
                    return Err(CspmError::eval(format!(
                        "`{name}` is not a constructor with payload"
                    )));
                };
                if fields.len() != arity {
                    return Err(CspmError::eval(format!(
                        "constructor `{ctor}` expects {arity} field(s), got {}",
                        fields.len()
                    )));
                }
                let values = fields
                    .iter()
                    .map(|f| self.eval(f, scopes))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Value::Data(ctor, values))
            }
            Expr::SetLit(items) => {
                let mut set = BTreeSet::new();
                for it in items {
                    set.insert(self.eval(it, scopes)?);
                }
                Ok(Value::Set(set))
            }
            Expr::RangeSet { lo, hi } => {
                let lo = self.eval(lo, scopes)?.into_int()?;
                let hi = self.eval(hi, scopes)?.into_int()?;
                Ok(Value::Set((lo..=hi).map(Value::Int).collect()))
            }
            Expr::Productions(pats) => {
                let mut set = BTreeSet::new();
                for pat in pats {
                    for (e, _) in self.completions(pat, scopes, true)? {
                        set.insert(Value::Event(e));
                    }
                }
                Ok(Value::Set(set))
            }
            Expr::SetComprehension {
                head,
                binders,
                guards,
            } => {
                let mut out = BTreeSet::new();
                self.comprehend(head, binders, guards, scopes, &mut out)?;
                Ok(Value::Set(out))
            }
            Expr::SeqLit(items) => {
                let values = items
                    .iter()
                    .map(|it| self.eval(it, scopes))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Value::Seq(values))
            }
            Expr::Tuple(items) => {
                let values = items
                    .iter()
                    .map(|it| self.eval(it, scopes))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Value::Tuple(values))
            }
            Expr::Unary { op, expr } => {
                let v = self.eval(expr, scopes)?;
                match op {
                    UnOp::Neg => Ok(Value::Int(-v.into_int()?)),
                    UnOp::Not => Ok(Value::Bool(!v.into_bool()?)),
                }
            }
            Expr::Binary { op, lhs, rhs } => self.binary(*op, lhs, rhs, scopes),
            Expr::If { cond, then, els } => {
                if self.eval(cond, scopes)?.into_bool()? {
                    self.eval(then, scopes)
                } else {
                    self.eval(els, scopes)
                }
            }
            Expr::Let { bindings, body } => {
                let mut scope = Bindings::new();
                scopes.push(scope);
                for (name, value) in bindings {
                    let v = match self.eval(value, scopes) {
                        Ok(v) => v,
                        Err(e) => {
                            scopes.pop();
                            return Err(e);
                        }
                    };
                    scopes
                        .last_mut()
                        .expect("scope just pushed")
                        .push((name.clone(), v));
                }
                let result = self.eval(body, scopes);
                scope = scopes.pop().expect("scope just pushed");
                let _ = scope;
                result
            }
            Expr::Stop => Ok(Value::Process(Process::Stop)),
            Expr::Skip => Ok(Value::Process(Process::Skip)),
            Expr::Prefix { event, body } => {
                // A bound event-valued variable may be used directly as a
                // prefix (common with replicated choice over event sets,
                // e.g. `[] e : Events @ e -> P`).
                if event.fields.is_empty() {
                    if let Some(Value::Event(eid)) = self.scope_lookup(&event.channel, scopes) {
                        let p = self.eval_process(body, scopes)?;
                        return Ok(Value::Process(Process::prefix(eid, p)));
                    }
                }
                let completions = self.completions(event, scopes, false)?;
                let mut branches = Vec::with_capacity(completions.len());
                for (eid, binds) in completions {
                    scopes.push(binds);
                    let result = self.eval_process(body, scopes);
                    scopes.pop();
                    branches.push(Process::prefix(eid, result?));
                }
                Ok(Value::Process(Process::external_choice_all(branches)))
            }
            Expr::Guard { cond, body } => {
                if self.eval(cond, scopes)?.into_bool()? {
                    let p = self.eval_process(body, scopes)?;
                    Ok(Value::Process(p))
                } else {
                    Ok(Value::Process(Process::Stop))
                }
            }
            Expr::ExtChoice(a, b) => {
                let p = self.eval_process(a, scopes)?;
                let q = self.eval_process(b, scopes)?;
                Ok(Value::Process(Process::external_choice(p, q)))
            }
            Expr::IntChoice(a, b) => {
                let p = self.eval_process(a, scopes)?;
                let q = self.eval_process(b, scopes)?;
                Ok(Value::Process(Process::internal_choice(p, q)))
            }
            Expr::Seq(a, b) => {
                let p = self.eval_process(a, scopes)?;
                let q = self.eval_process(b, scopes)?;
                Ok(Value::Process(Process::seq(p, q)))
            }
            Expr::Parallel { left, sync, right } => {
                let p = self.eval_process(left, scopes)?;
                let s = self.eval(sync, scopes)?;
                let sync_set = self.value_to_event_set(&s)?;
                let q = self.eval_process(right, scopes)?;
                Ok(Value::Process(Process::parallel(sync_set, p, q)))
            }
            Expr::Interleave(a, b) => {
                let p = self.eval_process(a, scopes)?;
                let q = self.eval_process(b, scopes)?;
                Ok(Value::Process(Process::interleave(p, q)))
            }
            Expr::Interrupt(a, b) => {
                let p = self.eval_process(a, scopes)?;
                let q = self.eval_process(b, scopes)?;
                Ok(Value::Process(Process::interrupt(p, q)))
            }
            Expr::Timeout(a, b) => {
                let p = self.eval_process(a, scopes)?;
                let q = self.eval_process(b, scopes)?;
                Ok(Value::Process(Process::timeout(p, q)))
            }
            Expr::Hide { process, set } => {
                let p = self.eval_process(process, scopes)?;
                let s = self.eval(set, scopes)?;
                let hidden = self.value_to_event_set(&s)?;
                Ok(Value::Process(Process::hide(p, hidden)))
            }
            Expr::Rename { process, pairs } => {
                let p = self.eval_process(process, scopes)?;
                let map = self.rename_map(pairs, scopes)?;
                Ok(Value::Process(Process::rename(p, map)))
            }
            Expr::Replicated { op, var, set, body } => {
                let domain = self.eval(set, scopes)?.into_set()?;
                let mut processes = Vec::with_capacity(domain.len());
                for v in domain {
                    scopes.push(vec![(var.clone(), v)]);
                    let result = self.eval_process(body, scopes);
                    scopes.pop();
                    processes.push(result?);
                }
                Ok(Value::Process(match op {
                    ReplOp::ExtChoice => Process::external_choice_all(processes),
                    ReplOp::IntChoice => Process::internal_choice_all(processes),
                    ReplOp::Interleave => Process::interleave_all(processes),
                    ReplOp::Seq => {
                        let mut iter = processes.into_iter().rev();
                        match iter.next() {
                            None => Process::Skip,
                            Some(last) => iter.fold(last, |acc, p| Process::seq(p, acc)),
                        }
                    }
                }))
            }
        }
    }

    /// Recursive comprehension driver: bind each generator in turn, filter
    /// by the guards, collect the head expression.
    fn comprehend(
        &mut self,
        head: &Expr,
        binders: &[(String, Expr)],
        guards: &[Expr],
        scopes: &mut Vec<Bindings>,
        out: &mut BTreeSet<Value>,
    ) -> Result<(), CspmError> {
        let Some(((var, domain_expr), rest)) = binders.split_first() else {
            for g in guards {
                if !self.eval(g, scopes)?.into_bool()? {
                    return Ok(());
                }
            }
            out.insert(self.eval(head, scopes)?);
            return Ok(());
        };
        let domain = self.eval(domain_expr, scopes)?.into_set()?;
        for v in domain {
            scopes.push(vec![(var.clone(), v)]);
            let result = self.comprehend(head, rest, guards, scopes, out);
            scopes.pop();
            result?;
        }
        Ok(())
    }

    fn binary(
        &mut self,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
        scopes: &mut Vec<Bindings>,
    ) -> Result<Value, CspmError> {
        // Short-circuit booleans first.
        match op {
            BinOp::And => {
                return Ok(Value::Bool(
                    self.eval(lhs, scopes)?.into_bool()? && self.eval(rhs, scopes)?.into_bool()?,
                ));
            }
            BinOp::Or => {
                return Ok(Value::Bool(
                    self.eval(lhs, scopes)?.into_bool()? || self.eval(rhs, scopes)?.into_bool()?,
                ));
            }
            _ => {}
        }
        let a = self.eval(lhs, scopes)?;
        let b = self.eval(rhs, scopes)?;
        Ok(match op {
            BinOp::Add => Value::Int(a.into_int()? + b.into_int()?),
            BinOp::Sub => Value::Int(a.into_int()? - b.into_int()?),
            BinOp::Mul => Value::Int(a.into_int()? * b.into_int()?),
            BinOp::Div => {
                let d = b.into_int()?;
                if d == 0 {
                    return Err(CspmError::eval("division by zero"));
                }
                Value::Int(a.into_int()? / d)
            }
            BinOp::Mod => {
                let d = b.into_int()?;
                if d == 0 {
                    return Err(CspmError::eval("modulo by zero"));
                }
                Value::Int(a.into_int()?.rem_euclid(d))
            }
            BinOp::Eq => Value::Bool(a == b),
            BinOp::Ne => Value::Bool(a != b),
            BinOp::Lt => Value::Bool(a.into_int()? < b.into_int()?),
            BinOp::Le => Value::Bool(a.into_int()? <= b.into_int()?),
            BinOp::Gt => Value::Bool(a.into_int()? > b.into_int()?),
            BinOp::Ge => Value::Bool(a.into_int()? >= b.into_int()?),
            BinOp::Cat => {
                let mut s = a.into_seq()?;
                s.extend(b.into_seq()?);
                Value::Seq(s)
            }
            BinOp::And | BinOp::Or => unreachable!("handled above"),
        })
    }

    fn builtin(&mut self, name: &str, mut args: Vec<Value>) -> Result<Value, CspmError> {
        let arity = args.len();
        let wrong = |n: usize| {
            Err::<Value, _>(CspmError::eval(format!(
                "builtin `{name}` expects {n} argument(s), got {arity}"
            )))
        };
        match (name, arity) {
            ("union", 2) => {
                let b = args.pop().expect("arity checked").into_set()?;
                let mut a = args.pop().expect("arity checked").into_set()?;
                a.extend(b);
                Ok(Value::Set(a))
            }
            ("inter", 2) => {
                let b = args.pop().expect("arity checked").into_set()?;
                let a = args.pop().expect("arity checked").into_set()?;
                Ok(Value::Set(a.intersection(&b).cloned().collect()))
            }
            ("diff", 2) => {
                let b = args.pop().expect("arity checked").into_set()?;
                let a = args.pop().expect("arity checked").into_set()?;
                Ok(Value::Set(a.difference(&b).cloned().collect()))
            }
            ("member", 2) => {
                let s = args.pop().expect("arity checked").into_set()?;
                let x = args.pop().expect("arity checked");
                Ok(Value::Bool(s.contains(&x)))
            }
            ("card", 1) => Ok(Value::Int(
                args.pop().expect("arity checked").into_set()?.len() as i64,
            )),
            ("empty", 1) => Ok(Value::Bool(
                args.pop().expect("arity checked").into_set()?.is_empty(),
            )),
            ("head", 1) => {
                let s = args.pop().expect("arity checked").into_seq()?;
                s.first()
                    .cloned()
                    .ok_or_else(|| CspmError::eval("head of empty sequence"))
            }
            ("tail", 1) => {
                let mut s = args.pop().expect("arity checked").into_seq()?;
                if s.is_empty() {
                    return Err(CspmError::eval("tail of empty sequence"));
                }
                s.remove(0);
                Ok(Value::Seq(s))
            }
            ("length", 1) => Ok(Value::Int(
                args.pop().expect("arity checked").into_seq()?.len() as i64,
            )),
            ("elem", 2) => {
                let s = args.pop().expect("arity checked").into_seq()?;
                let x = args.pop().expect("arity checked");
                Ok(Value::Bool(s.contains(&x)))
            }
            ("cat", 2) => {
                let b = args.pop().expect("arity checked").into_seq()?;
                let mut a = args.pop().expect("arity checked").into_seq()?;
                a.extend(b);
                Ok(Value::Seq(a))
            }
            ("set", 1) => {
                let s = args.pop().expect("arity checked").into_seq()?;
                Ok(Value::Set(s.into_iter().collect()))
            }
            ("union" | "inter" | "diff" | "member" | "cat" | "elem", _) => wrong(2),
            ("card" | "empty" | "head" | "tail" | "length" | "set", _) => wrong(1),
            _ => Err(CspmError::eval(format!("unknown function `{name}`"))),
        }
    }

    // ---- events ----------------------------------------------------------

    /// Enumerate the completions of an event pattern: the concrete events it
    /// matches, each with the variable bindings its `?` fields produce.
    ///
    /// With `partial_ok`, trailing unspecified fields range over their whole
    /// domain (used for `{| c |}` production sets); otherwise every channel
    /// field must be matched by the pattern.
    fn completions(
        &mut self,
        pat: &EventPattern,
        scopes: &mut Vec<Bindings>,
        partial_ok: bool,
    ) -> Result<Vec<(EventId, Bindings)>, CspmError> {
        let domains = self.channel_domains(&pat.channel)?;
        let mut out = Vec::new();
        let channel = pat.channel.clone();
        self.complete_fields(
            &channel,
            &domains,
            0,
            &pat.fields,
            0,
            Vec::new(),
            Bindings::new(),
            partial_ok,
            scopes,
            &mut out,
        )?;
        Ok(out)
    }

    #[allow(clippy::too_many_arguments)]
    fn complete_fields(
        &mut self,
        channel: &str,
        domains: &[Vec<Value>],
        field_idx: usize,
        pats: &[FieldPat],
        pat_idx: usize,
        values: Vec<Value>,
        binds: Bindings,
        partial_ok: bool,
        scopes: &mut Vec<Bindings>,
        out: &mut Vec<(EventId, Bindings)>,
    ) -> Result<(), CspmError> {
        if field_idx == domains.len() {
            if pat_idx < pats.len() {
                return Err(CspmError::eval(format!(
                    "too many fields for channel `{channel}`"
                )));
            }
            let event = self.intern_event(channel, &values);
            out.push((event, binds));
            return Ok(());
        }
        let domain = domains[field_idx].clone();
        match pats.get(pat_idx) {
            None => {
                if !partial_ok {
                    return Err(CspmError::eval(format!(
                        "event on channel `{channel}` is missing fields"
                    )));
                }
                for v in domain {
                    let mut vs = values.clone();
                    vs.push(v);
                    self.complete_fields(
                        channel,
                        domains,
                        field_idx + 1,
                        pats,
                        pat_idx,
                        vs,
                        binds.clone(),
                        partial_ok,
                        scopes,
                        out,
                    )?;
                }
                Ok(())
            }
            Some(FieldPat::Dot(e)) | Some(FieldPat::Output(e)) => {
                scopes.push(binds.clone());
                let v = self.eval(e, scopes);
                scopes.pop();
                let v = v?;
                // A bare constructor with payload: consume following pattern
                // fields as its payload components.
                if let Value::CtorRef { name: ctor, arity } = v {
                    return self.complete_ctor(
                        channel, domains, field_idx, pats, pat_idx, values, binds, partial_ok,
                        scopes, out, ctor, arity,
                    );
                }
                if !domain.contains(&v) {
                    return Err(CspmError::eval(format!(
                        "value is not in the domain of field {field_idx} of channel `{channel}`"
                    )));
                }
                let mut vs = values;
                vs.push(v);
                self.complete_fields(
                    channel,
                    domains,
                    field_idx + 1,
                    pats,
                    pat_idx + 1,
                    vs,
                    binds,
                    partial_ok,
                    scopes,
                    out,
                )
            }
            Some(FieldPat::Input { var, restrict }) => {
                let allowed: Option<BTreeSet<Value>> = match restrict {
                    Some(r) => {
                        scopes.push(binds.clone());
                        let v = self.eval(r, scopes);
                        scopes.pop();
                        Some(v?.into_set()?)
                    }
                    None => None,
                };
                for v in domain {
                    if let Some(allowed) = &allowed {
                        if !allowed.contains(&v) {
                            continue;
                        }
                    }
                    let mut vs = values.clone();
                    vs.push(v.clone());
                    let mut bs = binds.clone();
                    bs.push((var.clone(), v));
                    self.complete_fields(
                        channel,
                        domains,
                        field_idx + 1,
                        pats,
                        pat_idx + 1,
                        vs,
                        bs,
                        partial_ok,
                        scopes,
                        out,
                    )?;
                }
                Ok(())
            }
        }
    }

    /// Handle `c.Ctor.p1.p2` where `Ctor` is a payload-carrying constructor
    /// of the channel field's datatype: the next `arity` pattern fields form
    /// the payload.
    #[allow(clippy::too_many_arguments)]
    fn complete_ctor(
        &mut self,
        channel: &str,
        domains: &[Vec<Value>],
        field_idx: usize,
        pats: &[FieldPat],
        pat_idx: usize,
        values: Vec<Value>,
        binds: Bindings,
        partial_ok: bool,
        scopes: &mut Vec<Bindings>,
        out: &mut Vec<(EventId, Bindings)>,
        ctor: String,
        arity: usize,
    ) -> Result<(), CspmError> {
        let payload_types = self
            .ctor_fields
            .get(&ctor)
            .cloned()
            .ok_or_else(|| CspmError::eval(format!("unknown constructor `{ctor}`")))?;
        debug_assert_eq!(payload_types.len(), arity);
        // Enumerate payload combinations compatible with the next pattern
        // fields.
        let mut partials: Vec<(Vec<Value>, Bindings)> = vec![(Vec::new(), binds)];
        let mut used = 0usize;
        for (slot, ty) in payload_types.iter().enumerate() {
            let domain = self.type_expr_domain(ty)?;
            let pat = pats.get(pat_idx + 1 + slot);
            let mut next: Vec<(Vec<Value>, Bindings)> = Vec::new();
            match pat {
                None => {
                    if !partial_ok {
                        return Err(CspmError::eval(format!(
                            "constructor `{ctor}` is missing payload fields"
                        )));
                    }
                    for (payload, bs) in &partials {
                        for v in &domain {
                            let mut p = payload.clone();
                            p.push(v.clone());
                            next.push((p, bs.clone()));
                        }
                    }
                }
                Some(FieldPat::Dot(e)) | Some(FieldPat::Output(e)) => {
                    used += 1;
                    for (payload, bs) in &partials {
                        scopes.push(bs.clone());
                        let v = self.eval(e, scopes);
                        scopes.pop();
                        let v = v?;
                        if !domain.contains(&v) {
                            return Err(CspmError::eval(format!(
                                "payload value not in domain of `{ctor}` field {slot}"
                            )));
                        }
                        let mut p = payload.clone();
                        p.push(v);
                        next.push((p, bs.clone()));
                    }
                }
                Some(FieldPat::Input { var, restrict }) => {
                    used += 1;
                    for (payload, bs) in &partials {
                        let allowed: Option<BTreeSet<Value>> = match restrict {
                            Some(r) => {
                                scopes.push(bs.clone());
                                let v = self.eval(r, scopes);
                                scopes.pop();
                                Some(v?.into_set()?)
                            }
                            None => None,
                        };
                        for v in &domain {
                            if let Some(allowed) = &allowed {
                                if !allowed.contains(v) {
                                    continue;
                                }
                            }
                            let mut p = payload.clone();
                            p.push(v.clone());
                            let mut b2 = bs.clone();
                            b2.push((var.clone(), v.clone()));
                            next.push((p, b2));
                        }
                    }
                }
            }
            partials = next;
        }
        for (payload, bs) in partials {
            let value = Value::Data(ctor.clone(), payload);
            if !domains[field_idx].contains(&value) {
                return Err(CspmError::eval(format!(
                    "`{ctor}` value is not in the domain of field {field_idx} of `{channel}`"
                )));
            }
            let mut vs = values.clone();
            vs.push(value);
            self.complete_fields(
                channel,
                domains,
                field_idx + 1,
                pats,
                pat_idx + 1 + used,
                vs,
                bs,
                partial_ok,
                scopes,
                out,
            )?;
        }
        Ok(())
    }

    fn value_to_event_set(&mut self, v: &Value) -> Result<EventSet, CspmError> {
        let Value::Set(items) = v else {
            return Err(CspmError::eval(format!(
                "expected a set of events, found a {}",
                v.kind_name()
            )));
        };
        let mut out = Vec::with_capacity(items.len());
        for item in items {
            match item {
                Value::Event(e) => out.push(*e),
                Value::Channel(c) => out.extend(self.channel_events(c)?),
                other => {
                    return Err(CspmError::eval(format!(
                        "synchronisation/hiding sets may contain only events, found a {}",
                        other.kind_name()
                    )));
                }
            }
        }
        Ok(out.into_iter().collect())
    }

    fn rename_map(
        &mut self,
        pairs: &[(EventPattern, EventPattern)],
        scopes: &mut Vec<Bindings>,
    ) -> Result<RenameMap, CspmError> {
        let mut map = RenameMap::new();
        for (from, to) in pairs {
            let froms = self.completions(from, scopes, true)?;
            let tos = self.completions(to, scopes, true)?;
            if froms.len() != tos.len() {
                return Err(CspmError::eval(format!(
                    "renaming `{}` <- `{}` relates {} events to {}",
                    from.channel,
                    to.channel,
                    froms.len(),
                    tos.len()
                )));
            }
            // CSPm renaming `P[[a <- b]]` maps event a (performed by P) to b.
            for ((a, _), (b, _)) in froms.into_iter().zip(tos) {
                map.insert(a, b);
            }
        }
        Ok(map)
    }
}

/// Append the flattened event-name component(s) for `v` to `out`.
fn event_component(v: &Value, out: &mut String) {
    match v {
        Value::Int(n) => {
            let _ = std::fmt::write(out, format_args!("{n}"));
        }
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Data(ctor, fields) => {
            out.push_str(ctor);
            for f in fields {
                out.push('.');
                event_component(f, out);
            }
        }
        Value::Tuple(items) | Value::Seq(items) => {
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push('.');
                }
                event_component(item, out);
            }
        }
        Value::Channel(c) => out.push_str(c),
        Value::CtorRef { name, .. } => out.push_str(name),
        Value::Set(_) | Value::Event(_) | Value::Process(_) => out.push('?'),
    }
}

/// Cartesian product of the given domains (empty product = one empty row).
fn cartesian(domains: &[Vec<Value>]) -> Vec<Vec<Value>> {
    let mut rows: Vec<Vec<Value>> = vec![Vec::new()];
    for d in domains {
        let mut next = Vec::with_capacity(rows.len() * d.len());
        for row in &rows {
            for v in d {
                let mut r = row.clone();
                r.push(v.clone());
                next.push(r);
            }
        }
        rows = next;
    }
    rows
}

/// Evaluate every zero-parameter definition in the module.
pub(crate) fn load_module(
    module: &Module,
) -> Result<(Evaluator, BTreeMap<String, Value>), CspmError> {
    let mut ev = Evaluator::new(module)?;
    let mut named = BTreeMap::new();
    for decl in &module.decls {
        if let Decl::Definition { name, params, .. } = decl {
            if params.is_empty() {
                let v = ev.eval_call(name, Vec::new())?;
                ev.drain_pending()?;
                named.insert(name.clone(), v);
            }
        }
    }
    Ok((ev, named))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_module;

    fn load(src: &str) -> (Evaluator, BTreeMap<String, Value>) {
        let m = parse_module(&lex(src).unwrap()).unwrap();
        load_module(&m).unwrap()
    }

    fn load_err(src: &str) -> CspmError {
        let m = parse_module(&lex(src).unwrap()).unwrap();
        match load_module(&m) {
            Ok(_) => panic!("expected an error"),
            Err(e) => e,
        }
    }

    #[test]
    fn constants_evaluate() {
        let (_, named) = load("N = 2 + 3 * 4");
        assert_eq!(named["N"], Value::Int(14));
    }

    #[test]
    fn sets_and_builtins() {
        let (_, named) = load(
            "A = {1, 2, 3}\n\
             B = {2..4}\n\
             U = union(A, B)\n\
             I = inter(A, B)\n\
             D = diff(A, B)\n\
             C = card(U)\n\
             M = member(3, A)",
        );
        assert_eq!(named["C"], Value::Int(4));
        assert_eq!(named["M"], Value::Bool(true));
        assert_eq!(
            named["I"],
            Value::Set([Value::Int(2), Value::Int(3)].into_iter().collect())
        );
        assert_eq!(
            named["D"],
            Value::Set([Value::Int(1)].into_iter().collect())
        );
    }

    #[test]
    fn sequences_and_builtins() {
        let (_, named) = load("S = <1, 2, 3>\nH = head(S)\nT = tail(S)\nL = length(S)");
        assert_eq!(named["H"], Value::Int(1));
        assert_eq!(named["L"], Value::Int(3));
        assert_eq!(named["T"], Value::Seq(vec![Value::Int(2), Value::Int(3)]));
    }

    #[test]
    fn paper_sp02_elaborates() {
        let (ev, named) = load(
            "datatype MsgT = reqSw | rptSw\n\
             channel send, rec : MsgT\n\
             SP02 = rec.reqSw -> send.rptSw -> SP02",
        );
        let Value::Process(p) = &named["SP02"] else {
            panic!("SP02 must be a process");
        };
        let lts = csp::Lts::build(p.clone(), &ev.defs, 1000).unwrap();
        assert_eq!(lts.state_count(), 2);
        assert!(ev.alphabet.lookup("rec.reqSw").is_some());
        assert!(ev.alphabet.lookup("send.rptSw").is_some());
    }

    #[test]
    fn input_binds_and_expands_to_choice() {
        let (ev, named) = load(
            "channel c : {0..2}\n\
             channel d : {0..2}\n\
             P = c?x -> d!x -> STOP",
        );
        let Value::Process(p) = &named["P"] else {
            panic!()
        };
        let lts = csp::Lts::build(p.clone(), &ev.defs, 1000).unwrap();
        // initial state offers c.0, c.1, c.2
        assert_eq!(lts.edges(lts.initial()).len(), 3);
    }

    #[test]
    fn input_restriction_limits_domain() {
        let (ev, named) = load(
            "channel c : {0..5}\n\
             P = c?x:{0..1} -> STOP",
        );
        let Value::Process(p) = &named["P"] else {
            panic!()
        };
        let lts = csp::Lts::build(p.clone(), &ev.defs, 1000).unwrap();
        assert_eq!(lts.edges(lts.initial()).len(), 2);
    }

    #[test]
    fn parameterised_process_instantiates_per_argument() {
        let (ev, named) = load(
            "channel c : {0..3}\n\
             P(n) = n < 3 & c.n -> P(n + 1)\n\
             Q = P(0)",
        );
        let Value::Process(p) = &named["Q"] else {
            panic!()
        };
        let lts = csp::Lts::build(p.clone(), &ev.defs, 1000).unwrap();
        // c.0 c.1 c.2 then STOP
        assert_eq!(lts.state_count(), 4);
    }

    #[test]
    fn guard_false_does_not_evaluate_body() {
        // If the guard evaluated its body, P(0) would recurse forever through
        // P(-1), P(-2), ….
        let (ev, named) = load(
            "channel c : {0..1}\n\
             P(n) = n >= 0 & c.0 -> P(n - 1)\n\
             Q = P(0)",
        );
        let Value::Process(p) = &named["Q"] else {
            panic!()
        };
        let lts = csp::Lts::build(p.clone(), &ev.defs, 1000).unwrap();
        // Var(Q) --c.0--> Var(P(-1)) which is STOP-like (guard false).
        assert_eq!(lts.state_count(), 2);
        assert_eq!(lts.transition_count(), 1);
    }

    #[test]
    fn datatype_payload_values() {
        let (_, named) = load(
            "datatype Agent = alice | bob\n\
             datatype Packet = Msg1.Agent | Done\n\
             V = Msg1.alice\n\
             S = card({ Msg1.alice, Msg1.bob, Done })",
        );
        assert_eq!(
            named["V"],
            Value::Data("Msg1".into(), vec![Value::Data("alice".into(), vec![])])
        );
        assert_eq!(named["S"], Value::Int(3));
    }

    #[test]
    fn channel_with_payload_ctor_events() {
        let (ev, named) = load(
            "datatype Agent = alice | bob\n\
             datatype Packet = Msg1.Agent | Done\n\
             channel comm : Packet\n\
             P = comm.Msg1.alice -> STOP\n\
             Q = comm?p -> STOP",
        );
        let Value::Process(p) = &named["P"] else {
            panic!()
        };
        let lts = csp::Lts::build(p.clone(), &ev.defs, 100).unwrap();
        assert_eq!(lts.edges(lts.initial()).len(), 1);
        assert!(ev.alphabet.lookup("comm.Msg1.alice").is_some());
        let Value::Process(q) = &named["Q"] else {
            panic!()
        };
        let lts = csp::Lts::build(q.clone(), &ev.defs, 100).unwrap();
        // Msg1.alice, Msg1.bob, Done
        assert_eq!(lts.edges(lts.initial()).len(), 3);
    }

    #[test]
    fn productions_set() {
        let (_, named) = load(
            "channel c : {0..2}\n\
             channel d\n\
             S = card({| c |})\n\
             T = card({| c, d |})",
        );
        assert_eq!(named["S"], Value::Int(3));
        assert_eq!(named["T"], Value::Int(4));
    }

    #[test]
    fn parallel_composition_synchronises() {
        let (ev, named) = load(
            "datatype MsgT = reqSw | rptSw\n\
             channel send, rec : MsgT\n\
             VMG = send.reqSw -> rec.rptSw -> VMG\n\
             ECU = send?m -> rec.rptSw -> ECU\n\
             SYSTEM = VMG [| {| send, rec |} |] ECU",
        );
        let Value::Process(p) = &named["SYSTEM"] else {
            panic!()
        };
        let lts = csp::Lts::build(p.clone(), &ev.defs, 1000).unwrap();
        // Var(SYSTEM), the mid-exchange state, and the recursive
        // Parallel(Var VMG, Var ECU) state.
        assert_eq!(lts.state_count(), 3);
        assert_eq!(lts.transition_count(), 3);
    }

    #[test]
    fn replicated_choice() {
        let (ev, named) = load(
            "channel c : {0..3}\n\
             P = [] x : {0..3} @ c.x -> STOP",
        );
        let Value::Process(p) = &named["P"] else {
            panic!()
        };
        let lts = csp::Lts::build(p.clone(), &ev.defs, 100).unwrap();
        assert_eq!(lts.edges(lts.initial()).len(), 4);
    }

    #[test]
    fn hiding_makes_taus() {
        let (ev, named) = load(
            "channel c : {0..1}\n\
             channel d\n\
             P = c.0 -> d -> STOP\n\
             Q = P \\ {| c |}",
        );
        let Value::Process(q) = &named["Q"] else {
            panic!()
        };
        let lts = csp::Lts::build(q.clone(), &ev.defs, 100).unwrap();
        let edges = lts.edges(lts.initial());
        assert!(edges[0].0.is_tau());
    }

    #[test]
    fn renaming_full_events() {
        let (ev, named) = load(
            "channel c, d : {0..1}\n\
             P = c.0 -> STOP\n\
             Q = P [[ c.0 <- d.1 ]]",
        );
        let Value::Process(q) = &named["Q"] else {
            panic!()
        };
        let lts = csp::Lts::build(q.clone(), &ev.defs, 100).unwrap();
        let (label, _) = lts.edges(lts.initial())[0];
        assert_eq!(ev.alphabet.name(label.event().unwrap()), "d.1");
    }

    #[test]
    fn channel_wide_renaming() {
        let (ev, named) = load(
            "channel c, d : {0..1}\n\
             P = c.0 -> c.1 -> STOP\n\
             Q = P [[ c <- d ]]",
        );
        let Value::Process(q) = &named["Q"] else {
            panic!()
        };
        let lts = csp::Lts::build(q.clone(), &ev.defs, 100).unwrap();
        let (label, _) = lts.edges(lts.initial())[0];
        assert_eq!(ev.alphabet.name(label.event().unwrap()), "d.0");
    }

    #[test]
    fn if_then_else_and_let() {
        let (_, named) = load("X = let y = 3 within if y > 2 then y * 2 else 0");
        assert_eq!(named["X"], Value::Int(6));
    }

    #[test]
    fn unknown_name_errors() {
        let err = load_err("X = nosuchthing");
        assert!(matches!(err, CspmError::Eval { .. }));
    }

    #[test]
    fn arity_mismatch_errors() {
        let err = load_err("P(x) = STOP\nQ = P(1, 2)");
        assert!(err.to_string().contains("expects 1"));
    }

    #[test]
    fn division_by_zero_errors() {
        let err = load_err("X = 1 / 0");
        assert!(err.to_string().contains("division"));
    }

    #[test]
    fn events_builtin_covers_all_channels() {
        let (_, named) = load(
            "channel c : {0..1}\n\
             channel d\n\
             N = card(Events)",
        );
        assert_eq!(named["N"], Value::Int(3));
    }

    #[test]
    fn nametype_alias() {
        let (_, named) = load(
            "nametype Small = {0..2}\n\
             channel c : Small\n\
             N = card({| c |})",
        );
        assert_eq!(named["N"], Value::Int(3));
    }

    #[test]
    fn sequential_composition_and_skip() {
        let (ev, named) = load(
            "channel a, b\n\
             P = (a -> SKIP) ; b -> STOP",
        );
        let Value::Process(p) = &named["P"] else {
            panic!()
        };
        let lts = csp::Lts::build(p.clone(), &ev.defs, 100).unwrap();
        // a, tau (tick of SKIP converted), b
        let a = ev.alphabet.lookup("a").unwrap();
        let b = ev.alphabet.lookup("b").unwrap();
        assert!(csp::traces::has_trace(&lts, &[a, b]));
    }

    #[test]
    fn mutual_recursion() {
        let (ev, named) = load(
            "channel a, b\n\
             P = a -> Q\n\
             Q = b -> P",
        );
        let Value::Process(p) = &named["P"] else {
            panic!()
        };
        let lts = csp::Lts::build(p.clone(), &ev.defs, 100).unwrap();
        assert_eq!(lts.state_count(), 2);
    }
}

#[cfg(test)]
mod comprehension_tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_module;

    fn load(src: &str) -> std::collections::BTreeMap<String, Value> {
        let m = parse_module(&lex(src).unwrap()).unwrap();
        load_module(&m).unwrap().1
    }

    #[test]
    fn simple_comprehension_maps_the_head() {
        let named = load("S = { x * 2 | x <- {1, 2, 3} }");
        assert_eq!(
            named["S"],
            Value::Set([2, 4, 6].map(Value::Int).into_iter().collect())
        );
    }

    #[test]
    fn guards_filter() {
        let named = load("S = { x | x <- {0..9}, x % 2 == 0, x > 2 }");
        assert_eq!(
            named["S"],
            Value::Set([4, 6, 8].map(Value::Int).into_iter().collect())
        );
    }

    #[test]
    fn multiple_generators_cross_product() {
        let named = load("S = card({ (x, y) | x <- {0..2}, y <- {0..2}, x < y })");
        assert_eq!(named["S"], Value::Int(3));
    }

    #[test]
    fn comprehension_over_events() {
        let named = load(
            "channel c : {0..3}\n\
             S = card({ e | e <- {| c |} })",
        );
        assert_eq!(named["S"], Value::Int(4));
    }

    #[test]
    fn comprehension_usable_in_process_position() {
        let named = load(
            "channel c : {0..5}\n\
             P = [] x : { y | y <- {0..5}, y % 3 == 0 } @ c.x -> STOP",
        );
        assert!(matches!(named["P"], Value::Process(_)));
    }
}

#[cfg(test)]
mod interrupt_timeout_tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_module;

    fn load(src: &str) -> (Evaluator, std::collections::BTreeMap<String, Value>) {
        let m = parse_module(&lex(src).unwrap()).unwrap();
        load_module(&m).unwrap()
    }

    #[test]
    fn interrupt_elaborates_and_behaves() {
        let (ev, named) = load(
            "channel a, b, k\n\
             P = (a -> b -> STOP) /\\ (k -> STOP)",
        );
        let Value::Process(p) = &named["P"] else {
            panic!()
        };
        let lts = csp::Lts::build(p.clone(), &ev.defs, 1000).unwrap();
        let a = ev.alphabet.lookup("a").unwrap();
        let b = ev.alphabet.lookup("b").unwrap();
        let k = ev.alphabet.lookup("k").unwrap();
        assert!(csp::traces::has_trace(&lts, &[a, k]));
        assert!(csp::traces::has_trace(&lts, &[a, b]));
        assert!(!csp::traces::has_trace(&lts, &[k, a]));
    }

    #[test]
    fn timeout_elaborates_and_behaves() {
        let (ev, named) = load(
            "channel a, b\n\
             P = (a -> STOP) [> (b -> STOP)",
        );
        let Value::Process(p) = &named["P"] else {
            panic!()
        };
        let lts = csp::Lts::build(p.clone(), &ev.defs, 1000).unwrap();
        let a = ev.alphabet.lookup("a").unwrap();
        let b = ev.alphabet.lookup("b").unwrap();
        assert!(csp::traces::has_trace(&lts, &[a]));
        assert!(csp::traces::has_trace(&lts, &[b]));
    }

    #[test]
    fn precedence_prefix_binds_tighter_than_interrupt() {
        // a -> STOP /\ k -> STOP must parse as (a->STOP) /\ (k->STOP).
        let (ev, named) = load("channel a, k\nP = a -> STOP /\\ k -> STOP");
        let Value::Process(p) = &named["P"] else {
            panic!()
        };
        let lts = csp::Lts::build(p.clone(), &ev.defs, 1000).unwrap();
        let k = ev.alphabet.lookup("k").unwrap();
        assert!(csp::traces::has_trace(&lts, &[k]));
    }
}
