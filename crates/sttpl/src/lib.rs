//! `sttpl` — a small, logic-less template engine.
//!
//! The paper's model extractor uses ANTLR's StringTemplate to keep
//! translation logic separate from the textual shape of the generated CSPm
//! (§IV-C). This crate is the Rust stand-in: templates are plain text with
//! `$…$` actions, rendered against a tree of [`Value`]s.
//!
//! Supported actions:
//!
//! * `$name$` — insert an attribute (dotted paths allowed: `$msg.name$`);
//! * `$items:{x | body}$` — map a list attribute through an inline
//!   sub-template, binding each element to `x`;
//! * `… ; separator=", "$` — join a list (with or without a sub-template)
//!   using a separator;
//! * `$if(name)$ … $else$ … $endif$` — conditional on attribute truthiness;
//! * `$$` — a literal dollar sign.
//!
//! # Example
//!
//! ```
//! use sttpl::{Template, Value};
//!
//! let t = Template::parse("channel $name$ : $fields; separator=\".\"$")?;
//! let mut ctx = Value::map();
//! ctx.set("name", "send");
//! ctx.set("fields", Value::from_iter(["MsgT", "Byte"]));
//! assert_eq!(t.render(&ctx)?, "channel send : MsgT.Byte");
//! # Ok::<(), sttpl::TemplateError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

/// Errors from parsing or rendering a template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemplateError {
    /// Malformed template text.
    Parse(String),
    /// A rendering failure (missing attribute used strictly, bad types).
    Render(String),
}

impl fmt::Display for TemplateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemplateError::Parse(m) => write!(f, "template parse error: {m}"),
            TemplateError::Render(m) => write!(f, "template render error: {m}"),
        }
    }
}

impl std::error::Error for TemplateError {}

/// A value passed to template rendering.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A text value.
    Str(String),
    /// A boolean (used by `$if$`).
    Bool(bool),
    /// A list of values.
    List(Vec<Value>),
    /// A string-keyed map (attribute access via `.`).
    Map(BTreeMap<String, Value>),
}

impl Value {
    /// An empty map value.
    pub fn map() -> Value {
        Value::Map(BTreeMap::new())
    }

    /// Insert an attribute into a map value.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not a map.
    pub fn set(&mut self, key: &str, value: impl Into<Value>) -> &mut Value {
        let Value::Map(m) = self else {
            panic!("Value::set on a non-map value");
        };
        m.insert(key.to_owned(), value.into());
        self
    }

    /// Attribute lookup (single path segment).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(m) => m.get(key),
            _ => None,
        }
    }

    /// Truthiness for `$if$`: false for `Bool(false)`, empty strings, empty
    /// lists and empty maps.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Str(s) => !s.is_empty(),
            Value::List(l) => !l.is_empty(),
            Value::Map(m) => !m.is_empty(),
        }
    }

    fn render_scalar(&self) -> Result<String, TemplateError> {
        match self {
            Value::Str(s) => Ok(s.clone()),
            Value::Bool(b) => Ok(b.to_string()),
            Value::List(items) => {
                let parts: Result<Vec<_>, _> = items.iter().map(Value::render_scalar).collect();
                Ok(parts?.join(""))
            }
            Value::Map(_) => Err(TemplateError::Render(
                "cannot render a map directly; use attribute access".into(),
            )),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Str(n.to_string())
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::List(v)
    }
}

impl<'a> FromIterator<&'a str> for Value {
    fn from_iter<I: IntoIterator<Item = &'a str>>(iter: I) -> Value {
        Value::List(iter.into_iter().map(Value::from).collect())
    }
}

impl FromIterator<Value> for Value {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Value {
        Value::List(iter.into_iter().collect())
    }
}

/// A parsed template, ready to render.
#[derive(Debug, Clone)]
pub struct Template {
    nodes: Vec<Node>,
}

#[derive(Debug, Clone)]
enum Node {
    Text(String),
    /// `$path$` or `$path; separator=", "$` or `$path:{x | body}$`.
    Subst {
        path: Vec<String>,
        lambda: Option<(String, Vec<Node>)>,
        separator: Option<String>,
    },
    If {
        path: Vec<String>,
        negated: bool,
        then: Vec<Node>,
        els: Vec<Node>,
    },
}

impl Template {
    /// Parse template text.
    ///
    /// # Errors
    ///
    /// [`TemplateError::Parse`] on unbalanced `$`, `$if$` without `$endif$`,
    /// or malformed actions.
    pub fn parse(text: &str) -> Result<Template, TemplateError> {
        let mut parser = TplParser {
            chars: text.chars().collect(),
            i: 0,
            last_stop: String::new(),
        };
        let nodes = parser.nodes(&[])?;
        if parser.i < parser.chars.len() {
            return Err(TemplateError::Parse("unexpected trailing `$end$`".into()));
        }
        Ok(Template { nodes })
    }

    /// Render against a context (normally a [`Value::Map`]).
    ///
    /// # Errors
    ///
    /// [`TemplateError::Render`] if an action references a missing attribute
    /// or applies list operations to a non-list.
    pub fn render(&self, ctx: &Value) -> Result<String, TemplateError> {
        let mut out = String::new();
        render_nodes(&self.nodes, ctx, &mut out)?;
        Ok(out)
    }
}

struct TplParser {
    chars: Vec<char>,
    i: usize,
    last_stop: String,
}

impl TplParser {
    /// Parse nodes until one of `stop` keywords (inside `$…$`) or EOF.
    /// Returns leaving the stop-action *consumed* and recorded via `last_stop`.
    fn nodes(&mut self, stop: &[&str]) -> Result<Vec<Node>, TemplateError> {
        let mut nodes = Vec::new();
        let mut text = String::new();
        while self.i < self.chars.len() {
            let c = self.chars[self.i];
            if c != '$' {
                text.push(c);
                self.i += 1;
                continue;
            }
            // `$$` escape.
            if self.chars.get(self.i + 1) == Some(&'$') {
                text.push('$');
                self.i += 2;
                continue;
            }
            // An action.
            let action = self.read_action()?;
            let trimmed = action.trim();
            if stop.contains(&trimmed) {
                if !text.is_empty() {
                    nodes.push(Node::Text(std::mem::take(&mut text)));
                }
                self.last_stop = trimmed.to_owned();
                return Ok(nodes);
            }
            if !text.is_empty() {
                nodes.push(Node::Text(std::mem::take(&mut text)));
            }
            nodes.push(self.action_node(trimmed)?);
        }
        if !stop.is_empty() {
            return Err(TemplateError::Parse(format!(
                "missing closing action (expected one of {stop:?})"
            )));
        }
        if !text.is_empty() {
            nodes.push(Node::Text(text));
        }
        Ok(nodes)
    }

    fn read_action(&mut self) -> Result<String, TemplateError> {
        debug_assert_eq!(self.chars[self.i], '$');
        self.i += 1;
        let mut action = String::new();
        let mut depth = 0usize;
        while self.i < self.chars.len() {
            let c = self.chars[self.i];
            if c == '{' {
                depth += 1;
            } else if c == '}' && depth > 0 {
                depth -= 1;
            } else if c == '$' && depth == 0 {
                self.i += 1;
                return Ok(action);
            }
            action.push(c);
            self.i += 1;
        }
        Err(TemplateError::Parse("unterminated `$` action".into()))
    }

    fn action_node(&mut self, action: &str) -> Result<Node, TemplateError> {
        if let Some(rest) = action.strip_prefix("if(") {
            let inner = rest
                .strip_suffix(')')
                .ok_or_else(|| TemplateError::Parse("malformed `$if(…)$`".into()))?;
            let (negated, path_text) = match inner.strip_prefix('!') {
                Some(p) => (true, p),
                None => (false, inner),
            };
            let path = parse_path(path_text)?;
            let then = self.nodes(&["else", "endif"])?;
            let els = if self.last_stop == "else" {
                self.nodes(&["endif"])?
            } else {
                Vec::new()
            };
            return Ok(Node::If {
                path,
                negated,
                then,
                els,
            });
        }

        // Split off `; separator="…"`.
        let (main, separator) = match action.split_once(';') {
            Some((m, opts)) => {
                let opts = opts.trim();
                let sep = opts
                    .strip_prefix("separator=")
                    .ok_or_else(|| TemplateError::Parse(format!("unknown option `{opts}`")))?
                    .trim()
                    .trim_matches('"')
                    .to_owned();
                (m.trim(), Some(unescape(&sep)))
            }
            None => (action, None),
        };

        // Lambda application `path:{x | body}`?
        if let Some((path_text, lambda_text)) = main.split_once(":{") {
            let lambda_text = lambda_text
                .strip_suffix('}')
                .ok_or_else(|| TemplateError::Parse("unterminated `{…}` lambda".into()))?;
            let (var, body_text) = lambda_text
                .split_once('|')
                .ok_or_else(|| TemplateError::Parse("lambda needs `var | body`".into()))?;
            let body = Template::parse(body_text.strip_prefix(' ').unwrap_or(body_text))?;
            return Ok(Node::Subst {
                path: parse_path(path_text.trim())?,
                lambda: Some((var.trim().to_owned(), body.nodes)),
                separator,
            });
        }

        Ok(Node::Subst {
            path: parse_path(main)?,
            lambda: None,
            separator,
        })
    }
}

fn parse_path(text: &str) -> Result<Vec<String>, TemplateError> {
    if text.is_empty() {
        return Err(TemplateError::Parse("empty attribute path".into()));
    }
    Ok(text.split('.').map(str::to_owned).collect())
}

fn unescape(s: &str) -> String {
    s.replace("\\n", "\n").replace("\\t", "\t")
}

fn lookup<'a>(ctx: &'a Value, path: &[String]) -> Option<&'a Value> {
    let mut v = ctx;
    for seg in path {
        v = v.get(seg)?;
    }
    Some(v)
}

fn render_nodes(nodes: &[Node], ctx: &Value, out: &mut String) -> Result<(), TemplateError> {
    for node in nodes {
        match node {
            Node::Text(t) => out.push_str(t),
            Node::Subst {
                path,
                lambda,
                separator,
            } => {
                let Some(value) = lookup(ctx, path) else {
                    return Err(TemplateError::Render(format!(
                        "missing attribute `{}`",
                        path.join(".")
                    )));
                };
                match lambda {
                    Some((var, body)) => {
                        let Value::List(items) = value else {
                            return Err(TemplateError::Render(format!(
                                "attribute `{}` is not a list",
                                path.join(".")
                            )));
                        };
                        let mut parts = Vec::with_capacity(items.len());
                        for item in items {
                            let mut scope = match ctx {
                                Value::Map(m) => m.clone(),
                                _ => BTreeMap::new(),
                            };
                            scope.insert(var.clone(), item.clone());
                            let scope = Value::Map(scope);
                            let mut piece = String::new();
                            render_nodes(body, &scope, &mut piece)?;
                            parts.push(piece);
                        }
                        out.push_str(&parts.join(separator.as_deref().unwrap_or("")));
                    }
                    None => match (value, separator) {
                        (Value::List(items), Some(sep)) => {
                            let parts: Result<Vec<_>, _> =
                                items.iter().map(Value::render_scalar).collect();
                            out.push_str(&parts?.join(sep));
                        }
                        (v, _) => out.push_str(&v.render_scalar()?),
                    },
                }
            }
            Node::If {
                path,
                negated,
                then,
                els,
            } => {
                let truthy = lookup(ctx, path).is_some_and(Value::truthy);
                let cond = truthy != *negated;
                render_nodes(if cond { then } else { els }, ctx, out)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Value {
        let mut v = Value::map();
        v.set("name", "ECU");
        v.set("empty", "");
        v.set("flag", true);
        v.set("msgs", Value::from_iter(["reqSw", "rptSw"]));
        let mut m1 = Value::map();
        m1.set("name", "reqSw");
        m1.set("id", 100i64);
        let mut m2 = Value::map();
        m2.set("name", "rptSw");
        m2.set("id", 101i64);
        v.set("messages", Value::from_iter([m1, m2]));
        v
    }

    #[test]
    fn plain_substitution() {
        let t = Template::parse("Process $name$ = STOP").unwrap();
        assert_eq!(t.render(&ctx()).unwrap(), "Process ECU = STOP");
    }

    #[test]
    fn dollar_escape() {
        let t = Template::parse("cost: $$5").unwrap();
        assert_eq!(t.render(&ctx()).unwrap(), "cost: $5");
    }

    #[test]
    fn list_with_separator() {
        let t = Template::parse("datatype MsgT = $msgs; separator=\" | \"$").unwrap();
        assert_eq!(t.render(&ctx()).unwrap(), "datatype MsgT = reqSw | rptSw");
    }

    #[test]
    fn lambda_over_maps() {
        let t = Template::parse("$messages:{m | $m.name$/$m.id$}; separator=\", \"$").unwrap();
        assert_eq!(t.render(&ctx()).unwrap(), "reqSw/100, rptSw/101");
    }

    #[test]
    fn lambda_sees_outer_scope() {
        let t = Template::parse("$msgs:{m | $name$:$m$}; separator=\" \"$").unwrap();
        assert_eq!(t.render(&ctx()).unwrap(), "ECU:reqSw ECU:rptSw");
    }

    #[test]
    fn conditional_true_false() {
        let t = Template::parse("$if(flag)$yes$else$no$endif$").unwrap();
        assert_eq!(t.render(&ctx()).unwrap(), "yes");
        let t = Template::parse("$if(empty)$yes$else$no$endif$").unwrap();
        assert_eq!(t.render(&ctx()).unwrap(), "no");
        let t = Template::parse("$if(!empty)$yes$endif$").unwrap();
        assert_eq!(t.render(&ctx()).unwrap(), "yes");
    }

    #[test]
    fn conditional_on_missing_attribute_is_false() {
        let t = Template::parse("$if(ghost)$yes$else$no$endif$").unwrap();
        assert_eq!(t.render(&ctx()).unwrap(), "no");
    }

    #[test]
    fn missing_attribute_in_substitution_errors() {
        let t = Template::parse("$ghost$").unwrap();
        assert!(matches!(t.render(&ctx()), Err(TemplateError::Render(_))));
    }

    #[test]
    fn nested_conditionals() {
        let t = Template::parse("$if(flag)$a$if(flag)$b$endif$c$endif$").unwrap();
        assert_eq!(t.render(&ctx()).unwrap(), "abc");
    }

    #[test]
    fn separator_with_escapes() {
        let t = Template::parse("$msgs; separator=\"\\n\"$").unwrap();
        assert_eq!(t.render(&ctx()).unwrap(), "reqSw\nrptSw");
    }

    #[test]
    fn unterminated_action_is_a_parse_error() {
        assert!(matches!(
            Template::parse("hello $name"),
            Err(TemplateError::Parse(_))
        ));
    }

    #[test]
    fn missing_endif_is_a_parse_error() {
        assert!(matches!(
            Template::parse("$if(flag)$oops"),
            Err(TemplateError::Parse(_))
        ));
    }

    #[test]
    fn multiline_template() {
        let t = Template::parse(
            "$messages:{m | ON_$m.name$ = rec.$m.name$ -> SKIP}; separator=\"\\n\"$",
        )
        .unwrap();
        let out = t.render(&ctx()).unwrap();
        assert_eq!(
            out,
            "ON_reqSw = rec.reqSw -> SKIP\nON_rptSw = rec.rptSw -> SKIP"
        );
    }
}
