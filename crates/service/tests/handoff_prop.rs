//! The headline robustness property, as a property test: killing a worker
//! at an **arbitrary** point in its exploration never loses the job and
//! never changes the verdict. A sabotaged in-process worker checkpoints
//! after a proptest-chosen state budget and drops its connection without
//! reporting — indistinguishable from SIGKILL landing right after the
//! checkpoint write. The orchestrator must detect the death, reclaim the
//! job, and hand it to a healthy worker whose verdict lines are
//! byte-identical to an uninterrupted reference run — at 1 worker thread
//! and at 8.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use diag::json::Value;
use fdrlite::supervisor::RetryPolicy;
use proptest::prelude::*;
use service::http::client_request;
use service::server::{LauncherKind, Server, ServerConfig};

/// Sixty-five states under the paper-style interleaving — big enough that
/// every budget in the proptest range lands strictly mid-exploration.
const MODEL: &str = "\
channel a1, a2, a3, a4, b1, b2, b3, b4, c1, c2, c3, c4
PA = a1 -> a2 -> a3 -> a4 -> PA
PB = b1 -> b2 -> b3 -> b4 -> PB
PC = c1 -> c2 -> c3 -> c4 -> PC
SYS = PA ||| PB ||| PC
RUNALL = a1 -> RUNALL [] a2 -> RUNALL [] a3 -> RUNALL [] a4 -> RUNALL \
 [] b1 -> RUNALL [] b2 -> RUNALL [] b3 -> RUNALL [] b4 -> RUNALL \
 [] c1 -> RUNALL [] c2 -> RUNALL [] c3 -> RUNALL [] c4 -> RUNALL
assert RUNALL [T= SYS
assert SYS :[deadlock free]
";

const MANIFEST: &str = "[[job]]\nname = \"sys\"\nkind = \"check\"\nscript = \"m.csp\"\n";

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "svc-handoff-{tag}-{}-{:x}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn config(dir: &Path, threads: usize, die_after_states: Option<u64>) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        state_dir: dir.join("state"),
        cache_dir: None,
        scripts_root: dir.to_path_buf(),
        queue_cap: 16,
        heartbeat_ms: 25,
        checkpoint_every: Some(8),
        retry: RetryPolicy {
            max_attempts: 4,
            base_delay_ms: 1,
            max_delay_ms: 5,
            seed: 11,
        },
        default_threads: threads,
        default_max_states: None,
        default_timeout_ms: Some(60_000),
        launcher: LauncherKind::InProcess { die_after_states },
    }
}

struct Run {
    status: String,
    lines: Vec<String>,
    workers_lost: u64,
}

/// Run the one-job manifest through a fresh farm and return the verdict.
/// The first worker launched (w0, which deterministically receives the
/// first dispatch) is the sabotaged one when `die_after_states` is set.
fn run_farm(tag: &str, threads: usize, die_after_states: Option<u64>) -> Run {
    let dir = tmpdir(tag);
    fs::write(dir.join("m.csp"), MODEL).unwrap();
    let server = Server::start(config(&dir, threads, die_after_states)).unwrap();
    let addr = server.http_addr().to_string();

    let (status, body) = client_request(&addr, "POST", "/v1/jobs", MANIFEST).unwrap();
    assert_eq!(status, 202, "{body}");
    let accepted = diag::json::parse(&body).unwrap();
    let id = accepted.get("jobs").unwrap().as_array().unwrap()[0]
        .get("id")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();

    let (status, body) =
        client_request(&addr, "GET", &format!("/v1/jobs/{id}?wait=60"), "").unwrap();
    assert_eq!(status, 200, "{body}");
    let view = diag::json::parse(&body).unwrap();
    assert_eq!(
        view.get("state").and_then(Value::as_str),
        Some("done"),
        "{body}"
    );

    let (_, health) = client_request(&addr, "GET", "/v1/health", "").unwrap();
    let health = diag::json::parse(&health).unwrap();
    let workers_lost = health
        .get("counters")
        .and_then(|c| c.get("workers_lost"))
        .and_then(Value::as_u64)
        .unwrap();

    let run = Run {
        status: view
            .get("status")
            .and_then(Value::as_str)
            .unwrap()
            .to_string(),
        lines: view
            .get("lines")
            .and_then(Value::as_array)
            .unwrap()
            .iter()
            .map(|l| l.as_str().unwrap().to_string())
            .collect(),
        workers_lost,
    };
    server.shutdown();
    fdrlite::clear_interrupt();
    let _ = fs::remove_dir_all(&dir);
    run
}

/// The uninterrupted single-thread reference verdict, computed once.
fn reference() -> &'static Run {
    static REF: OnceLock<Run> = OnceLock::new();
    REF.get_or_init(|| {
        let run = run_farm("reference", 1, None);
        assert_eq!(run.status, "passed", "{:?}", run.lines);
        assert_eq!(run.workers_lost, 0);
        run
    })
}

proptest! {
    // Each case boots two full worker farms; a handful of random budgets
    // is plenty — the budget range [1, 60] covers every checkpoint
    // boundary of the 65-state exploration.
    #![proptest_config(ProptestConfig { cases: 6 })]

    #[test]
    fn killed_worker_handoff_is_verdict_preserving(
        budget in 1_u64..60,
        thread_pick in 0_usize..2,
    ) {
        let threads = [1, 8][thread_pick];
        let reference = reference();
        let run = run_farm(&format!("kill-{budget}-t{threads}"), threads, Some(budget));
        // The sabotaged worker really died mid-job...
        prop_assert!(run.workers_lost >= 1, "sabotaged worker was never lost");
        // ...and the handed-off job still reached the reference verdict,
        // byte for byte, regardless of worker thread count.
        prop_assert_eq!(&run.status, &reference.status);
        prop_assert_eq!(&run.lines, &reference.lines);
    }
}
