//! Keeps the `SRV6xx` table in `docs/LINTS.md` in sync with the published
//! code catalogue, mirroring `crates/lint/tests/catalogue_docs.rs`.

const LINTS_MD: &str = include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/LINTS.md"));
const SERVICE_MD: &str = include_str!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../docs/SERVICE.md"
));

#[test]
fn every_published_code_is_documented() {
    let missing: Vec<&str> = service::codes::CATALOGUE
        .iter()
        .map(|(code, _)| code.0)
        .filter(|code| !LINTS_MD.contains(code))
        .collect();
    assert!(
        missing.is_empty(),
        "codes missing from docs/LINTS.md: {missing:?}"
    );
}

#[test]
fn documentation_mentions_no_unpublished_codes() {
    // Any SRV-prefixed number in either doc must be in the catalogue.
    let published: Vec<&str> = service::codes::CATALOGUE.iter().map(|(c, _)| c.0).collect();
    let mut stale = Vec::new();
    for doc in [LINTS_MD, SERVICE_MD] {
        let mut rest = doc;
        while let Some(at) = rest.find("SRV") {
            let tail = &rest[at + 3..];
            let num: String = tail.chars().take_while(char::is_ascii_digit).collect();
            if num.len() == 3 {
                let code = format!("SRV{num}");
                if !published.contains(&code.as_str()) && !stale.contains(&code) {
                    stale.push(code);
                }
            }
            rest = &rest[at + 3..];
        }
    }
    assert!(stale.is_empty(), "undocumented codes referenced: {stale:?}");
}
