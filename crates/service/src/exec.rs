//! Worker-side job execution.
//!
//! One [`Executor`] lives inside each worker and runs [`ResolvedJob`]s to
//! [`JobOutcome`]s. The execution semantics are deliberately identical to
//! `autocsp run`'s supervised closures — same engines, same verdict
//! lines, same status mapping — so a batch produces byte-identical
//! stdout whether it runs under the local supervisor or the service.
//!
//! The executor's [`fdrlite::ModelStore`] is configured with
//! [`fdrlite::ResumePolicy::Auto`] against the service's shared cache
//! directory: a check job re-dispatched after a worker death picks up the
//! dead worker's checkpoint frontier transparently and continues to the
//! verdict the undisturbed run would have reached.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::rc::Rc;
use std::sync::Arc;

use diag::Severity;
use faults::conformance::ConformanceVerdict;
use faults::storage::TransientJobFaults;
use fdrlite::supervisor::{JobError, JobStatus};
use fdrlite::Checker;

use crate::{JobOutcome, ResolvedJob};

/// A CSPm script loaded once and shared by every job that references it.
struct Bundle {
    script: cspm::Script,
    loaded: cspm::LoadedScript,
}

fn load_bundle(path: &Path) -> Result<Rc<Bundle>, String> {
    let display = path.display();
    let source = fs::read_to_string(path).map_err(|e| format!("cannot read `{display}`: {e}"))?;
    let script = cspm::Script::parse(&source).map_err(|e| format!("{display}: {e}"))?;
    let loaded = script.load().map_err(|e| format!("{display}: {e}"))?;
    Ok(Rc::new(Bundle { script, loaded }))
}

/// How an [`Executor`] attaches to persistent storage.
#[derive(Debug, Clone, Default)]
pub struct ExecConfig {
    /// Shared on-disk cache directory (compiled models + checkpoints).
    /// `None` runs fully in memory — no checkpoint handoff, only re-runs.
    pub cache_dir: Option<PathBuf>,
    /// Checkpoint the exploration frontier every N states, so a killed
    /// worker loses at most N states of work.
    pub checkpoint_every: Option<u64>,
}

/// Executes jobs inside a worker. Owns the worker's model store, checker
/// and script cache; scripts referenced by several jobs load once.
pub struct Executor {
    store: fdrlite::ModelStore,
    checker: Checker,
    bundles: HashMap<PathBuf, Result<Rc<Bundle>, String>>,
}

impl Executor {
    /// Build an executor, attaching the shared cache when configured.
    ///
    /// # Errors
    ///
    /// The cache directory could not be created or opened.
    pub fn new(config: &ExecConfig) -> Result<Executor, String> {
        let store = fdrlite::ModelStore::new();
        if let Some(dir) = &config.cache_dir {
            let cache =
                Arc::new(fdrlite::PersistentCache::open(dir).map_err(|e| {
                    format!("cannot open cache directory `{}`: {e}", dir.display())
                })?);
            store.set_persist(fdrlite::PersistConfig {
                cache,
                checkpoint_every: config.checkpoint_every,
                resume: fdrlite::ResumePolicy::Auto,
            });
        }
        Ok(Executor {
            store,
            checker: Checker::new(),
            bundles: HashMap::new(),
        })
    }

    fn bundle(&mut self, path: &Path) -> Result<Rc<Bundle>, String> {
        self.bundles
            .entry(path.to_path_buf())
            .or_insert_with(|| load_bundle(path))
            .clone()
    }

    /// Run one job attempt to a verdict.
    ///
    /// # Errors
    ///
    /// [`JobError::Transient`] for failures worth retrying (chaos-plan
    /// injections), [`JobError::Permanent`] for failures inherent to the
    /// job (unreadable script, no matching assertion).
    pub fn run(&mut self, job: &ResolvedJob, attempt: u32) -> Result<JobOutcome, JobError> {
        if let Some(c) = &job.chaos {
            let plan = TransientJobFaults::new(c.seed, c.transient_attempts, c.every_nth);
            if plan.should_fail(&job.name, attempt) {
                return Err(JobError::Transient(
                    "injected transient fault (chaos plan)".to_owned(),
                ));
            }
        }
        let bundle = self.bundle(&job.script).map_err(JobError::Permanent)?;
        match job.kind {
            cspm::manifest::JobKind::Check => self.run_check(job, &bundle),
            cspm::manifest::JobKind::Conform => self.run_conform(job, &bundle),
            cspm::manifest::JobKind::Analyze => Ok(self.run_analyze(job, &bundle)),
        }
    }

    fn run_check(&self, job: &ResolvedJob, bundle: &Bundle) -> Result<JobOutcome, JobError> {
        let options = cspm::CheckOptions {
            threads: job.threads,
            collect_stats: false,
            max_states: job.max_states,
            max_wall_ms: job.timeout_ms,
        };
        let results = bundle
            .loaded
            .check_with_store(&self.checker, &options, &self.store)
            .map_err(|e| JobError::Permanent(e.to_string()))?;
        let mut lines = Vec::new();
        let mut refuted = 0_u32;
        let mut inconclusive = 0_u32;
        let mut matched = 0_u32;
        let mut interrupted = false;
        for r in &results {
            if let Some(filter) = &job.assertion {
                if !r.description.contains(filter.as_str()) {
                    continue;
                }
            }
            matched += 1;
            if let Some(cex) = r.verdict.counterexample() {
                refuted += 1;
                lines.push(format!("assert {}  ...  FAIL", r.description));
                lines.push(format!("  {}", cex.display(bundle.loaded.alphabet())));
            } else if let Some(inc) = r.verdict.inconclusive() {
                inconclusive += 1;
                // No budget detail: verdict lines must be identical
                // between disturbed and undisturbed runs.
                lines.push(format!("assert {}  ...  INCONCLUSIVE", r.description));
                if inc.reason == fdrlite::BudgetReason::Interrupted {
                    interrupted = true;
                }
            } else {
                lines.push(format!("assert {}  ...  PASS", r.description));
            }
        }
        if matched == 0 {
            return Err(JobError::Permanent(match &job.assertion {
                Some(f) => format!("no assertion matches filter `{f}`"),
                None => "script contains no `assert` declarations".to_owned(),
            }));
        }
        let status = if refuted > 0 {
            JobStatus::Refuted
        } else if inconclusive > 0 {
            JobStatus::Inconclusive
        } else {
            JobStatus::Passed
        };
        Ok(JobOutcome {
            status,
            lines,
            interrupted,
        })
    }

    fn run_conform(&self, job: &ResolvedJob, bundle: &Bundle) -> Result<JobOutcome, JobError> {
        let spec_name = job
            .spec
            .as_deref()
            .ok_or_else(|| JobError::Permanent("conform job needs `spec = \"NAME\"`".into()))?;
        let dir = job
            .corpus
            .as_deref()
            .ok_or_else(|| JobError::Permanent("conform job needs `corpus = \"DIR\"`".into()))?;
        let corpus = read_corpus_dir(dir).map_err(JobError::Permanent)?;
        let mut run =
            faults::batch::BatchRun::new(&bundle.loaded, spec_name, &self.checker, &self.store)
                .map_err(|e| JobError::Permanent(e.to_string()))?;
        let mut labels = Vec::new();
        for (file, text) in &corpus {
            let (traces, _findings) = faults::batch::parse_corpus(text);
            for (line, trace) in traces {
                let label = trace.id.clone().unwrap_or_else(|| format!("{file}:{line}"));
                run.push(&trace.events);
                labels.push(label);
            }
        }
        let report = run.finish(job.threads);
        let mut lines = Vec::new();
        let mut inconclusive = 0_u32;
        let mut interrupted = false;
        for (i, verdict) in report.verdicts.iter().enumerate() {
            let label = &labels[i];
            match verdict {
                ConformanceVerdict::Conformant => {}
                ConformanceVerdict::Refuted(cex) => {
                    lines.push(format!("trace {label}  ...  FAIL"));
                    lines.push(format!("  {}", cex.display(bundle.loaded.alphabet())));
                }
                ConformanceVerdict::UnknownEvent { event, index } => {
                    lines.push(format!("trace {label}  ...  FAIL"));
                    lines.push(format!(
                        "  (event #{index} `{event}` is not in the model's alphabet)"
                    ));
                }
                ConformanceVerdict::Inconclusive(inc) => {
                    inconclusive += 1;
                    lines.push(format!("trace {label}  ...  INCONCLUSIVE"));
                    if inc.reason == fdrlite::BudgetReason::Interrupted {
                        interrupted = true;
                    }
                }
            }
        }
        let refuted = report.stats.refuted;
        let unknown = report.stats.unknown_event;
        let outcome = if refuted + unknown > 0 {
            "FAIL"
        } else {
            "PASS"
        };
        lines.push(format!(
            "conformance {} [T= corpus  ...  {outcome}: {} trace(s), \
             {} conformant, {refuted} refuted, {unknown} unknown-event",
            report.spec, report.stats.traces, report.stats.conformant
        ));
        let status = if refuted + unknown > 0 {
            JobStatus::Refuted
        } else if inconclusive > 0 {
            JobStatus::Inconclusive
        } else {
            JobStatus::Passed
        };
        Ok(JobOutcome {
            status,
            lines,
            interrupted,
        })
    }

    fn run_analyze(&self, job: &ResolvedJob, bundle: &Bundle) -> JobOutcome {
        let analysis = cspm::analyze::analyze_script(
            bundle.script.module(),
            &bundle.loaded,
            &self.checker,
            &self.store,
            job.max_states,
        );
        let errors = analysis
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        let warnings = analysis
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count();
        let script_label = job.script.display();
        let lines = vec![format!(
            "analyze {script_label}: {errors} error(s), {warnings} warning(s)"
        )];
        JobOutcome {
            status: if errors > 0 {
                JobStatus::Refuted
            } else {
                JobStatus::Passed
            },
            lines,
            interrupted: false,
        }
    }
}

/// `*.jsonl` files under a corpus directory, sorted by name.
///
/// # Errors
///
/// The directory (or a file in it) is unreadable, or holds no corpora.
pub fn read_corpus_dir(dir: &Path) -> Result<Vec<(String, String)>, String> {
    let entries = fs::read_dir(dir)
        .map_err(|e| format!("cannot read corpus directory `{}`: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "jsonl"))
        .collect();
    paths.sort();
    let mut out = Vec::new();
    for p in paths {
        let text =
            fs::read_to_string(&p).map_err(|e| format!("cannot read `{}`: {e}", p.display()))?;
        out.push((p.display().to_string(), text));
    }
    if out.is_empty() {
        return Err(format!(
            "corpus directory `{}` has no `.jsonl` files",
            dir.display()
        ));
    }
    Ok(out)
}

/// Fold everything that shapes a job's verdict into its stable content
/// key: the job definition, the script's bytes, and (for conform jobs)
/// every corpus file's name and bytes. Identical submissions — from the
/// same client or different ones — collapse to the same key, which is the
/// service-level half of deduplication (the engine-level half is
/// `fdrlite`'s `CheckId` in the shared cache).
pub fn job_content_key(job: &ResolvedJob) -> u64 {
    let mut buf = Vec::new();
    let mut fold = |tag: &str, value: &str| {
        buf.extend_from_slice(tag.as_bytes());
        buf.push(0x1f);
        buf.extend_from_slice(value.as_bytes());
        buf.push(0x1e);
    };
    fold("name", &job.name);
    fold("kind", job.kind.label());
    match fs::read_to_string(&job.script) {
        Ok(source) => fold("script", &source),
        Err(e) => fold("script-error", &e.to_string()),
    }
    fold("spec", job.spec.as_deref().unwrap_or(""));
    fold("assertion", job.assertion.as_deref().unwrap_or(""));
    if let Some(dir) = &job.corpus {
        match read_corpus_dir(dir) {
            Ok(corpus) => {
                for (file, text) in &corpus {
                    // Key by file *name*, not path, so relocated but
                    // identical corpora still deduplicate.
                    let name = Path::new(file)
                        .file_name()
                        .map_or_else(|| file.clone(), |n| n.to_string_lossy().into_owned());
                    fold("corpus-file", &name);
                    fold("corpus-text", text);
                }
            }
            Err(e) => fold("corpus-error", &e),
        }
    }
    fold("threads", &job.threads.to_string());
    fold(
        "max_states",
        &job.max_states.map_or_else(String::new, |v| v.to_string()),
    );
    fold(
        "timeout_ms",
        &job.timeout_ms.map_or_else(String::new, |v| v.to_string()),
    );
    if let Some(c) = &job.chaos {
        fold(
            "chaos",
            &format!("{} {} {}", c.seed, c.transient_attempts, c.every_nth),
        );
    }
    fdrlite::persist::fnv1a64(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_script(dir: &Path, name: &str, text: &str) -> PathBuf {
        let path = dir.join(name);
        fs::write(&path, text).unwrap();
        path
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "svc-exec-{tag}-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    const SCRIPT: &str = "
channel a, b
SPEC = a -> SPEC
IMPL = a -> IMPL
BAD = a -> b -> BAD
assert SPEC [T= IMPL
assert SPEC [T= BAD
";

    #[test]
    fn check_jobs_report_run_identical_lines() {
        let dir = tmpdir("check");
        let script = write_script(&dir, "m.csp", SCRIPT);
        let mut exec = Executor::new(&ExecConfig::default()).unwrap();
        let job = ResolvedJob {
            name: "j".into(),
            kind: cspm::manifest::JobKind::Check,
            script,
            spec: None,
            corpus: None,
            assertion: None,
            threads: 1,
            max_states: None,
            timeout_ms: None,
            chaos: None,
        };
        let out = exec.run(&job, 1).unwrap();
        assert_eq!(out.status, JobStatus::Refuted);
        assert!(out.lines[0].contains("PASS"));
        assert!(out.lines[1].contains("FAIL"));
        assert!(!out.interrupted);
    }

    #[test]
    fn assertion_filter_and_missing_assertions_are_permanent() {
        let dir = tmpdir("filter");
        let script = write_script(&dir, "m.csp", SCRIPT);
        let mut exec = Executor::new(&ExecConfig::default()).unwrap();
        let mut job = ResolvedJob {
            name: "j".into(),
            kind: cspm::manifest::JobKind::Check,
            script,
            spec: None,
            corpus: None,
            assertion: Some("no-such-assert".into()),
            threads: 1,
            max_states: None,
            timeout_ms: None,
            chaos: None,
        };
        assert!(matches!(exec.run(&job, 1), Err(JobError::Permanent(_))));
        job.assertion = Some("IMPL".into());
        assert_eq!(exec.run(&job, 1).unwrap().status, JobStatus::Passed);
    }

    #[test]
    fn chaos_plan_fails_leading_attempts_transiently() {
        let dir = tmpdir("chaos");
        let script = write_script(&dir, "m.csp", SCRIPT);
        let mut exec = Executor::new(&ExecConfig::default()).unwrap();
        let mut job = ResolvedJob {
            name: "j".into(),
            kind: cspm::manifest::JobKind::Check,
            script,
            spec: None,
            corpus: None,
            assertion: Some("IMPL".into()),
            threads: 1,
            max_states: None,
            timeout_ms: None,
            chaos: Some(crate::ChaosCfg {
                seed: 0,
                transient_attempts: 2,
                every_nth: 1,
            }),
        };
        assert!(matches!(exec.run(&job, 1), Err(JobError::Transient(_))));
        assert!(matches!(exec.run(&job, 2), Err(JobError::Transient(_))));
        assert_eq!(exec.run(&job, 3).unwrap().status, JobStatus::Passed);
        job.chaos = None;
        assert_eq!(exec.run(&job, 1).unwrap().status, JobStatus::Passed);
    }

    #[test]
    fn content_keys_track_script_content_not_path() {
        let dir = tmpdir("key");
        let a = write_script(&dir, "a.csp", SCRIPT);
        let b = write_script(&dir, "b.csp", SCRIPT);
        let job = |script: &Path| ResolvedJob {
            name: "j".into(),
            kind: cspm::manifest::JobKind::Check,
            script: script.to_path_buf(),
            spec: None,
            corpus: None,
            assertion: None,
            threads: 1,
            max_states: None,
            timeout_ms: None,
            chaos: None,
        };
        assert_eq!(job_content_key(&job(&a)), job_content_key(&job(&b)));
        fs::write(&b, format!("{SCRIPT}\n-- changed")).unwrap();
        assert_ne!(job_content_key(&job(&a)), job_content_key(&job(&b)));
        let mut other = job(&a);
        other.max_states = Some(7);
        assert_ne!(job_content_key(&job(&a)), job_content_key(&other));
    }
}
