//! A deliberately minimal HTTP/1.1 layer over `std::net`.
//!
//! The build environment vendors all dependencies offline, so the
//! service speaks just enough HTTP itself: request line, headers,
//! `Content-Length` bodies, `Connection: close` responses. That subset
//! is exactly what `curl`, the CI harness and the bench client need —
//! no chunked encoding, no keep-alive, no TLS.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on accepted request bodies (a manifest, not a corpus).
const MAX_BODY: usize = 1 << 20;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, … (uppercased).
    pub method: String,
    /// Decoded path, query string stripped.
    pub path: String,
    /// Query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// The body, when `Content-Length` announced one.
    pub body: Vec<u8>,
}

impl Request {
    /// First query parameter named `key`.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Read one request from the stream. `Ok(None)` means the peer closed
/// (or sent garbage) before a full request arrived.
///
/// # Errors
///
/// Propagates socket I/O errors; malformed requests map to `Ok(None)`.
pub fn read_request(stream: &mut TcpStream) -> std::io::Result<Option<Request>> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        return Ok(None);
    };
    let method = method.to_ascii_uppercase();
    let (path, query_raw) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q),
        None => (target.to_string(), ""),
    };
    let query = query_raw
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (kv.to_string(), String::new()),
        })
        .collect();

    let mut content_length = 0_usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Ok(None);
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }
    if content_length > MAX_BODY {
        return Ok(None);
    }
    let mut body = vec![0_u8; content_length];
    if content_length > 0 {
        reader.read_exact(&mut body)?;
    }
    Ok(Some(Request {
        method,
        path,
        query,
        body,
    }))
}

/// Write one `Connection: close` response with a JSON (or plain) body.
///
/// # Errors
///
/// Propagates socket I/O errors.
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    extra_headers: &[(&str, String)],
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let mut out = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        out.push_str(name);
        out.push_str(": ");
        out.push_str(value);
        out.push_str("\r\n");
    }
    out.push_str("\r\n");
    out.push_str(body);
    stream.write_all(out.as_bytes())?;
    stream.flush()
}

/// A tiny client for tests and the bench harness: one request, one
/// response, connection closed.
///
/// Returns `(status, body)`.
///
/// # Errors
///
/// Connection or protocol failures, as a human-readable string.
pub fn client_request(
    addr: &str,
    method: &str,
    path_and_query: &str,
    body: &str,
) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let request = format!(
        "{method} {path_and_query} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let mut response = String::new();
    BufReader::new(stream)
        .read_to_string(&mut response)
        .map_err(|e| format!("recv: {e}"))?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("malformed response: {response:?}"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line: {head:?}"))?;
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn request_and_response_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let request = read_request(&mut stream).unwrap().unwrap();
            assert_eq!(request.method, "POST");
            assert_eq!(request.path, "/v1/jobs");
            assert_eq!(request.query_param("wait"), Some("5"));
            assert_eq!(request.body, b"[run]\n");
            respond(
                &mut stream,
                429,
                "Too Many Requests",
                &[("Retry-After", "2".to_string())],
                "application/json",
                "{\"error\":\"queue full\"}",
            )
            .unwrap();
        });
        let (status, body) = client_request(&addr, "POST", "/v1/jobs?wait=5", "[run]\n").unwrap();
        assert_eq!(status, 429);
        assert_eq!(body, "{\"error\":\"queue full\"}");
        server.join().unwrap();
    }
}
