//! The orchestrator ↔ worker control protocol.
//!
//! One JSON object per line over a loopback TCP connection. The worker
//! connects, authenticates with its launch token, and then the
//! orchestrator drives it job by job:
//!
//! ```text
//! worker → orchestrator   {"type":"hello","token":"…","pid":1234}
//! orchestrator → worker   {"type":"job","id":"…","attempt":1,…}
//! worker → orchestrator   {"type":"heartbeat","busy":true}
//! worker → orchestrator   {"type":"result","id":"…","status":"passed",…}
//! worker → orchestrator   {"type":"error","id":"…","transient":true,…}
//! orchestrator → worker   {"type":"shutdown"}
//! ```
//!
//! Frames are deliberately flat and self-describing; unknown fields are
//! ignored so the two ends can evolve independently within a release.

use diag::{json, json_string};

use crate::{ChaosCfg, JobOutcome, ResolvedJob};

/// One protocol frame, either direction.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Worker greeting: launch token + worker pid.
    Hello {
        /// The token the worker was launched with; identifies its slot.
        token: String,
        /// The worker's OS process id (SIGKILL target for dead workers).
        pid: u32,
    },
    /// Dispatch one job to the worker.
    Job {
        /// The job's content key.
        id: u64,
        /// 1-based dispatch attempt (grows across retries and handoffs).
        attempt: u32,
        /// The fully resolved job.
        job: ResolvedJob,
    },
    /// Periodic liveness beat from the worker.
    Heartbeat {
        /// Whether a job is currently executing.
        busy: bool,
    },
    /// Terminal verdict for a dispatched job.
    Result {
        /// The job's content key.
        id: u64,
        /// The verdict.
        outcome: JobOutcome,
    },
    /// The job could not produce a verdict this attempt.
    Error {
        /// The job's content key.
        id: u64,
        /// Whether the failure is worth retrying.
        transient: bool,
        /// What went wrong.
        message: String,
    },
    /// Orchestrator request: finish (or checkpoint) the current job and
    /// exit.
    Shutdown,
}

fn push_field(out: &mut String, key: &str, value: &str) {
    out.push(',');
    out.push_str(&json_string(key));
    out.push(':');
    out.push_str(value);
}

fn push_opt_str(out: &mut String, key: &str, value: Option<&str>) {
    if let Some(v) = value {
        push_field(out, key, &json_string(v));
    }
}

fn push_opt_u64(out: &mut String, key: &str, value: Option<u64>) {
    if let Some(v) = value {
        push_field(out, key, &v.to_string());
    }
}

/// Encode a frame as one newline-terminated JSON line.
pub fn encode(frame: &Frame) -> String {
    let mut out = String::from("{");
    match frame {
        Frame::Hello { token, pid } => {
            out.push_str("\"type\":\"hello\"");
            push_field(&mut out, "token", &json_string(token));
            push_field(&mut out, "pid", &pid.to_string());
        }
        Frame::Job { id, attempt, job } => {
            out.push_str("\"type\":\"job\"");
            push_field(&mut out, "id", &json_string(&crate::format_job_id(*id)));
            push_field(&mut out, "attempt", &attempt.to_string());
            push_field(&mut out, "name", &json_string(&job.name));
            push_field(&mut out, "kind", &json_string(job.kind.label()));
            push_field(
                &mut out,
                "script",
                &json_string(&job.script.display().to_string()),
            );
            push_opt_str(&mut out, "spec", job.spec.as_deref());
            push_opt_str(
                &mut out,
                "corpus",
                job.corpus
                    .as_ref()
                    .map(|p| p.display().to_string())
                    .as_deref(),
            );
            push_opt_str(&mut out, "assertion", job.assertion.as_deref());
            push_field(&mut out, "threads", &job.threads.to_string());
            push_opt_u64(&mut out, "max_states", job.max_states);
            push_opt_u64(&mut out, "timeout_ms", job.timeout_ms);
            if let Some(c) = &job.chaos {
                push_field(
                    &mut out,
                    "chaos",
                    &format!(
                        "{{\"seed\":{},\"transient_attempts\":{},\"every_nth\":{}}}",
                        c.seed, c.transient_attempts, c.every_nth
                    ),
                );
            }
        }
        Frame::Heartbeat { busy } => {
            out.push_str("\"type\":\"heartbeat\"");
            push_field(&mut out, "busy", if *busy { "true" } else { "false" });
        }
        Frame::Result { id, outcome } => {
            out.push_str("\"type\":\"result\"");
            push_field(&mut out, "id", &json_string(&crate::format_job_id(*id)));
            push_field(
                &mut out,
                "status",
                &json_string(crate::status_label(outcome.status)),
            );
            let lines: Vec<String> = outcome.lines.iter().map(|l| json_string(l)).collect();
            push_field(&mut out, "lines", &format!("[{}]", lines.join(",")));
            push_field(
                &mut out,
                "interrupted",
                if outcome.interrupted { "true" } else { "false" },
            );
        }
        Frame::Error {
            id,
            transient,
            message,
        } => {
            out.push_str("\"type\":\"error\"");
            push_field(&mut out, "id", &json_string(&crate::format_job_id(*id)));
            push_field(
                &mut out,
                "transient",
                if *transient { "true" } else { "false" },
            );
            push_field(&mut out, "message", &json_string(message));
        }
        Frame::Shutdown => out.push_str("\"type\":\"shutdown\""),
    }
    out.push_str("}\n");
    out
}

fn need_str(v: &json::Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(json::Value::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("frame is missing string field `{key}`"))
}

fn need_u64(v: &json::Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(json::Value::as_u64)
        .ok_or_else(|| format!("frame is missing numeric field `{key}`"))
}

fn opt_str(v: &json::Value, key: &str) -> Option<String> {
    v.get(key).and_then(json::Value::as_str).map(str::to_owned)
}

fn need_job_id(v: &json::Value) -> Result<u64, String> {
    let token = need_str(v, "id")?;
    crate::parse_job_id(&token).ok_or_else(|| format!("malformed job id `{token}`"))
}

/// Decode one frame line.
///
/// # Errors
///
/// A human-readable description of the malformation (surfaced under
/// [`crate::codes::PROTOCOL_ERROR`]).
pub fn decode(line: &str) -> Result<Frame, String> {
    let value = json::parse(line).map_err(|e| e.to_string())?;
    let kind = need_str(&value, "type")?;
    match kind.as_str() {
        "hello" => Ok(Frame::Hello {
            token: need_str(&value, "token")?,
            pid: u32::try_from(need_u64(&value, "pid")?)
                .map_err(|_| "pid out of range".to_string())?,
        }),
        "job" => {
            let kind_label = need_str(&value, "kind")?;
            let kind = match kind_label.as_str() {
                "check" => cspm::manifest::JobKind::Check,
                "conform" => cspm::manifest::JobKind::Conform,
                "analyze" => cspm::manifest::JobKind::Analyze,
                other => return Err(format!("unknown job kind `{other}`")),
            };
            let chaos = match value.get("chaos") {
                Some(c) => Some(ChaosCfg {
                    seed: need_u64(c, "seed")?,
                    transient_attempts: u32::try_from(need_u64(c, "transient_attempts")?)
                        .map_err(|_| "transient_attempts out of range".to_string())?,
                    every_nth: need_u64(c, "every_nth")?,
                }),
                None => None,
            };
            Ok(Frame::Job {
                id: need_job_id(&value)?,
                attempt: u32::try_from(need_u64(&value, "attempt")?)
                    .map_err(|_| "attempt out of range".to_string())?,
                job: ResolvedJob {
                    name: need_str(&value, "name")?,
                    kind,
                    script: need_str(&value, "script")?.into(),
                    spec: opt_str(&value, "spec"),
                    corpus: opt_str(&value, "corpus").map(Into::into),
                    assertion: opt_str(&value, "assertion"),
                    threads: usize::try_from(need_u64(&value, "threads")?)
                        .map_err(|_| "threads out of range".to_string())?,
                    max_states: value.get("max_states").and_then(json::Value::as_u64),
                    timeout_ms: value.get("timeout_ms").and_then(json::Value::as_u64),
                    chaos,
                },
            })
        }
        "heartbeat" => Ok(Frame::Heartbeat {
            busy: value
                .get("busy")
                .and_then(json::Value::as_bool)
                .ok_or("heartbeat is missing `busy`")?,
        }),
        "result" => {
            let status_label = need_str(&value, "status")?;
            let status = crate::status_from_label(&status_label)
                .ok_or_else(|| format!("unknown status `{status_label}`"))?;
            let lines = value
                .get("lines")
                .and_then(json::Value::as_array)
                .ok_or("result is missing `lines`")?
                .iter()
                .map(|l| {
                    l.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| "non-string verdict line".to_string())
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Frame::Result {
                id: need_job_id(&value)?,
                outcome: JobOutcome {
                    status,
                    lines,
                    interrupted: value
                        .get("interrupted")
                        .and_then(json::Value::as_bool)
                        .unwrap_or(false),
                },
            })
        }
        "error" => Ok(Frame::Error {
            id: need_job_id(&value)?,
            transient: value
                .get("transient")
                .and_then(json::Value::as_bool)
                .unwrap_or(false),
            message: need_str(&value, "message")?,
        }),
        "shutdown" => Ok(Frame::Shutdown),
        other => Err(format!("unknown frame type `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdrlite::supervisor::JobStatus;

    fn sample_job() -> ResolvedJob {
        ResolvedJob {
            name: "ota-sp02".into(),
            kind: cspm::manifest::JobKind::Check,
            script: "examples/ota_x1373.csp".into(),
            spec: None,
            corpus: None,
            assertion: Some("SP02".into()),
            threads: 2,
            max_states: Some(10_000),
            timeout_ms: None,
            chaos: Some(ChaosCfg {
                seed: 99,
                transient_attempts: 2,
                every_nth: 3,
            }),
        }
    }

    #[test]
    fn frames_round_trip() {
        let frames = [
            Frame::Hello {
                token: "w-0-1".into(),
                pid: 4321,
            },
            Frame::Job {
                id: 0xfeed_beef,
                attempt: 3,
                job: sample_job(),
            },
            Frame::Heartbeat { busy: true },
            Frame::Result {
                id: 7,
                outcome: JobOutcome {
                    status: JobStatus::Refuted,
                    lines: vec!["assert X  ...  FAIL".into(), "  <tr>".into()],
                    interrupted: false,
                },
            },
            Frame::Error {
                id: 7,
                transient: true,
                message: "storage fault \"injected\"".into(),
            },
            Frame::Shutdown,
        ];
        for frame in frames {
            let line = encode(&frame);
            assert!(line.ends_with('\n'));
            assert_eq!(decode(line.trim_end()).unwrap(), frame, "line: {line}");
        }
    }

    #[test]
    fn conform_job_round_trips_paths() {
        let mut job = sample_job();
        job.kind = cspm::manifest::JobKind::Conform;
        job.spec = Some("SYSTEM".into());
        job.corpus = Some("examples/faults/traces".into());
        job.chaos = None;
        let frame = Frame::Job {
            id: 1,
            attempt: 1,
            job,
        };
        assert_eq!(decode(encode(&frame).trim_end()).unwrap(), frame);
    }

    #[test]
    fn malformed_frames_are_rejected() {
        assert!(decode("not json").is_err());
        assert!(decode("{}").is_err());
        assert!(decode("{\"type\":\"warp\"}").is_err());
        assert!(decode("{\"type\":\"job\",\"id\":\"zz\"}").is_err());
        assert!(decode(
            "{\"type\":\"result\",\"id\":\"0000000000000007\",\"status\":\"maybe\",\"lines\":[]}"
        )
        .is_err());
    }
}
