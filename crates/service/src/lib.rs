//! `service` — fault-tolerant checking-as-a-service.
//!
//! The paper scales security checking past one machine with FDR's grid
//! mode (§VII-A); this crate is that step for the `auto-csp` toolchain: a
//! long-running front-end that accepts check/conform/analyze jobs over
//! HTTP (submit a `jobs.toml` manifest → job ids → poll verdicts) and
//! dispatches them to a pool of worker processes over loopback.
//!
//! Robustness is the design centre, not an afterthought:
//!
//! - **Sharded workers, one cache.** Every worker attaches the same
//!   [`fdrlite::PersistentCache`], so compiled models and checkpoint
//!   frontiers written by one worker are visible to all. Identity is
//!   content-addressed end to end: identical submissions collapse to one
//!   job id at the service layer and to one `CheckId` at the engine
//!   layer.
//! - **Heartbeats + EOF death detection.** Each worker connection beats
//!   on a fixed interval; a SIGKILLed worker is noticed immediately via
//!   socket EOF, a wedged one via the heartbeat deadline, and either way
//!   its job is reclaimed ([`codes::WORKER_LOST`]).
//! - **Checkpoint handoff.** A reclaimed check job is handed to a fresh
//!   worker, which resumes from the dead worker's last checkpoint
//!   frontier and reaches a verdict byte-identical to an undisturbed
//!   run — the engine-level guarantee (`fdrlite::persist`) lifted to the
//!   service. Conform and analyze jobs are deterministic and idempotent,
//!   so a reclaim simply re-runs them to the same verdict.
//! - **Bounded, fail-closed admission.** The queue has a hard cap; a
//!   submission that would overflow it is rejected with HTTP 429 and a
//!   `Retry-After` hint ([`codes::QUEUE_FULL`]) instead of growing
//!   memory without bound.
//! - **Graceful degradation.** SIGTERM drains: in-flight jobs are
//!   interrupted to checkpoints, pending jobs stay journaled, and a
//!   restarted service completes them byte-identically
//!   ([`codes::DRAIN_DEFERRED`]). The journal reuses the crash-safe
//!   atomic-rewrite discipline of `fdrlite::supervisor`.
//!
//! The wire job format *is* the `jobs.toml` manifest
//! (`cspm::manifest::Manifest`) — the service speaks the same language
//! as `autocsp run`, and a batch submitted to either produces the same
//! verdict lines. See `docs/SERVICE.md` for the HTTP surface, the job
//! lifecycle state machine and the exit/status contract.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod http;
pub mod journal;
pub mod orchestrator;
pub mod server;
pub mod wire;
pub mod worker;

use std::path::PathBuf;

use fdrlite::supervisor::JobStatus;

/// The `SRV6xx` diagnostic family: checking-service orchestration.
///
/// Catalogued in `docs/LINTS.md`; the `catalogue_docs` drift test keeps
/// the table honest.
pub mod codes {
    use diag::Code;

    /// A worker died (socket EOF or heartbeat deadline); its job was
    /// reclaimed and re-dispatched from the last checkpoint.
    pub const WORKER_LOST: Code = Code("SRV601");
    /// A submission was rejected because the queue is at capacity
    /// (HTTP 429 + `Retry-After`).
    pub const QUEUE_FULL: Code = Code("SRV602");
    /// The service journal (or a journaled job's on-disk content) was
    /// unreadable or stale; affected entries were dropped, never trusted.
    pub const JOURNAL_ERROR: Code = Code("SRV603");
    /// A worker could not be spawned or never completed its handshake.
    pub const WORKER_SPAWN: Code = Code("SRV604");
    /// A job exhausted its retry budget and was marked failed.
    pub const RETRIES_EXHAUSTED: Code = Code("SRV605");
    /// Shutdown drained a job to its checkpoint and deferred it to the
    /// next service start.
    pub const DRAIN_DEFERRED: Code = Code("SRV606");
    /// A malformed frame or HTTP request reached the service.
    pub const PROTOCOL_ERROR: Code = Code("SRV607");

    /// Every `SRV6xx` code with a one-line summary, for the docs drift
    /// test.
    pub const CATALOGUE: &[(Code, &str)] = &[
        (WORKER_LOST, "worker died; job reclaimed from checkpoint"),
        (QUEUE_FULL, "admission rejected: queue at capacity"),
        (JOURNAL_ERROR, "service journal entry unreadable or stale"),
        (WORKER_SPAWN, "worker spawn or handshake failure"),
        (RETRIES_EXHAUSTED, "job failed after exhausting retries"),
        (DRAIN_DEFERRED, "shutdown deferred job to next start"),
        (PROTOCOL_ERROR, "malformed frame or request"),
    ];
}

/// Deterministic chaos plan carried per job (mirrors the manifest's
/// `[chaos]` section; drives `faults::storage::TransientJobFaults`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosCfg {
    /// Plan seed.
    pub seed: u64,
    /// Attempts that fail transiently for selected jobs.
    pub transient_attempts: u32,
    /// Every n-th job (by seeded name hash) is selected; `0` selects none.
    pub every_nth: u64,
}

/// One fully resolved job: a manifest `[[job]]` entry with every default
/// (manifest `[run]`, then service config) already applied. This is the
/// unit of dispatch — the orchestrator sends it to a worker verbatim.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedJob {
    /// Job name from the manifest (display only; not part of dispatch).
    pub name: String,
    /// What to do: `check`, `conform` or `analyze`.
    pub kind: cspm::manifest::JobKind,
    /// The CSPm script to load, resolved to a concrete path.
    pub script: PathBuf,
    /// Spec process name (`conform` jobs).
    pub spec: Option<String>,
    /// Trace corpus directory (`conform` jobs).
    pub corpus: Option<PathBuf>,
    /// Run only assertions whose description contains this substring.
    pub assertion: Option<String>,
    /// Worker threads for the engines.
    pub threads: usize,
    /// Per-job state budget.
    pub max_states: Option<u64>,
    /// Per-job wall budget in milliseconds.
    pub timeout_ms: Option<u64>,
    /// Deterministic transient-fault plan, if the manifest has one.
    pub chaos: Option<ChaosCfg>,
}

/// A job's terminal verdict as reported by a worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobOutcome {
    /// The verdict class.
    pub status: JobStatus,
    /// Deterministic verdict lines — byte-identical between disturbed
    /// and undisturbed runs.
    pub lines: Vec<String>,
    /// `true` when the verdict is inconclusive *because shutdown was
    /// requested mid-check*; such an outcome is deferred, not recorded.
    pub interrupted: bool,
}

/// Wire label of a [`JobStatus`] (also its `Display` form).
pub fn status_label(status: JobStatus) -> &'static str {
    match status {
        JobStatus::Passed => "passed",
        JobStatus::Refuted => "refuted",
        JobStatus::Inconclusive => "inconclusive",
        JobStatus::Failed => "failed",
    }
}

/// Parse a [`status_label`] back.
pub fn status_from_label(label: &str) -> Option<JobStatus> {
    match label {
        "passed" => Some(JobStatus::Passed),
        "refuted" => Some(JobStatus::Refuted),
        "inconclusive" => Some(JobStatus::Inconclusive),
        "failed" => Some(JobStatus::Failed),
        _ => None,
    }
}

/// Format a job id (a 64-bit content key) as the service's public token.
pub fn format_job_id(id: u64) -> String {
    format!("{id:016x}")
}

/// Parse a job-id token back to its key.
pub fn parse_job_id(token: &str) -> Option<u64> {
    if token.len() == 16 && token.bytes().all(|b| b.is_ascii_hexdigit()) {
        u64::from_str_radix(token, 16).ok()
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_ids_round_trip() {
        for id in [0_u64, 1, u64::MAX, 0xdead_beef_cafe_f00d] {
            assert_eq!(parse_job_id(&format_job_id(id)), Some(id));
        }
        assert_eq!(parse_job_id("xyz"), None);
        assert_eq!(parse_job_id("0123456789abcde"), None);
    }

    #[test]
    fn status_labels_round_trip() {
        for s in [
            JobStatus::Passed,
            JobStatus::Refuted,
            JobStatus::Inconclusive,
            JobStatus::Failed,
        ] {
            assert_eq!(status_from_label(status_label(s)), Some(s));
        }
        assert_eq!(status_from_label("exploded"), None);
    }
}
