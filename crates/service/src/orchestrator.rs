//! The orchestrator: the service's single source of truth.
//!
//! One mutex-guarded state machine tracks every job and every worker
//! connection. Jobs move through a small lifecycle:
//!
//! ```text
//!            submit                dispatch              verdict
//! (manifest) ──────▶ queued ──────────────▶ running ──────────▶ done
//!                      ▲                      │  │
//!              backoff │   worker lost /      │  │ drain (SIGTERM)
//!              elapsed │   transient error    │  ▼
//!                    delayed ◀────────────────┘ deferred  (pending in
//!                      │                          journal; resumes on
//!                      ▼ retries exhausted        next start)
//!                    failed
//! ```
//!
//! Every transition happens under the lock and is mirrored to the
//! crash-safe [`crate::journal::ServiceJournal`] at the points that
//! matter for restart: admission (pending entry) and terminal states
//! (verdict or failure). Retries in between are process-local.
//!
//! The orchestrator never performs I/O towards workers itself — it hands
//! the server thread a cloned stream plus an encoded frame
//! ([`Dispatch`]) so no socket write ever happens under the lock.

use std::collections::{HashMap, VecDeque};
use std::net::TcpStream;
use std::path::Path;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use diag::{Diagnostic, Span};
use fdrlite::supervisor::RetryPolicy;

use crate::journal::{JournalEntry, ServiceJournal};
use crate::wire::{encode, Frame};
use crate::{codes, exec, ChaosCfg, JobOutcome, ResolvedJob};

/// Orchestrator tuning.
#[derive(Debug, Clone)]
pub struct OrchestratorConfig {
    /// Hard cap on pending jobs (queued + delayed + running + deferred).
    pub queue_cap: usize,
    /// Retry policy for transient failures and worker-loss reclaims.
    pub retry: RetryPolicy,
    /// Expected worker heartbeat interval (milliseconds); a worker is
    /// declared wedged after missing [`MISSED_BEATS`] of them.
    pub heartbeat_ms: u64,
    /// Default worker threads when neither the job nor the manifest says.
    pub default_threads: usize,
    /// Default per-job state budget.
    pub default_max_states: Option<u64>,
    /// Default per-job wall budget (milliseconds).
    pub default_timeout_ms: Option<u64>,
}

/// Heartbeats a worker may miss before it is declared wedged and killed.
pub const MISSED_BEATS: u32 = 4;

/// Floor for the heartbeat deadline, so tiny test intervals do not turn
/// scheduler jitter into spurious kills.
const MIN_DEADLINE_MS: u64 = 500;

/// How long a spawned worker gets to complete its `hello` handshake.
const SPAWN_GRACE_MS: u64 = 10_000;

/// `Retry-After` hint (seconds) on 429 responses.
const RETRY_AFTER_S: u64 = 2;

/// Where a job is in its lifecycle.
#[derive(Debug, Clone)]
enum JobState {
    Queued,
    Delayed { ready_at: Instant },
    Running { token: String },
    Deferred,
    Done(JobOutcome),
    Failed(String),
}

struct JobRecord {
    job: ResolvedJob,
    attempts: u32,
    max_attempts: u32,
    state: JobState,
}

struct WorkerEntry {
    pid: u32,
    writer: TcpStream,
    busy: Option<u64>,
    last_beat: Instant,
}

/// Monotonic service counters, surfaced by `/v1/health` and the bench.
#[derive(Debug, Clone, Copy, Default)]
pub struct Counters {
    /// Jobs accepted (dedup hits included).
    pub submitted: u64,
    /// Submissions that collapsed onto an existing job id.
    pub dedup_hits: u64,
    /// Jobs that reached a verdict.
    pub completed: u64,
    /// Jobs that failed terminally.
    pub failed: u64,
    /// Re-dispatches after transient errors or interrupts.
    pub retried: u64,
    /// Workers lost to EOF or heartbeat deadline.
    pub workers_lost: u64,
    /// Submissions rejected at the admission gate.
    pub rejected: u64,
    /// Jobs deferred across a drain.
    pub deferred: u64,
}

struct Inner {
    jobs: HashMap<u64, JobRecord>,
    /// Submission order, for stable listings.
    order: Vec<u64>,
    queue: VecDeque<u64>,
    delayed: Vec<u64>,
    workers: HashMap<String, WorkerEntry>,
    /// Tokens handed to spawned workers that have not said hello yet.
    pending_workers: HashMap<String, Instant>,
    draining: bool,
    journal: ServiceJournal,
    diags: Vec<Diagnostic>,
    counters: Counters,
}

/// Why a submission was refused.
#[derive(Debug)]
pub enum SubmitError {
    /// The manifest did not parse.
    Parse(String),
    /// Admission would overflow the queue cap; retry after the hint.
    QueueFull {
        /// Suggested client backoff in seconds (`Retry-After`).
        retry_after_s: u64,
    },
    /// The service is draining and accepts no new work.
    Draining,
}

/// One accepted job from a submission.
#[derive(Debug, Clone)]
pub struct Accepted {
    /// Manifest job name.
    pub name: String,
    /// The job's content key (public id).
    pub id: u64,
    /// Lifecycle state label at admission time.
    pub state: &'static str,
    /// Whether this submission collapsed onto an existing job.
    pub dedup: bool,
}

/// A snapshot of one job for the HTTP layer.
#[derive(Debug, Clone)]
pub struct JobView {
    /// The job's content key.
    pub id: u64,
    /// Manifest job name.
    pub name: String,
    /// Job kind label.
    pub kind: &'static str,
    /// Lifecycle state label.
    pub state: &'static str,
    /// Attempts consumed so far.
    pub attempts: u32,
    /// The verdict, once done.
    pub outcome: Option<JobOutcome>,
    /// The failure message, once failed.
    pub failure: Option<String>,
}

/// A snapshot of one worker for the HTTP layer.
#[derive(Debug, Clone)]
pub struct WorkerView {
    /// Launch token (slot identity).
    pub token: String,
    /// OS process id (0 for in-process thread workers).
    pub pid: u32,
    /// The job the worker is running, if any.
    pub busy: Option<u64>,
}

/// A `/v1/health` snapshot.
#[derive(Debug, Clone)]
pub struct Health {
    /// Whether the service is draining.
    pub draining: bool,
    /// Connected workers.
    pub workers: Vec<WorkerView>,
    /// Jobs per lifecycle state.
    pub queued: usize,
    /// Jobs waiting out a retry backoff.
    pub delayed: usize,
    /// Jobs currently on a worker.
    pub running: usize,
    /// Jobs deferred across a drain.
    pub deferred: usize,
    /// Jobs with verdicts.
    pub done: usize,
    /// Terminally failed jobs.
    pub failed: usize,
    /// Admission cap.
    pub queue_cap: usize,
    /// Monotonic counters.
    pub counters: Counters,
}

/// One dispatch decision: write `line` to `stream`; on failure report
/// [`Orchestrator::worker_gone`] for `token`.
pub struct Dispatch {
    /// The worker's launch token.
    pub token: String,
    /// A clone of the worker's stream (write outside the lock).
    pub stream: TcpStream,
    /// The encoded `job` frame.
    pub line: String,
}

/// Workers to SIGKILL after a heartbeat-deadline breach.
#[derive(Debug, Default)]
pub struct TickReport {
    /// `(token, pid)` of each worker declared wedged this tick.
    pub dead: Vec<(String, u32)>,
}

/// The service state machine. All methods are `&self`; internal locking.
pub struct Orchestrator {
    config: OrchestratorConfig,
    inner: Mutex<Inner>,
    notify: Condvar,
}

fn state_label(state: &JobState) -> &'static str {
    match state {
        JobState::Queued => "queued",
        JobState::Delayed { .. } => "delayed",
        JobState::Running { .. } => "running",
        JobState::Deferred => "deferred",
        JobState::Done(_) => "done",
        JobState::Failed(_) => "failed",
    }
}

fn is_pending(state: &JobState) -> bool {
    !matches!(state, JobState::Done(_) | JobState::Failed(_))
}

impl Orchestrator {
    /// Build the orchestrator, replaying `journal`. Completed entries
    /// serve their verdicts verbatim; pending entries re-enter the queue
    /// *after* their content keys are re-derived from disk — a stale
    /// entry (script edited while the service was down) is dropped with
    /// [`codes::JOURNAL_ERROR`] rather than run under the wrong id.
    pub fn new(config: OrchestratorConfig, mut journal: ServiceJournal) -> Orchestrator {
        let mut jobs = HashMap::new();
        let mut order = Vec::new();
        let mut queue = VecDeque::new();
        let mut diags = Vec::new();
        let mut stale = Vec::new();
        for entry in journal.entries().to_vec() {
            let record = if let Some(outcome) = entry.outcome.clone() {
                JobRecord {
                    job: entry.job.clone(),
                    attempts: entry.attempts,
                    max_attempts: entry.attempts.max(1),
                    state: JobState::Done(outcome),
                }
            } else if let Some(failure) = entry.failure.clone() {
                JobRecord {
                    job: entry.job.clone(),
                    attempts: entry.attempts,
                    max_attempts: entry.attempts.max(1),
                    state: JobState::Failed(failure),
                }
            } else {
                let rekeyed = exec::job_content_key(&entry.job);
                if rekeyed != entry.id {
                    diags.push(
                        Diagnostic::warning(
                            codes::JOURNAL_ERROR,
                            Span::unknown(),
                            format!(
                                "journaled job `{}` ({}) no longer matches its on-disk \
                                 content; dropping the stale entry",
                                entry.job.name,
                                crate::format_job_id(entry.id)
                            ),
                        )
                        .with_note("resubmit the manifest to run the current content"),
                    );
                    stale.push(entry.id);
                    continue;
                }
                queue.push_back(entry.id);
                JobRecord {
                    job: entry.job.clone(),
                    attempts: entry.attempts,
                    max_attempts: config.retry.max_attempts.max(entry.attempts + 1),
                    state: JobState::Queued,
                }
            };
            order.push(entry.id);
            jobs.insert(entry.id, record);
        }
        for id in stale {
            journal.remove_entry(id);
        }
        let inner = Inner {
            jobs,
            order,
            queue,
            delayed: Vec::new(),
            workers: HashMap::new(),
            pending_workers: HashMap::new(),
            draining: false,
            journal,
            diags,
            counters: Counters::default(),
        };
        Orchestrator {
            config,
            inner: Mutex::new(inner),
            notify: Condvar::new(),
        }
    }

    fn heartbeat_deadline(&self) -> Duration {
        Duration::from_millis(
            (self.config.heartbeat_ms * u64::from(MISSED_BEATS)).max(MIN_DEADLINE_MS),
        )
    }

    /// Parse and admit a `jobs.toml` submission. All-or-nothing: if the
    /// new jobs would overflow the queue cap, the whole submission is
    /// rejected ([`codes::QUEUE_FULL`]) and nothing is enqueued.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Parse`] for malformed manifests,
    /// [`SubmitError::QueueFull`] at capacity, [`SubmitError::Draining`]
    /// after drain has begun.
    pub fn submit(&self, source: &str, base_dir: &Path) -> Result<Vec<Accepted>, SubmitError> {
        let manifest = cspm::manifest::Manifest::parse(source, base_dir)
            .map_err(|e| SubmitError::Parse(e.to_string()))?;
        if manifest.jobs.is_empty() {
            return Err(SubmitError::Parse("manifest has no jobs".to_string()));
        }
        let max_attempts = manifest
            .run
            .retries
            .unwrap_or(self.config.retry.max_attempts)
            .max(1);
        let chaos = manifest.chaos.map(|c| ChaosCfg {
            seed: c.seed,
            transient_attempts: c.transient_attempts,
            every_nth: c.every_nth,
        });
        // Resolve and key the jobs before taking the lock: keying reads
        // script/corpus bytes from disk.
        let mut resolved = Vec::with_capacity(manifest.jobs.len());
        for spec in &manifest.jobs {
            let job = ResolvedJob {
                name: spec.name.clone(),
                kind: spec.kind,
                script: spec.script.clone(),
                spec: spec.spec.clone(),
                corpus: spec.corpus.clone(),
                assertion: spec.assertion.clone(),
                threads: spec
                    .threads
                    .or(manifest.run.threads)
                    .unwrap_or(self.config.default_threads)
                    .max(1),
                max_states: spec
                    .max_states
                    .or(manifest.run.max_states)
                    .or(self.config.default_max_states),
                timeout_ms: spec
                    .timeout_ms
                    .or(manifest.run.timeout_ms)
                    .or(self.config.default_timeout_ms),
                chaos,
            };
            let id = exec::job_content_key(&job);
            resolved.push((id, job));
        }

        let mut inner = self.inner.lock().expect("orchestrator lock poisoned");
        if inner.draining {
            return Err(SubmitError::Draining);
        }
        let pending_now = inner.jobs.values().filter(|r| is_pending(&r.state)).count();
        let new_pending = {
            let mut fresh = 0_usize;
            let mut seen = Vec::new();
            for (id, _) in &resolved {
                if seen.contains(id) {
                    continue;
                }
                seen.push(*id);
                match inner.jobs.get(id) {
                    None
                    | Some(JobRecord {
                        state: JobState::Failed(_),
                        ..
                    }) => fresh += 1,
                    Some(_) => {}
                }
            }
            fresh
        };
        if pending_now + new_pending > self.config.queue_cap {
            inner.counters.rejected += 1;
            inner.diags.push(Diagnostic::warning(
                codes::QUEUE_FULL,
                Span::unknown(),
                format!(
                    "submission of {} job(s) rejected: {pending_now} pending against a cap \
                     of {}",
                    resolved.len(),
                    self.config.queue_cap
                ),
            ));
            return Err(SubmitError::QueueFull {
                retry_after_s: RETRY_AFTER_S,
            });
        }

        let mut accepted = Vec::with_capacity(resolved.len());
        for (id, job) in resolved {
            inner.counters.submitted += 1;
            let (state, dedup) = match inner.jobs.get_mut(&id) {
                Some(record) if matches!(record.state, JobState::Failed(_)) => {
                    // A failed job resubmitted verbatim gets a fresh
                    // retry budget — terminal failures are often
                    // environmental, and the client explicitly asked.
                    record.attempts = 0;
                    record.max_attempts = max_attempts;
                    record.state = JobState::Queued;
                    inner.queue.push_back(id);
                    let entry = JournalEntry {
                        id,
                        job: job.clone(),
                        attempts: 0,
                        outcome: None,
                        failure: None,
                    };
                    inner.journal.record(entry);
                    inner.counters.dedup_hits += 1;
                    ("queued", true)
                }
                Some(record) => {
                    let label = state_label(&record.state);
                    inner.counters.dedup_hits += 1;
                    (label, true)
                }
                None => {
                    inner.order.push(id);
                    inner.jobs.insert(
                        id,
                        JobRecord {
                            job: job.clone(),
                            attempts: 0,
                            max_attempts,
                            state: JobState::Queued,
                        },
                    );
                    inner.queue.push_back(id);
                    inner.journal.record(JournalEntry {
                        id,
                        job,
                        attempts: 0,
                        outcome: None,
                        failure: None,
                    });
                    ("queued", false)
                }
            };
            accepted.push(Accepted {
                name: accepted_name(&inner, id),
                id,
                state,
                dedup,
            });
        }
        drop(inner);
        self.notify.notify_all();
        Ok(accepted)
    }

    /// Announce a worker slot that was just spawned; its `hello` must
    /// arrive within the spawn grace or the slot is recycled.
    pub fn expect_worker(&self, token: &str) {
        let mut inner = self.inner.lock().expect("orchestrator lock poisoned");
        inner
            .pending_workers
            .insert(token.to_string(), Instant::now());
    }

    /// A worker said hello. Returns `false` when the token is unknown or
    /// the service is draining — the caller should close the connection.
    pub fn register_worker(&self, token: &str, pid: u32, writer: TcpStream) -> bool {
        let mut inner = self.inner.lock().expect("orchestrator lock poisoned");
        if inner.draining || inner.pending_workers.remove(token).is_none() {
            return false;
        }
        inner.workers.insert(
            token.to_string(),
            WorkerEntry {
                pid,
                writer,
                busy: None,
                last_beat: Instant::now(),
            },
        );
        drop(inner);
        self.notify.notify_all();
        true
    }

    /// Is `token` a live or still-expected worker slot? The server's
    /// monitor respawns slots this returns `false` for.
    pub fn knows_worker(&self, token: &str) -> bool {
        let inner = self.inner.lock().expect("orchestrator lock poisoned");
        inner.workers.contains_key(token) || inner.pending_workers.contains_key(token)
    }

    /// Record a heartbeat from `token`.
    pub fn heartbeat(&self, token: &str, _busy: bool) {
        let mut inner = self.inner.lock().expect("orchestrator lock poisoned");
        if let Some(worker) = inner.workers.get_mut(token) {
            worker.last_beat = Instant::now();
        }
    }

    /// A worker connection ended (EOF, write failure, or deadline kill).
    /// Its in-flight job, if any, is reclaimed: requeued with backoff
    /// ([`codes::WORKER_LOST`]) or failed once retries are exhausted
    /// ([`codes::RETRIES_EXHAUSTED`]).
    pub fn worker_gone(&self, token: &str) {
        let mut inner = self.inner.lock().expect("orchestrator lock poisoned");
        let Some(worker) = inner.workers.remove(token) else {
            return;
        };
        // Close the socket for every clone so both the connection thread
        // and (for deadline kills) the worker itself unblock promptly.
        let _ = worker.writer.shutdown(std::net::Shutdown::Both);
        if let Some(id) = worker.busy {
            inner.counters.workers_lost += 1;
            let message = format!(
                "worker `{token}` (pid {}) died while running job {}",
                worker.pid,
                crate::format_job_id(id)
            );
            inner.diags.push(
                Diagnostic::warning(codes::WORKER_LOST, Span::unknown(), message)
                    .with_note("the job resumes from its last checkpoint on a fresh worker"),
            );
            self.reclaim(&mut inner, id, "worker lost");
        }
        drop(inner);
        self.notify.notify_all();
    }

    /// A worker reported a verdict for `id`.
    pub fn worker_result(&self, token: &str, id: u64, outcome: JobOutcome) {
        let mut inner = self.inner.lock().expect("orchestrator lock poisoned");
        if let Some(worker) = inner.workers.get_mut(token) {
            worker.busy = None;
            worker.last_beat = Instant::now();
        }
        let Some(record) = inner.jobs.get_mut(&id) else {
            return;
        };
        if !matches!(&record.state, JobState::Running { token: t } if t == token) {
            return; // stale report from a worker we already reclaimed
        }
        if outcome.interrupted {
            if inner.draining {
                if let Some(record) = inner.jobs.get_mut(&id) {
                    record.state = JobState::Deferred;
                }
                inner.counters.deferred += 1;
                inner.diags.push(
                    Diagnostic::warning(
                        codes::DRAIN_DEFERRED,
                        Span::unknown(),
                        format!(
                            "job {} drained to its checkpoint; it resumes on the next \
                             service start",
                            crate::format_job_id(id)
                        ),
                    )
                    .with_note("the journal keeps the job pending across the restart"),
                );
            } else {
                // Interrupted outside a drain (e.g. the worker process
                // caught SIGTERM directly): the checkpoint is on disk,
                // so retry like any transient fault.
                self.reclaim(&mut inner, id, "run interrupted");
            }
        } else {
            let attempts = record.attempts;
            let job = record.job.clone();
            record.state = JobState::Done(outcome.clone());
            inner.counters.completed += 1;
            inner.journal.record(JournalEntry {
                id,
                job,
                attempts,
                outcome: Some(outcome),
                failure: None,
            });
        }
        drop(inner);
        self.notify.notify_all();
    }

    /// A worker reported an error for `id`.
    pub fn worker_error(&self, token: &str, id: u64, transient: bool, message: &str) {
        let mut inner = self.inner.lock().expect("orchestrator lock poisoned");
        if let Some(worker) = inner.workers.get_mut(token) {
            worker.busy = None;
            worker.last_beat = Instant::now();
        }
        let Some(record) = inner.jobs.get(&id) else {
            return;
        };
        if !matches!(&record.state, JobState::Running { token: t } if t == token) {
            return;
        }
        if transient {
            self.reclaim(&mut inner, id, message);
        } else {
            self.fail_job(&mut inner, id, message.to_string());
        }
        drop(inner);
        self.notify.notify_all();
    }

    /// Requeue `id` with backoff, or fail it when the budget is spent.
    /// Caller holds the lock and has verified the job exists.
    fn reclaim(&self, inner: &mut Inner, id: u64, why: &str) {
        let Some(record) = inner.jobs.get_mut(&id) else {
            return;
        };
        if record.attempts >= record.max_attempts {
            let message = format!(
                "{why}; retry budget exhausted after {} attempt(s)",
                record.attempts
            );
            self.fail_job(inner, id, message);
            return;
        }
        let delay = self.config.retry.delay_ms(id, record.attempts.max(1));
        record.state = JobState::Delayed {
            ready_at: Instant::now() + Duration::from_millis(delay),
        };
        inner.delayed.push(id);
        inner.counters.retried += 1;
    }

    /// Terminally fail `id` with [`codes::RETRIES_EXHAUSTED`] bookkeeping.
    fn fail_job(&self, inner: &mut Inner, id: u64, message: String) {
        let Some(record) = inner.jobs.get_mut(&id) else {
            return;
        };
        let attempts = record.attempts;
        let job = record.job.clone();
        record.state = JobState::Failed(message.clone());
        inner.counters.failed += 1;
        inner.diags.push(Diagnostic::error(
            codes::RETRIES_EXHAUSTED,
            Span::unknown(),
            format!(
                "job {} (`{}`) failed: {message}",
                crate::format_job_id(id),
                job.name
            ),
        ));
        inner.journal.record(JournalEntry {
            id,
            job,
            attempts,
            outcome: None,
            failure: Some(message),
        });
    }

    /// Move elapsed delayed jobs back into the queue. Caller holds the
    /// lock. Returns `true` when anything moved.
    fn promote_delayed(inner: &mut Inner) -> bool {
        let now = Instant::now();
        let mut moved = false;
        let mut keep = Vec::new();
        for id in std::mem::take(&mut inner.delayed) {
            let ready = matches!(
                inner.jobs.get(&id).map(|r| &r.state),
                Some(JobState::Delayed { ready_at }) if *ready_at <= now
            );
            if ready {
                if let Some(record) = inner.jobs.get_mut(&id) {
                    record.state = JobState::Queued;
                }
                inner.queue.push_back(id);
                moved = true;
            } else if matches!(
                inner.jobs.get(&id).map(|r| &r.state),
                Some(JobState::Delayed { .. })
            ) {
                keep.push(id);
            }
        }
        inner.delayed = keep;
        moved
    }

    /// Wait up to `wait` for a (ready job, idle worker) pair; mark the
    /// job running and return the frame to send. The server writes the
    /// frame *outside* the lock and reports [`Orchestrator::worker_gone`]
    /// if the write fails.
    pub fn next_dispatch(&self, wait: Duration) -> Option<Dispatch> {
        let deadline = Instant::now() + wait;
        let mut inner = self.inner.lock().expect("orchestrator lock poisoned");
        loop {
            Self::promote_delayed(&mut inner);
            if !inner.draining {
                if let Some(dispatch) = Self::try_dispatch(&mut inner) {
                    return Some(dispatch);
                }
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            // Wake early enough to promote the next delayed job.
            let mut timeout = deadline - now;
            for id in &inner.delayed {
                if let Some(JobState::Delayed { ready_at }) = inner.jobs.get(id).map(|r| &r.state) {
                    let until = ready_at.saturating_duration_since(now);
                    if until < timeout {
                        timeout = until.max(Duration::from_millis(1));
                    }
                }
            }
            let (guard, _) = self
                .notify
                .wait_timeout(inner, timeout)
                .expect("orchestrator lock poisoned");
            inner = guard;
        }
    }

    fn try_dispatch(inner: &mut Inner) -> Option<Dispatch> {
        let id = *inner.queue.front()?;
        let token = inner
            .workers
            .iter()
            .filter(|(_, w)| w.busy.is_none())
            .map(|(t, _)| t.clone())
            .min()?; // deterministic pick: lowest token
        inner.queue.pop_front();
        let record = inner.jobs.get_mut(&id)?;
        record.attempts += 1;
        record.state = JobState::Running {
            token: token.clone(),
        };
        let frame = Frame::Job {
            id,
            attempt: record.attempts,
            job: record.job.clone(),
        };
        let worker = inner.workers.get_mut(&token)?;
        worker.busy = Some(id);
        let Ok(stream) = worker.writer.try_clone() else {
            // Clone failure ≈ dead socket; the caller's next read will
            // EOF and reclaim properly. Put the job back.
            worker.busy = None;
            if let Some(record) = inner.jobs.get_mut(&id) {
                record.attempts -= 1;
                record.state = JobState::Queued;
            }
            inner.queue.push_front(id);
            return None;
        };
        Some(Dispatch {
            token,
            stream,
            line: encode(&frame),
        })
    }

    /// Periodic maintenance: expire spawn grace, promote delayed jobs,
    /// and declare heartbeat-deadline breaches. The caller SIGKILLs the
    /// returned pids (their jobs are already reclaimed here).
    pub fn tick(&self) -> TickReport {
        let mut report = TickReport::default();
        let deadline = self.heartbeat_deadline();
        let mut gone = Vec::new();
        {
            let mut inner = self.inner.lock().expect("orchestrator lock poisoned");
            let now = Instant::now();
            let grace = Duration::from_millis(SPAWN_GRACE_MS.max(self.config.heartbeat_ms * 20));
            let expired: Vec<String> = inner
                .pending_workers
                .iter()
                .filter(|(_, since)| now.duration_since(**since) > grace)
                .map(|(t, _)| t.clone())
                .collect();
            for token in expired {
                inner.pending_workers.remove(&token);
                inner.diags.push(Diagnostic::warning(
                    codes::WORKER_SPAWN,
                    Span::unknown(),
                    format!("worker `{token}` never completed its handshake; recycling the slot"),
                ));
            }
            if Self::promote_delayed(&mut inner) {
                self.notify.notify_all();
            }
            for (token, worker) in &inner.workers {
                if now.duration_since(worker.last_beat) > deadline {
                    report.dead.push((token.clone(), worker.pid));
                    gone.push(token.clone());
                }
            }
        }
        for token in gone {
            self.worker_gone(&token);
        }
        report
    }

    /// Begin draining: stop admissions and dispatches, and return one
    /// cloned stream per connected worker so the server can send each a
    /// `shutdown` frame outside the lock.
    pub fn begin_drain(&self) -> Vec<TcpStream> {
        let mut inner = self.inner.lock().expect("orchestrator lock poisoned");
        inner.draining = true;
        let streams = inner
            .workers
            .values()
            .filter_map(|w| w.writer.try_clone().ok())
            .collect();
        drop(inner);
        self.notify.notify_all();
        streams
    }

    /// Whether a drain has been requested.
    pub fn draining(&self) -> bool {
        self.inner
            .lock()
            .expect("orchestrator lock poisoned")
            .draining
    }

    /// During a drain: `true` once no job is on a worker any more.
    pub fn drain_complete(&self) -> bool {
        let inner = self.inner.lock().expect("orchestrator lock poisoned");
        !inner
            .jobs
            .values()
            .any(|r| matches!(r.state, JobState::Running { .. }))
    }

    /// Jobs that have not reached a terminal state (drives exit code 3).
    pub fn pending_count(&self) -> usize {
        let inner = self.inner.lock().expect("orchestrator lock poisoned");
        inner.jobs.values().filter(|r| is_pending(&r.state)).count()
    }

    /// Snapshot one job.
    pub fn job_view(&self, id: u64) -> Option<JobView> {
        let inner = self.inner.lock().expect("orchestrator lock poisoned");
        inner.jobs.get(&id).map(|record| Self::view(id, record))
    }

    fn view(id: u64, record: &JobRecord) -> JobView {
        let (outcome, failure) = match &record.state {
            JobState::Done(outcome) => (Some(outcome.clone()), None),
            JobState::Failed(message) => (None, Some(message.clone())),
            _ => (None, None),
        };
        JobView {
            id,
            name: record.job.name.clone(),
            kind: record.job.kind.label(),
            state: state_label(&record.state),
            attempts: record.attempts,
            outcome,
            failure,
        }
    }

    /// Block until `id` reaches a terminal state or `wait` elapses;
    /// returns the latest snapshot either way (`None`: unknown id).
    pub fn wait_terminal(&self, id: u64, wait: Duration) -> Option<JobView> {
        let deadline = Instant::now() + wait;
        let mut inner = self.inner.lock().expect("orchestrator lock poisoned");
        loop {
            let record = inner.jobs.get(&id)?;
            if !is_pending(&record.state) {
                return Some(Self::view(id, record));
            }
            let now = Instant::now();
            if now >= deadline {
                return Some(Self::view(id, record));
            }
            let (guard, _) = self
                .notify
                .wait_timeout(inner, deadline - now)
                .expect("orchestrator lock poisoned");
            inner = guard;
        }
    }

    /// Snapshot every job, submission order.
    pub fn job_views(&self) -> Vec<JobView> {
        let inner = self.inner.lock().expect("orchestrator lock poisoned");
        inner
            .order
            .iter()
            .filter_map(|id| inner.jobs.get(id).map(|r| Self::view(*id, r)))
            .collect()
    }

    /// Snapshot service health.
    pub fn health(&self) -> Health {
        let inner = self.inner.lock().expect("orchestrator lock poisoned");
        let mut health = Health {
            draining: inner.draining,
            workers: inner
                .workers
                .iter()
                .map(|(token, w)| WorkerView {
                    token: token.clone(),
                    pid: w.pid,
                    busy: w.busy,
                })
                .collect(),
            queued: 0,
            delayed: 0,
            running: 0,
            deferred: 0,
            done: 0,
            failed: 0,
            queue_cap: self.config.queue_cap,
            counters: inner.counters,
        };
        health.workers.sort_by(|a, b| a.token.cmp(&b.token));
        for record in inner.jobs.values() {
            match record.state {
                JobState::Queued => health.queued += 1,
                JobState::Delayed { .. } => health.delayed += 1,
                JobState::Running { .. } => health.running += 1,
                JobState::Deferred => health.deferred += 1,
                JobState::Done(_) => health.done += 1,
                JobState::Failed(_) => health.failed += 1,
            }
        }
        health
    }

    /// Append externally produced diagnostics (e.g. journal-open
    /// warnings) to the service stream.
    pub fn adopt_diagnostics(&self, diags: Vec<Diagnostic>) {
        let mut inner = self.inner.lock().expect("orchestrator lock poisoned");
        inner.diags.extend(diags);
    }

    /// Drain accumulated diagnostics (rendered to the service log).
    pub fn take_diagnostics(&self) -> Vec<Diagnostic> {
        let mut inner = self.inner.lock().expect("orchestrator lock poisoned");
        std::mem::take(&mut inner.diags)
    }
}

fn accepted_name(inner: &Inner, id: u64) -> String {
    inner
        .jobs
        .get(&id)
        .map_or_else(String::new, |r| r.job.name.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdrlite::supervisor::JobStatus;
    use std::fs;
    use std::net::TcpListener;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "svc-orch-{tag}-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    const SCRIPT: &str = "channel a, b\n\
                          SPEC = a -> SPEC\n\
                          IMPL = a -> IMPL\n\
                          assert SPEC [T= IMPL\n";

    fn config(queue_cap: usize) -> OrchestratorConfig {
        OrchestratorConfig {
            queue_cap,
            retry: RetryPolicy {
                max_attempts: 2,
                base_delay_ms: 1,
                max_delay_ms: 2,
                seed: 7,
            },
            heartbeat_ms: 50,
            default_threads: 1,
            default_max_states: None,
            default_timeout_ms: None,
        }
    }

    fn orchestrator(dir: &std::path::Path, queue_cap: usize) -> Orchestrator {
        let mut diags = Vec::new();
        let journal = ServiceJournal::open(dir.join("service.journal"), &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
        Orchestrator::new(config(queue_cap), journal)
    }

    fn manifest_for(dir: &std::path::Path) -> String {
        fs::write(dir.join("m.csp"), SCRIPT).unwrap();
        "[[job]]\nname = \"spec\"\nkind = \"check\"\nscript = \"m.csp\"\n".to_string()
    }

    /// A loopback socket pair so worker registration has a real stream.
    fn socket_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn submit_dedup_and_queue_cap() {
        let dir = tmpdir("admission");
        let orch = orchestrator(&dir, 1);
        let manifest = manifest_for(&dir);

        let first = orch.submit(&manifest, &dir).unwrap();
        assert_eq!(first.len(), 1);
        assert!(!first[0].dedup);
        assert_eq!(first[0].state, "queued");

        // Identical resubmission collapses instead of eating capacity.
        let second = orch.submit(&manifest, &dir).unwrap();
        assert!(second[0].dedup);
        assert_eq!(second[0].id, first[0].id);

        // A different job overflows the cap of 1 → fail-closed 429.
        fs::write(dir.join("m2.csp"), SCRIPT).unwrap();
        let other = "[[job]]\nname = \"extra\"\nkind = \"analyze\"\nscript = \"m2.csp\"\n";
        match orch.submit(other, &dir) {
            Err(SubmitError::QueueFull { retry_after_s }) => assert!(retry_after_s > 0),
            other => panic!("expected QueueFull, got {other:?}"),
        }
        assert_eq!(orch.health().counters.rejected, 1);
    }

    #[test]
    fn worker_loss_requeues_then_exhausts_retries() {
        let dir = tmpdir("reclaim");
        let orch = orchestrator(&dir, 8);
        let manifest = manifest_for(&dir);
        let id = orch.submit(&manifest, &dir).unwrap()[0].id;

        let (_client, server_side) = socket_pair();
        orch.expect_worker("w-0-1");
        assert!(orch.register_worker("w-0-1", 111, server_side));
        let dispatch = orch.next_dispatch(Duration::from_secs(1)).unwrap();
        assert_eq!(dispatch.token, "w-0-1");
        assert_eq!(orch.job_view(id).unwrap().state, "running");

        // First loss: attempts 1/2 → delayed, then queued again.
        orch.worker_gone("w-0-1");
        let view = orch.job_view(id).unwrap();
        assert!(
            view.state == "delayed" || view.state == "queued",
            "{view:?}"
        );
        assert_eq!(orch.health().counters.workers_lost, 1);

        // Fresh worker picks it up after the backoff elapses.
        let (_client2, server_side2) = socket_pair();
        orch.expect_worker("w-0-2");
        assert!(orch.register_worker("w-0-2", 222, server_side2));
        let dispatch = orch.next_dispatch(Duration::from_secs(1)).unwrap();
        assert_eq!(dispatch.token, "w-0-2");

        // Second loss: retry budget (2) exhausted → failed + SRV605.
        orch.worker_gone("w-0-2");
        let view = orch.job_view(id).unwrap();
        assert_eq!(view.state, "failed");
        assert!(view.failure.unwrap().contains("retry budget exhausted"));
        let diags = orch.take_diagnostics();
        assert!(diags.iter().any(|d| d.code == codes::WORKER_LOST));
        assert!(diags.iter().any(|d| d.code == codes::RETRIES_EXHAUSTED));
    }

    #[test]
    fn drain_defers_interrupted_jobs_and_restart_requeues_them() {
        let dir = tmpdir("drain");
        let manifest = manifest_for(&dir);
        let id;
        {
            let orch = orchestrator(&dir, 8);
            id = orch.submit(&manifest, &dir).unwrap()[0].id;
            let (_client, server_side) = socket_pair();
            orch.expect_worker("w-0-1");
            assert!(orch.register_worker("w-0-1", 111, server_side));
            let _dispatch = orch.next_dispatch(Duration::from_secs(1)).unwrap();

            let streams = orch.begin_drain();
            assert_eq!(streams.len(), 1);
            orch.worker_result(
                "w-0-1",
                id,
                JobOutcome {
                    status: JobStatus::Inconclusive,
                    lines: vec!["assert SPEC [T= IMPL  ...  INCONCLUSIVE".into()],
                    interrupted: true,
                },
            );
            assert!(orch.drain_complete());
            assert_eq!(orch.job_view(id).unwrap().state, "deferred");
            assert_eq!(orch.pending_count(), 1);
            assert!(orch
                .take_diagnostics()
                .iter()
                .any(|d| d.code == codes::DRAIN_DEFERRED));
        }

        // Restart: the journaled pending entry re-enters the queue.
        let orch = orchestrator(&dir, 8);
        let view = orch.job_view(id).unwrap();
        assert_eq!(view.state, "queued");

        // Finishing it serves the verdict to pollers.
        let (_client, server_side) = socket_pair();
        orch.expect_worker("w-1-1");
        assert!(orch.register_worker("w-1-1", 42, server_side));
        let _dispatch = orch.next_dispatch(Duration::from_secs(1)).unwrap();
        orch.worker_result(
            "w-1-1",
            id,
            JobOutcome {
                status: JobStatus::Passed,
                lines: vec!["assert SPEC [T= IMPL  ...  PASS".into()],
                interrupted: false,
            },
        );
        let view = orch.wait_terminal(id, Duration::from_secs(1)).unwrap();
        assert_eq!(view.state, "done");
        assert_eq!(view.outcome.unwrap().status, JobStatus::Passed);
    }

    #[test]
    fn restart_drops_stale_pending_entries() {
        let dir = tmpdir("stale");
        let manifest = manifest_for(&dir);
        let id;
        {
            let orch = orchestrator(&dir, 8);
            id = orch.submit(&manifest, &dir).unwrap()[0].id;
        }
        // Edit the script while the service is "down": the journaled id
        // no longer matches the on-disk content.
        fs::write(dir.join("m.csp"), SCRIPT.replace("a -> IMPL", "b -> IMPL")).unwrap();
        let orch = orchestrator(&dir, 8);
        assert!(orch.job_view(id).is_none());
        assert!(orch
            .take_diagnostics()
            .iter()
            .any(|d| d.code == codes::JOURNAL_ERROR));
        // The stale entry is pruned from disk too, not re-reported forever.
        let orch2 = orchestrator(&dir, 8);
        assert!(orch2.take_diagnostics().is_empty());
    }
}
