//! The crash-safe service journal.
//!
//! The orchestrator records every accepted job — and later its terminal
//! verdict — in one binary file under the service's state directory,
//! using the same codec discipline as the model cache and the supervisor
//! journal (`fdrlite::persist::{Enc, Dec}`: magic + version header,
//! trailing FNV-1a checksum, atomic temp-file + rename rewrites).
//!
//! On restart the journal is replayed: completed jobs serve their
//! verdicts verbatim (so a client polling across a restart sees no
//! difference), and pending jobs re-enter the queue — after their
//! content keys are re-derived from disk, so a script edited while the
//! service was down drops the stale entry ([`crate::codes::JOURNAL_ERROR`])
//! instead of running the wrong content under the old id.

use std::fs;
use std::path::{Path, PathBuf};

use diag::{Diagnostic, Span};
use fdrlite::persist::{corrupt, Dec, DecResult, Enc};

use crate::{ChaosCfg, JobOutcome, ResolvedJob};

/// Magic of the service journal file.
const MAGIC: &[u8; 8] = b"AUTOSRV\x01";

/// One journaled job: the resolved definition plus, once the job reaches
/// a terminal state, its verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// The job's content key (its public id).
    pub id: u64,
    /// The resolved job, re-dispatchable as-is.
    pub job: ResolvedJob,
    /// Attempts consumed so far.
    pub attempts: u32,
    /// `Some` once the job is done/failed; `None` while pending.
    pub outcome: Option<JobOutcome>,
    /// The `SRV6xx` failure message for failed entries.
    pub failure: Option<String>,
}

/// The journal: an in-memory entry list mirrored crash-safely to disk.
pub struct ServiceJournal {
    path: PathBuf,
    entries: Vec<JournalEntry>,
}

fn enc_opt_text(e: &mut Enc, v: Option<&str>) {
    match v {
        Some(s) => {
            e.u8(1);
            e.text(s);
        }
        None => e.u8(0),
    }
}

fn dec_opt_text(d: &mut Dec<'_>) -> DecResult<Option<String>> {
    Ok(match d.u8()? {
        0 => None,
        1 => Some(d.text()?),
        _ => return corrupt("bad option tag"),
    })
}

fn enc_opt_u64(e: &mut Enc, v: Option<u64>) {
    match v {
        Some(n) => {
            e.u8(1);
            e.u64(n);
        }
        None => e.u8(0),
    }
}

fn dec_opt_u64(d: &mut Dec<'_>) -> DecResult<Option<u64>> {
    Ok(match d.u8()? {
        0 => None,
        1 => Some(d.u64()?),
        _ => return corrupt("bad option tag"),
    })
}

fn encode_entry(e: &mut Enc, entry: &JournalEntry) {
    e.u64(entry.id);
    e.text(&entry.job.name);
    e.text(entry.job.kind.label());
    e.text(&entry.job.script.display().to_string());
    enc_opt_text(e, entry.job.spec.as_deref());
    enc_opt_text(
        e,
        entry
            .job
            .corpus
            .as_ref()
            .map(|p| p.display().to_string())
            .as_deref(),
    );
    enc_opt_text(e, entry.job.assertion.as_deref());
    e.u64(entry.job.threads as u64);
    enc_opt_u64(e, entry.job.max_states);
    enc_opt_u64(e, entry.job.timeout_ms);
    match &entry.job.chaos {
        Some(c) => {
            e.u8(1);
            e.u64(c.seed);
            e.u32(c.transient_attempts);
            e.u64(c.every_nth);
        }
        None => e.u8(0),
    }
    e.u32(entry.attempts);
    match &entry.outcome {
        Some(out) => {
            e.u8(1);
            e.text(crate::status_label(out.status));
            e.u8(u8::from(out.interrupted));
            e.u32(u32::try_from(out.lines.len()).unwrap_or(u32::MAX));
            for line in &out.lines {
                e.text(line);
            }
        }
        None => e.u8(0),
    }
    enc_opt_text(e, entry.failure.as_deref());
}

fn decode_entry(d: &mut Dec<'_>) -> DecResult<JournalEntry> {
    let id = d.u64()?;
    let name = d.text()?;
    let kind = match d.text()?.as_str() {
        "check" => cspm::manifest::JobKind::Check,
        "conform" => cspm::manifest::JobKind::Conform,
        "analyze" => cspm::manifest::JobKind::Analyze,
        _ => return corrupt("unknown job kind"),
    };
    let script = PathBuf::from(d.text()?);
    let spec = dec_opt_text(d)?;
    let corpus = dec_opt_text(d)?.map(PathBuf::from);
    let assertion = dec_opt_text(d)?;
    let threads = usize::try_from(d.u64()?)
        .map_err(|_| fdrlite::persist::EntryError::Corrupt("thread count out of range"))?;
    let max_states = dec_opt_u64(d)?;
    let timeout_ms = dec_opt_u64(d)?;
    let chaos = match d.u8()? {
        0 => None,
        1 => Some(ChaosCfg {
            seed: d.u64()?,
            transient_attempts: d.u32()?,
            every_nth: d.u64()?,
        }),
        _ => return corrupt("bad option tag"),
    };
    let attempts = d.u32()?;
    let outcome = match d.u8()? {
        0 => None,
        1 => {
            let status_label = d.text()?;
            let Some(status) = crate::status_from_label(&status_label) else {
                return corrupt("unknown status label");
            };
            let interrupted = d.u8()? != 0;
            let n = d.len(1)?;
            let mut lines = Vec::with_capacity(n);
            for _ in 0..n {
                lines.push(d.text()?);
            }
            Some(JobOutcome {
                status,
                lines,
                interrupted,
            })
        }
        _ => return corrupt("bad option tag"),
    };
    let failure = dec_opt_text(d)?;
    Ok(JournalEntry {
        id,
        job: ResolvedJob {
            name,
            kind,
            script,
            spec,
            corpus,
            assertion,
            threads,
            max_states,
            timeout_ms,
            chaos,
        },
        attempts,
        outcome,
        failure,
    })
}

impl ServiceJournal {
    /// Open (or create) the journal at `path`. A missing file is an
    /// empty journal; an unreadable or corrupt one is *also* an empty
    /// journal plus a [`crate::codes::JOURNAL_ERROR`] warning in `diags`
    /// — at worst jobs are resubmitted, never trusted from bad bytes.
    pub fn open(path: impl AsRef<Path>, diags: &mut Vec<Diagnostic>) -> ServiceJournal {
        let path = path.as_ref().to_path_buf();
        let mut journal = ServiceJournal {
            path,
            entries: Vec::new(),
        };
        let bytes = match fs::read(&journal.path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return journal,
            Err(e) => {
                diags.push(Diagnostic::warning(
                    crate::codes::JOURNAL_ERROR,
                    Span::unknown(),
                    format!("cannot read service journal: {e}; starting empty"),
                ));
                return journal;
            }
        };
        match Self::decode(&bytes) {
            Ok(entries) => journal.entries = entries,
            Err(why) => diags.push(
                Diagnostic::warning(
                    crate::codes::JOURNAL_ERROR,
                    Span::unknown(),
                    format!("service journal is unusable ({why}); starting empty"),
                )
                .with_note("journaled verdicts are lost; affected jobs re-run on resubmission"),
            ),
        }
        journal
    }

    fn decode(bytes: &[u8]) -> Result<Vec<JournalEntry>, String> {
        let mut d = Dec::open(bytes, MAGIC).map_err(|e| match e {
            fdrlite::persist::EntryError::Corrupt(why) => why.to_string(),
            fdrlite::persist::EntryError::Version => "magic or version mismatch".to_string(),
        })?;
        let n = d.len(8).map_err(|_| "bad entry count")?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            entries.push(decode_entry(&mut d).map_err(|e| match e {
                fdrlite::persist::EntryError::Corrupt(why) => why.to_string(),
                fdrlite::persist::EntryError::Version => "version mismatch".to_string(),
            })?);
        }
        d.done().map_err(|_| "trailing bytes")?;
        Ok(entries)
    }

    /// The journaled entries, replay order.
    pub fn entries(&self) -> &[JournalEntry] {
        &self.entries
    }

    /// Record (insert or update by id) one entry and rewrite the file
    /// atomically. I/O failures degrade silently: the in-memory state
    /// stays correct for this process's lifetime, resumability suffers.
    pub fn record(&mut self, entry: JournalEntry) {
        match self.entries.iter_mut().find(|e| e.id == entry.id) {
            Some(slot) => *slot = entry,
            None => self.entries.push(entry),
        }
        self.rewrite();
    }

    fn rewrite(&self) {
        let mut e = Enc::new(MAGIC);
        e.u32(u32::try_from(self.entries.len()).unwrap_or(u32::MAX));
        for entry in &self.entries {
            encode_entry(&mut e, entry);
        }
        let bytes = e.finish();
        let tmp = self.path.with_extension("journal.tmp");
        if fs::write(&tmp, &bytes).is_ok() {
            let _ = fs::rename(&tmp, &self.path);
        }
    }

    /// Drop the entry with `id` (a stale pending job whose on-disk
    /// content changed) and rewrite the file.
    pub fn remove_entry(&mut self, id: u64) {
        let before = self.entries.len();
        self.entries.retain(|e| e.id != id);
        if self.entries.len() != before {
            self.rewrite();
        }
    }

    /// Remove the journal file (a drained service with nothing pending).
    pub fn remove(&mut self) {
        self.entries.clear();
        let _ = fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdrlite::supervisor::JobStatus;

    fn tmppath(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "svc-journal-{tag}-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir.join("service.journal")
    }

    fn entry(id: u64, outcome: Option<JobOutcome>) -> JournalEntry {
        JournalEntry {
            id,
            job: ResolvedJob {
                name: format!("job-{id}"),
                kind: cspm::manifest::JobKind::Conform,
                script: "m.csp".into(),
                spec: Some("SYSTEM".into()),
                corpus: Some("traces".into()),
                assertion: None,
                threads: 2,
                max_states: Some(1000),
                timeout_ms: None,
                chaos: Some(ChaosCfg {
                    seed: 9,
                    transient_attempts: 1,
                    every_nth: 2,
                }),
            },
            attempts: 1,
            outcome,
            failure: None,
        }
    }

    #[test]
    fn entries_round_trip_across_reopen() {
        let path = tmppath("roundtrip");
        let mut diags = Vec::new();
        let mut j = ServiceJournal::open(&path, &mut diags);
        j.record(entry(1, None));
        j.record(entry(
            2,
            Some(JobOutcome {
                status: JobStatus::Passed,
                lines: vec!["assert A  ...  PASS".into()],
                interrupted: false,
            }),
        ));
        // Updating a pending entry to done replaces it in place.
        j.record(entry(
            1,
            Some(JobOutcome {
                status: JobStatus::Refuted,
                lines: vec!["assert B  ...  FAIL".into(), "  <a>".into()],
                interrupted: false,
            }),
        ));

        let back = ServiceJournal::open(&path, &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(back.entries().len(), 2);
        assert_eq!(back.entries(), j.entries());
    }

    #[test]
    fn corrupt_journal_degrades_to_empty_with_diag() {
        let path = tmppath("corrupt");
        let mut diags = Vec::new();
        let mut j = ServiceJournal::open(&path, &mut diags);
        j.record(entry(1, None));
        // Flip a payload byte: checksum fails, journal starts empty.
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        let back = ServiceJournal::open(&path, &mut diags);
        assert!(back.entries().is_empty());
        assert!(diags.iter().any(|d| d.code == crate::codes::JOURNAL_ERROR));
    }

    #[test]
    fn remove_clears_disk_state() {
        let path = tmppath("remove");
        let mut diags = Vec::new();
        let mut j = ServiceJournal::open(&path, &mut diags);
        j.record(entry(5, None));
        assert!(path.exists());
        j.remove();
        assert!(!path.exists());
        assert!(j.entries().is_empty());
    }
}
