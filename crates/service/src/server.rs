//! The service front-end: HTTP listener, worker listener, dispatcher
//! and monitor threads around one [`Orchestrator`].
//!
//! ```text
//!  client ──HTTP──▶ :http ┐                      ┌─▶ worker 0 (process)
//!                         ├─ Orchestrator ──TCP──┤
//!  autocsp serve ─────────┘   (state machine)    └─▶ worker 1 (process)
//! ```
//!
//! Four long-lived threads, all stoppable:
//!
//! - **http-accept** — thread-per-connection request handling;
//! - **worker-accept** — authenticates `hello` frames and pumps
//!   result/error/heartbeat frames into the orchestrator;
//! - **dispatcher** — pairs ready jobs with idle workers and writes
//!   `job` frames (socket I/O outside the orchestrator lock);
//! - **monitor** — ticks the orchestrator (heartbeat deadlines, retry
//!   promotion), SIGKILLs wedged workers and respawns lost slots.
//!
//! The same [`Server`] embeds in-process for tests and the bench
//! harness, where worker slots run as threads instead of child
//! processes ([`LauncherKind::InProcess`]).

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use diag::json_string;
use fdrlite::supervisor::RetryPolicy;

use crate::exec::ExecConfig;
use crate::http::{read_request, respond, Request};
use crate::orchestrator::{
    Accepted, Health, JobView, Orchestrator, OrchestratorConfig, SubmitError,
};
use crate::wire::{decode, encode, Frame};
use crate::worker::{run_worker, WorkerConfig};

/// Cap on `?wait=` long-polls (seconds).
const MAX_WAIT_S: u64 = 300;

/// How worker slots are realised.
#[derive(Debug)]
pub enum LauncherKind {
    /// Spawn `exe worker …` child processes (production shape; the pids
    /// in `/v1/health` are real SIGKILL targets).
    Process {
        /// The `autocsp` binary to spawn.
        exe: PathBuf,
    },
    /// Run workers as threads in this process (tests and benches).
    InProcess {
        /// Hand the *first* spawned worker this sabotage budget: it
        /// checkpoints at that many states and drops its connection
        /// without reporting, simulating a SIGKILL mid-job.
        die_after_states: Option<u64>,
    },
}

/// Service configuration.
#[derive(Debug)]
pub struct ServerConfig {
    /// HTTP bind address (`127.0.0.1:0` for an ephemeral port).
    pub addr: String,
    /// Worker slots to keep alive.
    pub workers: usize,
    /// State directory: journal, and the default cache location.
    pub state_dir: PathBuf,
    /// Shared persistent cache; defaults to `<state_dir>/cache`.
    pub cache_dir: Option<PathBuf>,
    /// Base directory for relative paths in submitted manifests.
    pub scripts_root: PathBuf,
    /// Admission cap on pending jobs.
    pub queue_cap: usize,
    /// Worker heartbeat interval (milliseconds).
    pub heartbeat_ms: u64,
    /// Engine checkpoint cadence (states between frontier snapshots).
    pub checkpoint_every: Option<u64>,
    /// Retry policy for transient failures and worker-loss reclaims.
    pub retry: RetryPolicy,
    /// Default worker threads per job.
    pub default_threads: usize,
    /// Default per-job state budget.
    pub default_max_states: Option<u64>,
    /// Default per-job wall budget (milliseconds).
    pub default_timeout_ms: Option<u64>,
    /// Worker realisation.
    pub launcher: LauncherKind,
}

impl ServerConfig {
    /// A config with production defaults around `state_dir`, spawning
    /// workers from the current executable.
    ///
    /// # Errors
    ///
    /// When the current executable cannot be resolved.
    pub fn with_defaults(state_dir: PathBuf) -> Result<ServerConfig, String> {
        let exe = std::env::current_exe()
            .map_err(|e| format!("cannot resolve current executable: {e}"))?;
        Ok(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            state_dir,
            cache_dir: None,
            scripts_root: PathBuf::from("."),
            queue_cap: 64,
            heartbeat_ms: 200,
            checkpoint_every: None,
            retry: RetryPolicy::default(),
            default_threads: 1,
            default_max_states: None,
            default_timeout_ms: None,
            launcher: LauncherKind::Process { exe },
        })
    }
}

enum WorkerHandle {
    Process(Child),
    /// In-process worker threads are detached: they end when their
    /// sockets close, and the test process reaps them on exit.
    Thread,
}

struct Slot {
    token: String,
    generation: u64,
    handle: Option<WorkerHandle>,
}

/// A running service. Dropping does not stop it — call
/// [`Server::shutdown`].
pub struct Server {
    orch: Arc<Orchestrator>,
    http_addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
    slots: Arc<Mutex<Vec<Slot>>>,
}

fn send_shutdown(stream: &mut TcpStream) {
    let _ = stream.write_all(encode(&Frame::Shutdown).as_bytes());
    let _ = stream.flush();
}

impl Server {
    /// Bind the listeners, replay the journal, start the threads and
    /// begin spawning workers.
    ///
    /// # Errors
    ///
    /// Bind or state-directory failures, as a human-readable string.
    pub fn start(config: ServerConfig) -> Result<Server, String> {
        std::fs::create_dir_all(&config.state_dir)
            .map_err(|e| format!("cannot create state dir: {e}"))?;
        let cache_dir = config
            .cache_dir
            .clone()
            .unwrap_or_else(|| config.state_dir.join("cache"));

        let mut diags = Vec::new();
        let journal = crate::journal::ServiceJournal::open(
            config.state_dir.join("service.journal"),
            &mut diags,
        );
        let orch = Arc::new(Orchestrator::new(
            OrchestratorConfig {
                queue_cap: config.queue_cap,
                retry: config.retry,
                heartbeat_ms: config.heartbeat_ms,
                default_threads: config.default_threads,
                default_max_states: config.default_max_states,
                default_timeout_ms: config.default_timeout_ms,
            },
            journal,
        ));
        // Replay diagnostics surface through the normal channel.
        if !diags.is_empty() {
            orch.adopt_diagnostics(diags);
        }

        let http_listener = TcpListener::bind(&config.addr)
            .map_err(|e| format!("cannot bind {}: {e}", config.addr))?;
        let http_addr = http_listener
            .local_addr()
            .map_err(|e| format!("cannot read bound address: {e}"))?;
        let worker_listener = TcpListener::bind("127.0.0.1:0")
            .map_err(|e| format!("cannot bind worker port: {e}"))?;
        let worker_addr = worker_listener
            .local_addr()
            .map_err(|e| format!("cannot read worker port: {e}"))?;
        http_listener
            .set_nonblocking(true)
            .map_err(|e| format!("cannot configure listener: {e}"))?;
        worker_listener
            .set_nonblocking(true)
            .map_err(|e| format!("cannot configure listener: {e}"))?;

        let stop = Arc::new(AtomicBool::new(false));
        let slots = Arc::new(Mutex::new(Vec::<Slot>::new()));
        let scripts_root = config
            .scripts_root
            .canonicalize()
            .unwrap_or_else(|_| config.scripts_root.clone());
        let sabotage = Arc::new(Mutex::new(match &config.launcher {
            LauncherKind::InProcess { die_after_states } => *die_after_states,
            LauncherKind::Process { .. } => None,
        }));

        let mut threads = Vec::new();
        threads.push(spawn_named("svc-http", {
            let orch = Arc::clone(&orch);
            let stop = Arc::clone(&stop);
            move || http_accept_loop(&http_listener, &orch, &stop, &scripts_root)
        }));
        threads.push(spawn_named("svc-workers", {
            let orch = Arc::clone(&orch);
            let stop = Arc::clone(&stop);
            move || worker_accept_loop(&worker_listener, &orch, &stop)
        }));
        threads.push(spawn_named("svc-dispatch", {
            let orch = Arc::clone(&orch);
            let stop = Arc::clone(&stop);
            move || {
                while !stop.load(Ordering::Relaxed) {
                    if let Some(mut dispatch) = orch.next_dispatch(Duration::from_millis(100)) {
                        let sent = dispatch
                            .stream
                            .write_all(dispatch.line.as_bytes())
                            .and_then(|()| dispatch.stream.flush());
                        if sent.is_err() {
                            orch.worker_gone(&dispatch.token);
                        }
                    }
                }
            }
        }));
        threads.push(spawn_named("svc-monitor", {
            let orch = Arc::clone(&orch);
            let stop = Arc::clone(&stop);
            let slots = Arc::clone(&slots);
            let workers = config.workers;
            let launcher = config.launcher;
            let heartbeat_ms = config.heartbeat_ms;
            let exec = ExecConfig {
                cache_dir: Some(cache_dir),
                checkpoint_every: config.checkpoint_every,
            };
            let interval = Duration::from_millis(config.heartbeat_ms.clamp(10, 200) / 2 + 5);
            move || {
                while !stop.load(Ordering::Relaxed) {
                    let report = orch.tick();
                    let mut slots = slots.lock().expect("slot lock poisoned");
                    for (token, _pid) in &report.dead {
                        if let Some(slot) = slots.iter_mut().find(|s| &s.token == token) {
                            if let Some(WorkerHandle::Process(child)) = &mut slot.handle {
                                let _ = child.kill();
                                let _ = child.wait();
                            }
                        }
                    }
                    if !orch.draining() {
                        maintain_slots(
                            &mut slots,
                            workers,
                            &orch,
                            &launcher,
                            &worker_addr.to_string(),
                            &exec,
                            heartbeat_ms,
                            &sabotage,
                        );
                    }
                    // Reap exited children so kills do not leave zombies.
                    for slot in slots.iter_mut() {
                        if let Some(WorkerHandle::Process(child)) = &mut slot.handle {
                            let _ = child.try_wait();
                        }
                    }
                    drop(slots);
                    std::thread::sleep(interval);
                }
            }
        }));

        Ok(Server {
            orch,
            http_addr,
            stop,
            threads,
            slots,
        })
    }

    /// The bound HTTP address.
    pub fn http_addr(&self) -> std::net::SocketAddr {
        self.http_addr
    }

    /// The shared orchestrator (embedded tests poke it directly).
    pub fn orchestrator(&self) -> &Arc<Orchestrator> {
        &self.orch
    }

    /// Drain: stop admissions, interrupt in-flight jobs to checkpoints,
    /// wait (up to `timeout`) for workers to report, and return the
    /// number of jobs still pending — the caller's exit-code signal.
    pub fn drain(&self, timeout: Duration) -> usize {
        for mut stream in self.orch.begin_drain() {
            send_shutdown(&mut stream);
        }
        let deadline = Instant::now() + timeout;
        while !self.orch.drain_complete() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        self.orch.pending_count()
    }

    /// Stop every thread and kill remaining worker processes. In-process
    /// worker threads end when their sockets close.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for mut stream in self.orch.begin_drain() {
            send_shutdown(&mut stream);
        }
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
        let mut slots = self.slots.lock().expect("slot lock poisoned");
        for slot in slots.iter_mut() {
            match slot.handle.take() {
                Some(WorkerHandle::Process(mut child)) => {
                    let _ = child.kill();
                    let _ = child.wait();
                }
                Some(WorkerHandle::Thread) | None => {}
            }
        }
    }
}

fn spawn_named(name: &str, body: impl FnOnce() + Send + 'static) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name(name.to_string())
        .spawn(body)
        .expect("cannot spawn service thread")
}

#[allow(clippy::too_many_arguments)]
fn maintain_slots(
    slots: &mut Vec<Slot>,
    want: usize,
    orch: &Arc<Orchestrator>,
    launcher: &LauncherKind,
    worker_addr: &str,
    exec: &ExecConfig,
    heartbeat_ms: u64,
    sabotage: &Arc<Mutex<Option<u64>>>,
) {
    while slots.len() < want {
        let index = slots.len();
        slots.push(Slot {
            token: String::new(),
            generation: 0,
            handle: None,
        });
        let _ = index;
    }
    for (index, slot) in slots.iter_mut().enumerate() {
        let alive = !slot.token.is_empty() && orch.knows_worker(&slot.token);
        if alive {
            continue;
        }
        if let Some(WorkerHandle::Process(child)) = &mut slot.handle {
            let _ = child.kill();
            let _ = child.wait();
        }
        slot.generation += 1;
        slot.token = format!("w{index}-g{}-{}", slot.generation, std::process::id());
        orch.expect_worker(&slot.token);
        slot.handle = launch_worker(
            launcher,
            worker_addr,
            &slot.token,
            exec,
            heartbeat_ms,
            sabotage,
        );
        if slot.handle.is_none() {
            // Spawn failure: forget the token so the grace timer does
            // not wait on a worker that never existed.
            slot.token.clear();
        }
    }
}

fn launch_worker(
    launcher: &LauncherKind,
    worker_addr: &str,
    token: &str,
    exec: &ExecConfig,
    heartbeat_ms: u64,
    sabotage: &Arc<Mutex<Option<u64>>>,
) -> Option<WorkerHandle> {
    match launcher {
        LauncherKind::Process { exe } => {
            let mut cmd = Command::new(exe);
            cmd.arg("worker")
                .arg("--connect")
                .arg(worker_addr)
                .arg("--token")
                .arg(token)
                .arg("--heartbeat-ms")
                .arg(heartbeat_ms.to_string())
                .stdin(Stdio::null())
                .stdout(Stdio::null())
                .stderr(Stdio::null());
            if let Some(dir) = &exec.cache_dir {
                cmd.arg("--cache-dir").arg(dir);
            }
            if let Some(every) = exec.checkpoint_every {
                cmd.arg("--checkpoint-every").arg(every.to_string());
            }
            cmd.spawn().ok().map(WorkerHandle::Process)
        }
        LauncherKind::InProcess { .. } => {
            let config = WorkerConfig {
                connect: worker_addr.to_string(),
                token: token.to_string(),
                exec: exec.clone(),
                heartbeat_ms,
                die_after_states: sabotage.lock().expect("sabotage lock poisoned").take(),
            };
            std::thread::Builder::new()
                .name(format!("svc-{token}"))
                .spawn(move || {
                    let _ = run_worker(&config);
                })
                .ok()
                .map(|_| WorkerHandle::Thread)
        }
    }
}

// ---------------------------------------------------------------------------
// Worker connections
// ---------------------------------------------------------------------------

fn worker_accept_loop(listener: &TcpListener, orch: &Arc<Orchestrator>, stop: &Arc<AtomicBool>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let orch = Arc::clone(orch);
                let _ = std::thread::Builder::new()
                    .name("svc-worker-conn".to_string())
                    .spawn(move || worker_connection(stream, &orch));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(15));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(15)),
        }
    }
}

fn worker_connection(stream: TcpStream, orch: &Arc<Orchestrator>) {
    use std::io::BufRead;
    let Ok(writer) = stream.try_clone() else {
        return;
    };
    let mut lines = std::io::BufReader::new(stream);
    let mut line = String::new();
    if lines.read_line(&mut line).unwrap_or(0) == 0 {
        return;
    }
    let Ok(Frame::Hello { token, pid }) = decode(line.trim_end()) else {
        return; // not a worker; drop silently
    };
    if !orch.register_worker(&token, pid, writer) {
        return; // unknown token or draining: connection refused
    }
    loop {
        line.clear();
        if lines.read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        match decode(line.trim_end()) {
            Ok(Frame::Heartbeat { busy }) => orch.heartbeat(&token, busy),
            Ok(Frame::Result { id, outcome }) => orch.worker_result(&token, id, outcome),
            Ok(Frame::Error {
                id,
                transient,
                message,
            }) => orch.worker_error(&token, id, transient, &message),
            Ok(_) | Err(_) => {} // tolerated; SRV607 is for the HTTP edge
        }
    }
    orch.worker_gone(&token);
}

// ---------------------------------------------------------------------------
// HTTP surface
// ---------------------------------------------------------------------------

fn http_accept_loop(
    listener: &TcpListener,
    orch: &Arc<Orchestrator>,
    stop: &Arc<AtomicBool>,
    scripts_root: &std::path::Path,
) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let orch = Arc::clone(orch);
                let scripts_root = scripts_root.to_path_buf();
                let _ = std::thread::Builder::new()
                    .name("svc-http-conn".to_string())
                    .spawn(move || {
                        let mut stream = stream;
                        if let Ok(Some(request)) = read_request(&mut stream) {
                            handle_request(&mut stream, &request, &orch, &scripts_root);
                        }
                    });
            }
            // A short accept poll keeps the stop flag responsive without
            // adding double-digit milliseconds to every fresh connection
            // (submit→verdict latency is dominated by this on small jobs).
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

fn handle_request(
    stream: &mut TcpStream,
    request: &Request,
    orch: &Arc<Orchestrator>,
    scripts_root: &std::path::Path,
) {
    let outcome = match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/jobs") => {
            let Ok(body) = std::str::from_utf8(&request.body) else {
                return error_response(stream, 400, "Bad Request", "body is not UTF-8");
            };
            match orch.submit(body, scripts_root) {
                Ok(accepted) => respond(
                    stream,
                    202,
                    "Accepted",
                    &[],
                    "application/json",
                    &render_accepted(&accepted),
                ),
                Err(SubmitError::Parse(message)) => {
                    return error_response(stream, 400, "Bad Request", &message)
                }
                Err(SubmitError::QueueFull { retry_after_s }) => respond(
                    stream,
                    429,
                    "Too Many Requests",
                    &[("Retry-After", retry_after_s.to_string())],
                    "application/json",
                    &format!(
                        "{{\"error\":\"queue full\",\"code\":\"{}\",\"retry_after_s\":{retry_after_s}}}",
                        crate::codes::QUEUE_FULL.0
                    ),
                ),
                Err(SubmitError::Draining) => {
                    return error_response(stream, 503, "Service Unavailable", "service is draining")
                }
            }
        }
        ("GET", "/v1/jobs") => {
            let views = orch.job_views();
            let body = format!(
                "{{\"jobs\":[{}]}}",
                views.iter().map(render_job).collect::<Vec<_>>().join(",")
            );
            respond(stream, 200, "OK", &[], "application/json", &body)
        }
        ("GET", path) if path.starts_with("/v1/jobs/") => {
            let token = &path["/v1/jobs/".len()..];
            let Some(id) = crate::parse_job_id(token) else {
                return error_response(stream, 400, "Bad Request", "malformed job id");
            };
            let wait_s = request
                .query_param("wait")
                .and_then(|v| v.parse::<u64>().ok())
                .map(|s| s.min(MAX_WAIT_S));
            let view = match wait_s {
                Some(s) => orch.wait_terminal(id, Duration::from_secs(s)),
                None => orch.job_view(id),
            };
            match view {
                Some(view) => respond(
                    stream,
                    200,
                    "OK",
                    &[],
                    "application/json",
                    &render_job(&view),
                ),
                None => return error_response(stream, 404, "Not Found", "unknown job id"),
            }
        }
        ("GET", "/v1/health") => {
            let health = orch.health();
            respond(
                stream,
                200,
                "OK",
                &[],
                "application/json",
                &render_health(&health),
            )
        }
        _ => return error_response(stream, 404, "Not Found", "no such endpoint"),
    };
    let _ = outcome;
}

fn error_response(stream: &mut TcpStream, status: u16, reason: &str, message: &str) {
    let body = format!("{{\"error\":{}}}", json_string(message));
    let _ = respond(stream, status, reason, &[], "application/json", &body);
}

fn render_accepted(accepted: &[Accepted]) -> String {
    let jobs: Vec<String> = accepted
        .iter()
        .map(|a| {
            format!(
                "{{\"name\":{},\"id\":{},\"state\":{},\"dedup\":{}}}",
                json_string(&a.name),
                json_string(&crate::format_job_id(a.id)),
                json_string(a.state),
                a.dedup
            )
        })
        .collect();
    format!("{{\"jobs\":[{}]}}", jobs.join(","))
}

fn render_job(view: &JobView) -> String {
    let mut out = format!(
        "{{\"id\":{},\"name\":{},\"kind\":{},\"state\":{},\"attempts\":{}",
        json_string(&crate::format_job_id(view.id)),
        json_string(&view.name),
        json_string(view.kind),
        json_string(view.state),
        view.attempts
    );
    if let Some(outcome) = &view.outcome {
        out.push_str(&format!(
            ",\"status\":{},\"interrupted\":{},\"lines\":[{}]",
            json_string(crate::status_label(outcome.status)),
            outcome.interrupted,
            outcome
                .lines
                .iter()
                .map(|l| json_string(l))
                .collect::<Vec<_>>()
                .join(",")
        ));
    }
    if let Some(failure) = &view.failure {
        out.push_str(&format!(",\"failure\":{}", json_string(failure)));
    }
    out.push('}');
    out
}

fn render_health(health: &Health) -> String {
    let workers: Vec<String> = health
        .workers
        .iter()
        .map(|w| {
            let busy = w.busy.map_or_else(
                || "null".to_string(),
                |id| json_string(&crate::format_job_id(id)),
            );
            format!(
                "{{\"token\":{},\"pid\":{},\"busy\":{busy}}}",
                json_string(&w.token),
                w.pid
            )
        })
        .collect();
    let c = &health.counters;
    format!(
        "{{\"draining\":{},\"queue_cap\":{},\"queued\":{},\"delayed\":{},\"running\":{},\
         \"deferred\":{},\"done\":{},\"failed\":{},\"workers\":[{}],\
         \"counters\":{{\"submitted\":{},\"dedup_hits\":{},\"completed\":{},\"failed\":{},\
         \"retried\":{},\"workers_lost\":{},\"rejected\":{},\"deferred\":{}}}}}",
        health.draining,
        health.queue_cap,
        health.queued,
        health.delayed,
        health.running,
        health.deferred,
        health.done,
        health.failed,
        workers.join(","),
        c.submitted,
        c.dedup_hits,
        c.completed,
        c.failed,
        c.retried,
        c.workers_lost,
        c.rejected,
        c.deferred
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::client_request;
    use std::fs;
    use std::path::{Path, PathBuf};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "svc-server-{tag}-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    const SCRIPT: &str = "channel a, b\n\
                          SPEC = a -> SPEC\n\
                          IMPL = a -> IMPL\n\
                          BAD = a -> b -> BAD\n\
                          assert SPEC [T= IMPL\n\
                          assert SPEC [T= BAD\n";

    fn test_config(dir: &Path, workers: usize) -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers,
            state_dir: dir.join("state"),
            cache_dir: None,
            scripts_root: dir.to_path_buf(),
            queue_cap: 16,
            heartbeat_ms: 50,
            checkpoint_every: Some(64),
            retry: RetryPolicy {
                max_attempts: 3,
                base_delay_ms: 1,
                max_delay_ms: 5,
                seed: 11,
            },
            default_threads: 1,
            default_max_states: None,
            default_timeout_ms: Some(30_000),
            launcher: LauncherKind::InProcess {
                die_after_states: None,
            },
        }
    }

    fn submit_and_wait(addr: &str, manifest: &str) -> Vec<(String, diag::json::Value)> {
        let (status, body) = client_request(addr, "POST", "/v1/jobs", manifest).unwrap();
        assert_eq!(status, 202, "{body}");
        let parsed = diag::json::parse(&body).unwrap();
        let jobs = parsed.get("jobs").unwrap().as_array().unwrap();
        let mut results = Vec::new();
        for job in jobs {
            let id = job.get("id").unwrap().as_str().unwrap().to_string();
            let (status, body) =
                client_request(addr, "GET", &format!("/v1/jobs/{id}?wait=30"), "").unwrap();
            assert_eq!(status, 200, "{body}");
            results.push((id, diag::json::parse(&body).unwrap()));
        }
        results
    }

    #[test]
    fn end_to_end_submit_poll_verdict() {
        let dir = tmpdir("e2e");
        fs::write(dir.join("m.csp"), SCRIPT).unwrap();
        let server = Server::start(test_config(&dir, 2)).unwrap();
        let addr = server.http_addr().to_string();

        let manifest = "[[job]]\nname = \"all\"\nkind = \"check\"\nscript = \"m.csp\"\n";
        let results = submit_and_wait(&addr, manifest);
        assert_eq!(results.len(), 1);
        let view = &results[0].1;
        assert_eq!(view.get("state").unwrap().as_str(), Some("done"));
        assert_eq!(view.get("status").unwrap().as_str(), Some("refuted"));
        let lines = view.get("lines").unwrap().as_array().unwrap();
        assert!(
            lines
                .iter()
                .any(|l| l.as_str().unwrap().contains("SPEC [T= IMPL  ...  PASS")),
            "{lines:?}"
        );
        assert!(lines
            .iter()
            .any(|l| l.as_str().unwrap().contains("SPEC [T= BAD  ...  FAIL")));

        // Identical resubmission is a dedup hit served from memory.
        let again = submit_and_wait(&addr, manifest);
        assert_eq!(again[0].0, results[0].0);
        let (_, health) = client_request(&addr, "GET", "/v1/health", "").unwrap();
        let health = diag::json::parse(&health).unwrap();
        let counters = health.get("counters").unwrap();
        assert_eq!(counters.get("dedup_hits").unwrap().as_u64(), Some(1));
        assert_eq!(counters.get("completed").unwrap().as_u64(), Some(1));

        server.shutdown();
        fdrlite::clear_interrupt();
    }

    #[test]
    fn malformed_submissions_are_rejected() {
        let dir = tmpdir("reject");
        let server = Server::start(test_config(&dir, 1)).unwrap();
        let addr = server.http_addr().to_string();

        let (status, _) = client_request(&addr, "POST", "/v1/jobs", "not toml [[").unwrap();
        assert_eq!(status, 400);
        let (status, _) = client_request(&addr, "GET", "/v1/jobs/zznotanid", "").unwrap();
        assert_eq!(status, 400);
        let (status, _) = client_request(&addr, "GET", "/v1/jobs/00000000000000ff", "").unwrap();
        assert_eq!(status, 404);
        let (status, _) = client_request(&addr, "GET", "/v1/nope", "").unwrap();
        assert_eq!(status, 404);

        server.shutdown();
        fdrlite::clear_interrupt();
    }

    #[test]
    fn queue_overflow_is_fail_closed_429_with_retry_after() {
        let dir = tmpdir("overflow");
        fs::write(dir.join("m.csp"), SCRIPT).unwrap();
        let mut config = test_config(&dir, 1);
        config.queue_cap = 0; // everything overflows
        let server = Server::start(config).unwrap();
        let addr = server.http_addr().to_string();

        let manifest = "[[job]]\nname = \"all\"\nkind = \"check\"\nscript = \"m.csp\"\n";
        let (status, body) = client_request(&addr, "POST", "/v1/jobs", manifest).unwrap();
        assert_eq!(status, 429, "{body}");
        assert!(body.contains("SRV602"), "{body}");

        server.shutdown();
        fdrlite::clear_interrupt();
    }
}
