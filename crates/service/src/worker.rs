//! The worker side of the farm: `autocsp worker` and the in-process
//! worker used by tests and benches.
//!
//! A worker dials the orchestrator's loopback worker port, authenticates
//! with its launch token, and then executes one job at a time. Three
//! threads cooperate:
//!
//! - the **main** thread owns the [`crate::exec::Executor`] and runs
//!   jobs to verdicts;
//! - a **reader** thread parses incoming frames, so a `shutdown` frame
//!   arriving mid-exploration can raise the engine's interrupt flag
//!   ([`fdrlite::request_interrupt`]) — the engine checkpoints and
//!   returns an interrupted verdict instead of running to completion;
//! - a **heartbeat** thread beats on a fixed interval, which is how the
//!   orchestrator distinguishes a *wedged* worker from a slow one (a
//!   *dead* worker is cheaper to detect: its socket reports EOF).
//!
//! A panicking job does not kill the worker: the panic is caught, an
//! `error` frame is reported, and the executor is rebuilt fresh so no
//! poisoned state leaks into the next job.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use fdrlite::supervisor::JobError;

use crate::exec::{ExecConfig, Executor};
use crate::wire::{decode, encode, Frame};

/// How a worker runs.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// The orchestrator's worker port, `host:port`.
    pub connect: String,
    /// Launch token identifying this worker's slot.
    pub token: String,
    /// Storage attachment (shared cache dir + checkpoint cadence).
    pub exec: ExecConfig,
    /// Heartbeat interval in milliseconds.
    pub heartbeat_ms: u64,
    /// Test-only sabotage: run the first dispatched job with this state
    /// budget (forcing a checkpoint) and then drop dead — close the
    /// connection without reporting, exactly like a SIGKILL landing
    /// right after the checkpoint write.
    pub die_after_states: Option<u64>,
}

#[allow(clippy::large_enum_variant)] // one short-lived event at a time
enum Event {
    Job {
        id: u64,
        attempt: u32,
        job: crate::ResolvedJob,
    },
    Shutdown,
    Disconnected,
}

fn send_frame(writer: &Mutex<TcpStream>, frame: &Frame) -> Result<(), String> {
    let mut stream = writer.lock().expect("writer lock poisoned");
    stream
        .write_all(encode(frame).as_bytes())
        .and_then(|()| stream.flush())
        .map_err(|e| format!("cannot send frame: {e}"))
}

/// Run one worker until the orchestrator shuts it down or the
/// connection drops.
///
/// # Errors
///
/// Connection or executor setup failures, as a human-readable string.
pub fn run_worker(config: &WorkerConfig) -> Result<(), String> {
    let stream = TcpStream::connect(&config.connect)
        .map_err(|e| format!("cannot reach orchestrator at {}: {e}", config.connect))?;
    let reader_stream = stream
        .try_clone()
        .map_err(|e| format!("cannot clone stream: {e}"))?;
    let writer = Arc::new(Mutex::new(stream));
    send_frame(
        &writer,
        &Frame::Hello {
            token: config.token.clone(),
            pid: std::process::id(),
        },
    )?;

    let running = Arc::new(AtomicBool::new(true));
    let busy = Arc::new(AtomicBool::new(false));

    let (events_tx, events) = mpsc::channel::<Event>();
    let reader = {
        let tx = events_tx;
        std::thread::spawn(move || {
            let mut lines = BufReader::new(reader_stream);
            loop {
                let mut line = String::new();
                match lines.read_line(&mut line) {
                    Ok(0) | Err(_) => {
                        let _ = tx.send(Event::Disconnected);
                        return;
                    }
                    Ok(_) => {}
                }
                match decode(line.trim_end()) {
                    Ok(Frame::Job { id, attempt, job }) => {
                        let _ = tx.send(Event::Job { id, attempt, job });
                    }
                    Ok(Frame::Shutdown) => {
                        // Raise the interrupt first so an in-flight
                        // exploration checkpoints promptly; the main
                        // thread drains the channel after the job ends.
                        fdrlite::request_interrupt();
                        let _ = tx.send(Event::Shutdown);
                    }
                    Ok(_) | Err(_) => {} // worker only expects job/shutdown
                }
            }
        })
    };

    let heartbeat = {
        let writer = Arc::clone(&writer);
        let running = Arc::clone(&running);
        let busy = Arc::clone(&busy);
        let interval = Duration::from_millis(config.heartbeat_ms.max(10));
        std::thread::spawn(move || {
            while running.load(Ordering::Relaxed) {
                std::thread::sleep(interval);
                if !running.load(Ordering::Relaxed) {
                    break;
                }
                let frame = Frame::Heartbeat {
                    busy: busy.load(Ordering::Relaxed),
                };
                if send_frame(&writer, &frame).is_err() {
                    break;
                }
            }
        })
    };

    let result = work_loop(config, &writer, &events, &busy);

    running.store(false, Ordering::Relaxed);
    // Drop the writer so the blocked reader unblocks on EOF promptly.
    {
        let stream = writer.lock().expect("writer lock poisoned");
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }
    let _ = heartbeat.join();
    let _ = reader.join();
    result
}

fn work_loop(
    config: &WorkerConfig,
    writer: &Mutex<TcpStream>,
    events: &mpsc::Receiver<Event>,
    busy: &AtomicBool,
) -> Result<(), String> {
    let mut executor = Some(Executor::new(&config.exec)?);
    let mut sabotage = config.die_after_states;
    loop {
        let Ok(event) = events.recv() else {
            return Ok(());
        };
        match event {
            Event::Disconnected => return Ok(()),
            Event::Shutdown => return Ok(()),
            Event::Job {
                id,
                attempt,
                mut job,
            } => {
                busy.store(true, Ordering::Relaxed);
                let dying = sabotage.take();
                if let Some(budget) = dying {
                    // Sabotage: a tight budget forces a checkpoint, after
                    // which this worker "dies" without reporting.
                    job.max_states = Some(match job.max_states {
                        Some(m) => m.min(budget),
                        None => budget,
                    });
                }
                let mut exec = executor
                    .take()
                    .map_or_else(|| Executor::new(&config.exec), Ok)?;
                let outcome = catch_unwind(AssertUnwindSafe(|| exec.run(&job, attempt)));
                busy.store(false, Ordering::Relaxed);
                if dying.is_some() {
                    // Simulated SIGKILL right after the checkpoint write:
                    // no result frame, just a dropped connection.
                    return Ok(());
                }
                let frame = match outcome {
                    Ok(Ok(outcome)) => {
                        executor = Some(exec); // healthy run: keep warm caches
                        Frame::Result { id, outcome }
                    }
                    Ok(Err(JobError::Transient(message))) => {
                        executor = Some(exec);
                        Frame::Error {
                            id,
                            transient: true,
                            message,
                        }
                    }
                    Ok(Err(JobError::Permanent(message))) => {
                        executor = Some(exec);
                        Frame::Error {
                            id,
                            transient: false,
                            message,
                        }
                    }
                    Err(panic) => {
                        // The executor may hold poisoned state — rebuild
                        // it before the next job.
                        drop(exec);
                        let message = panic
                            .downcast_ref::<&str>()
                            .map(|s| (*s).to_string())
                            .or_else(|| panic.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "job panicked".to_string());
                        Frame::Error {
                            id,
                            transient: false,
                            message: format!("job panicked: {message}"),
                        }
                    }
                };
                send_frame(writer, &frame)?;
            }
        }
    }
}
