//! `candb` — CAN database (`.dbc`) files: parsing and signal coding.
//!
//! CANoe links CAPL programs against textual network databases that define
//! message formats, payloads and node relationships (§IV-B2 of the paper).
//! The `.dbc` format is a de-facto industry standard; this crate parses the
//! subset needed by the toolchain and implements the raw↔physical signal
//! codec so the simulator can exchange realistic frames:
//!
//! * `BU_` node lists, `BO_` message definitions, `SG_` signal definitions
//!   (Intel and Motorola byte order, signedness, factor/offset/min/max),
//!   `CM_` comments and `VAL_` value tables;
//! * [`Signal::encode`] / [`Signal::decode`] pack and unpack raw values in
//!   8-byte CAN payloads;
//! * [`Database::message_by_name`] / [`Database::message_by_id`] power both
//!   the CAPL interpreter and the translator's channel declarations.
//!
//! # Example
//!
//! ```
//! let dbc = r#"
//! BU_: VMG ECU
//! BO_ 100 reqSw: 8 VMG
//!  SG_ reqType : 0|4@1+ (1,0) [0|15] "" ECU
//! "#;
//! let db = candb::parse(dbc)?;
//! let msg = db.message_by_name("reqSw").unwrap();
//! let mut payload = [0u8; 8];
//! msg.signal("reqType").unwrap().encode(&mut payload, 5);
//! assert_eq!(msg.signal("reqType").unwrap().decode(&payload), 5);
//! # Ok::<(), candb::DbcError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod model;
mod parser;

pub use model::{ByteOrder, Database, Message, Signal, ValueTable};
pub use parser::{parse, DbcError};
