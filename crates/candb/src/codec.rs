//! Raw signal packing and unpacking in CAN payloads.
//!
//! Implements the DBC bit-numbering conventions: Intel (little-endian)
//! signals grow upward from the start bit; Motorola (big-endian) signals use
//! the "sawtooth" numbering where the start bit is the most significant bit
//! and the position steps down within each byte, then on to the next byte.

use crate::model::{ByteOrder, Signal};

impl Signal {
    /// Write `raw` into `payload` at this signal's position.
    ///
    /// Values wider than the signal are truncated to `length` bits.
    ///
    /// # Panics
    ///
    /// Panics if the signal extends past the end of `payload`.
    pub fn encode(&self, payload: &mut [u8], raw: i64) {
        let mask = if self.length >= 64 {
            u64::MAX
        } else {
            (1u64 << self.length) - 1
        };
        let value = (raw as u64) & mask;
        match self.byte_order {
            ByteOrder::LittleEndian => {
                for i in 0..self.length {
                    let bit_pos = self.start_bit as usize + i as usize;
                    let byte = bit_pos / 8;
                    let bit = bit_pos % 8;
                    let v = (value >> i) & 1;
                    set_bit(payload, byte, bit, v == 1);
                }
            }
            ByteOrder::BigEndian => {
                // Start bit is the MSB; walk down the sawtooth.
                let mut byte = self.start_bit as usize / 8;
                let mut bit = self.start_bit as usize % 8;
                for i in (0..self.length).rev() {
                    let v = (value >> i) & 1;
                    set_bit(payload, byte, bit, v == 1);
                    if bit == 0 {
                        byte += 1;
                        bit = 7;
                    } else {
                        bit -= 1;
                    }
                }
            }
        }
    }

    /// Read this signal's raw value from `payload` (sign-extended when the
    /// signal is signed).
    ///
    /// # Panics
    ///
    /// Panics if the signal extends past the end of `payload`.
    pub fn decode(&self, payload: &[u8]) -> i64 {
        let mut value: u64 = 0;
        match self.byte_order {
            ByteOrder::LittleEndian => {
                for i in 0..self.length {
                    let bit_pos = self.start_bit as usize + i as usize;
                    let byte = bit_pos / 8;
                    let bit = bit_pos % 8;
                    if get_bit(payload, byte, bit) {
                        value |= 1 << i;
                    }
                }
            }
            ByteOrder::BigEndian => {
                let mut byte = self.start_bit as usize / 8;
                let mut bit = self.start_bit as usize % 8;
                for i in (0..self.length).rev() {
                    if get_bit(payload, byte, bit) {
                        value |= 1 << i;
                    }
                    if bit == 0 {
                        byte += 1;
                        bit = 7;
                    } else {
                        bit -= 1;
                    }
                }
            }
        }
        if self.signed && self.length < 64 {
            let sign_bit = 1u64 << (self.length - 1);
            if value & sign_bit != 0 {
                let extension = u64::MAX << self.length;
                return (value | extension) as i64;
            }
        }
        value as i64
    }
}

fn set_bit(payload: &mut [u8], byte: usize, bit: usize, on: bool) {
    if on {
        payload[byte] |= 1 << bit;
    } else {
        payload[byte] &= !(1 << bit);
    }
}

fn get_bit(payload: &[u8], byte: usize, bit: usize) -> bool {
    payload[byte] & (1 << bit) != 0
}

#[cfg(test)]
mod tests {
    use crate::model::{ByteOrder, Signal, ValueTable};

    fn signal(start: u16, len: u16, order: ByteOrder, signed: bool) -> Signal {
        Signal {
            name: "s".into(),
            start_bit: start,
            length: len,
            byte_order: order,
            signed,
            factor: 1.0,
            offset: 0.0,
            min: 0.0,
            max: 0.0,
            unit: String::new(),
            receivers: vec![],
            values: ValueTable::default(),
            comment: None,
        }
    }

    #[test]
    fn little_endian_roundtrip() {
        let s = signal(4, 12, ByteOrder::LittleEndian, false);
        let mut p = [0u8; 8];
        s.encode(&mut p, 0xABC);
        assert_eq!(s.decode(&p), 0xABC);
        // Bits land where DBC says: low nibble of byte0 untouched.
        assert_eq!(p[0] & 0x0F, 0);
    }

    #[test]
    fn big_endian_roundtrip() {
        let s = signal(7, 12, ByteOrder::BigEndian, false);
        let mut p = [0u8; 8];
        s.encode(&mut p, 0xABC);
        assert_eq!(s.decode(&p), 0xABC);
    }

    #[test]
    fn signed_values_sign_extend() {
        let s = signal(0, 8, ByteOrder::LittleEndian, true);
        let mut p = [0u8; 8];
        s.encode(&mut p, -5);
        assert_eq!(s.decode(&p), -5);
    }

    #[test]
    fn truncation_to_width() {
        let s = signal(0, 4, ByteOrder::LittleEndian, false);
        let mut p = [0u8; 8];
        s.encode(&mut p, 0xFF);
        assert_eq!(s.decode(&p), 0x0F);
    }

    #[test]
    fn neighbouring_signals_do_not_clobber() {
        let a = signal(0, 8, ByteOrder::LittleEndian, false);
        let b = signal(8, 8, ByteOrder::LittleEndian, false);
        let mut p = [0u8; 8];
        a.encode(&mut p, 0x11);
        b.encode(&mut p, 0x22);
        assert_eq!(a.decode(&p), 0x11);
        assert_eq!(b.decode(&p), 0x22);
    }

    #[test]
    fn full_width_64_bit_signal() {
        let s = signal(0, 64, ByteOrder::LittleEndian, false);
        let mut p = [0u8; 8];
        s.encode(&mut p, 0x0123_4567_89AB_CDEF);
        assert_eq!(s.decode(&p), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn reencoding_clears_old_bits() {
        let s = signal(0, 8, ByteOrder::LittleEndian, false);
        let mut p = [0u8; 8];
        s.encode(&mut p, 0xFF);
        s.encode(&mut p, 0x00);
        assert_eq!(s.decode(&p), 0);
    }
}
